"""Tests for the histogram/AVI cardinality estimator and Γ overrides."""

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.gamma import Gamma
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query


@pytest.fixture(scope="module")
def db():
    return generate_ott_database(
        num_tables=3, rows_per_table=2000, rows_per_value=100, seed=1, create_samples=False
    )


@pytest.fixture
def query(db):
    return make_ott_query(db, [0, 0, 1])


class TestBaseCardinality:
    def test_no_predicates_returns_table_rows(self, db):
        query = QueryBuilder("q").table("r1").table("r2").join("r1", "b", "r2", "b").build()
        estimator = CardinalityEstimator(db, query)
        assert estimator.base_cardinality("r1") == pytest.approx(2000.0)

    def test_equality_selection_estimate(self, db, query):
        estimator = CardinalityEstimator(db, query)
        # 2000 rows over 20 distinct values -> about 100 rows per value.
        assert estimator.base_cardinality("r1") == pytest.approx(100.0, rel=0.3)

    def test_gamma_override_for_base(self, db, query):
        gamma = Gamma()
        gamma.record({"r1"}, 7.0)
        estimator = CardinalityEstimator(db, query, gamma)
        assert estimator.base_cardinality("r1") == 7.0


class TestJoinCardinality:
    def test_avi_underestimates_correlated_join(self, db, query):
        """The OTT trap: the AVI estimate is orders of magnitude below the truth."""
        estimator = CardinalityEstimator(db, query)
        estimate = estimator.joinset_cardinality({"r1", "r2"})
        # True size of the matching pair join is ~100 * 100 = 10,000.
        assert estimate < 1500

    def test_same_estimate_for_empty_and_nonempty(self, db):
        """Equation 3's consequence: the optimizer cannot tell the two apart."""
        empty = make_ott_query(db, [0, 1, 0], name="empty")
        nonempty = make_ott_query(db, [0, 0, 0], name="nonempty")
        empty_estimate = CardinalityEstimator(db, empty).joinset_cardinality({"r1", "r2", "r3"})
        nonempty_estimate = CardinalityEstimator(db, nonempty).joinset_cardinality(
            {"r1", "r2", "r3"}
        )
        assert empty_estimate == pytest.approx(nonempty_estimate, rel=0.3)

    def test_gamma_override_for_join(self, db, query):
        gamma = Gamma()
        gamma.record({"r1", "r2"}, 10_000.0)
        estimator = CardinalityEstimator(db, query, gamma)
        assert estimator.joinset_cardinality({"r1", "r2"}) == 10_000.0
        # Join sets not in Gamma still use the histogram estimate.
        assert estimator.joinset_cardinality({"r2", "r3"}) < 1500

    def test_join_cardinality_merges_sets(self, db, query):
        estimator = CardinalityEstimator(db, query)
        merged = estimator.join_cardinality({"r1"}, {"r2"})
        assert merged == pytest.approx(estimator.joinset_cardinality({"r1", "r2"}))

    def test_empty_joinset_rejected(self, db, query):
        estimator = CardinalityEstimator(db, query)
        with pytest.raises(ValueError):
            estimator.joinset_cardinality(set())

    def test_invalidate_clears_caches(self, db, query):
        estimator = CardinalityEstimator(db, query)
        before = estimator.joinset_cardinality({"r1", "r2"})
        estimator.gamma.record({"r1", "r2"}, 42.0)
        estimator.invalidate()
        assert estimator.joinset_cardinality({"r1", "r2"}) == 42.0
        assert before != 42.0

    def test_mcv_refinement_toggle(self, db, query):
        with_mcv = CardinalityEstimator(db, query, use_mcv_join_refinement=True)
        without_mcv = CardinalityEstimator(db, query, use_mcv_join_refinement=False)
        # Both are estimates of the same join; they need not agree exactly but
        # must both be positive and finite.
        assert with_mcv.joinset_cardinality({"r1", "r2"}) > 0
        assert without_mcv.joinset_cardinality({"r1", "r2"}) > 0
