"""Unit tests for the Γ store of validated cardinalities."""

import pytest

from repro.cardinality.gamma import Gamma


class TestGamma:
    def test_record_and_get(self):
        gamma = Gamma()
        gamma.record({"a", "b"}, 123.0)
        assert gamma.get({"b", "a"}) == 123.0
        assert gamma.get({"a"}) is None
        assert {"a", "b"} in gamma
        assert len(gamma) == 1

    def test_empty_join_set_rejected(self):
        with pytest.raises(ValueError):
            Gamma().record([], 1.0)

    def test_merge_counts_new_entries_only(self):
        gamma = Gamma()
        gamma.record({"a"}, 10.0)
        added = gamma.merge({frozenset({"a"}): 12.0, frozenset({"a", "b"}): 5.0})
        assert added == 1
        # The newer value overwrites the older one.
        assert gamma.get({"a"}) == 12.0
        assert gamma.get({"a", "b"}) == 5.0

    def test_merge_gamma_instance(self):
        first = Gamma()
        first.record({"a"}, 1.0)
        second = Gamma()
        second.record({"b"}, 2.0)
        assert first.merge(second) == 1
        assert first.get({"b"}) == 2.0

    def test_merge_zero_new_entries_signals_coverage(self):
        gamma = Gamma()
        gamma.record({"a", "b"}, 4.0)
        assert gamma.merge({frozenset({"a", "b"}): 4.0}) == 0

    def test_copy_is_independent(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        clone = gamma.copy()
        clone.record({"b"}, 2.0)
        assert {"b"} not in gamma
        assert {"b"} in clone

    def test_epoch_increases_on_change_only(self):
        gamma = Gamma()
        assert gamma.epoch == 0
        gamma.record({"a"}, 1.0)
        first_epoch = gamma.epoch
        assert first_epoch > 0
        # Re-recording the same value is not a change.
        gamma.record({"a"}, 1.0)
        assert gamma.epoch == first_epoch
        gamma.record({"a"}, 2.0)
        assert gamma.epoch > first_epoch

    def test_changed_since_tracks_dirty_join_sets(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        checkpoint = gamma.epoch
        assert gamma.changed_since(checkpoint) == frozenset()
        gamma.merge({frozenset({"a", "b"}): 5.0, frozenset({"a"}): 1.0})
        # Only the genuinely-changed join set is dirty; the re-validated
        # identical value is not.
        assert gamma.changed_since(checkpoint) == frozenset({frozenset({"a", "b"})})
        assert gamma.changed_since(0) == frozenset(
            {frozenset({"a"}), frozenset({"a", "b"})}
        )

    def test_copy_preserves_versioning(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        checkpoint = gamma.epoch
        clone = gamma.copy()
        assert clone.epoch == checkpoint
        clone.record({"b"}, 2.0)
        assert clone.changed_since(checkpoint) == frozenset({frozenset({"b"})})
        assert gamma.changed_since(checkpoint) == frozenset()

    def test_exact_entries_outrank_sampled(self):
        gamma = Gamma()
        gamma.record({"a", "b"}, 10.0)
        assert not gamma.is_exact({"a", "b"})
        gamma.record_exact({"a", "b"}, 999.0)
        assert gamma.is_exact({"a", "b"})
        assert gamma.get({"a", "b"}) == 999.0
        # A sampled re-validation never downgrades the exact observation.
        gamma.record({"a", "b"}, 10.0)
        assert gamma.get({"a", "b"}) == 999.0
        gamma.merge({frozenset({"a", "b"}): 12.0})
        assert gamma.get({"a", "b"}) == 999.0
        # A newer exact observation wins.
        gamma.record_exact({"a", "b"}, 1000.0)
        assert gamma.get({"a", "b"}) == 1000.0
        assert gamma.exact_join_sets() == frozenset({frozenset({"a", "b"})})

    def test_sampled_overwrite_of_exact_does_not_dirty(self):
        gamma = Gamma()
        gamma.record_exact({"a"}, 5.0)
        checkpoint = gamma.epoch
        gamma.record({"a"}, 7.0)  # silently ignored
        assert gamma.epoch == checkpoint
        assert gamma.changed_since(checkpoint) == frozenset()

    def test_merge_gamma_preserves_provenance(self):
        source = Gamma()
        source.record_exact({"a", "b"}, 42.0)
        source.record({"c"}, 3.0)
        target = Gamma()
        target.merge(source)
        assert target.is_exact({"a", "b"})
        assert not target.is_exact({"c"})

    def test_copy_preserves_provenance(self):
        gamma = Gamma()
        gamma.record_exact({"a"}, 1.0)
        clone = gamma.copy()
        assert clone.is_exact({"a"})
        clone.record({"a"}, 2.0)
        assert clone.get({"a"}) == 1.0

    def test_iteration_and_covered_sets(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        gamma.record({"a", "b"}, 2.0)
        assert set(gamma) == {frozenset({"a"}), frozenset({"a", "b"})}
        assert gamma.covered_join_sets() == frozenset(
            {frozenset({"a"}), frozenset({"a", "b"})}
        )
        assert dict(gamma.items())[frozenset({"a"})] == 1.0
