"""Unit tests for the Γ store of validated cardinalities."""

import pytest

from repro.cardinality.gamma import Gamma


class TestGamma:
    def test_record_and_get(self):
        gamma = Gamma()
        gamma.record({"a", "b"}, 123.0)
        assert gamma.get({"b", "a"}) == 123.0
        assert gamma.get({"a"}) is None
        assert {"a", "b"} in gamma
        assert len(gamma) == 1

    def test_empty_join_set_rejected(self):
        with pytest.raises(ValueError):
            Gamma().record([], 1.0)

    def test_merge_counts_new_entries_only(self):
        gamma = Gamma()
        gamma.record({"a"}, 10.0)
        added = gamma.merge({frozenset({"a"}): 12.0, frozenset({"a", "b"}): 5.0})
        assert added == 1
        # The newer value overwrites the older one.
        assert gamma.get({"a"}) == 12.0
        assert gamma.get({"a", "b"}) == 5.0

    def test_merge_gamma_instance(self):
        first = Gamma()
        first.record({"a"}, 1.0)
        second = Gamma()
        second.record({"b"}, 2.0)
        assert first.merge(second) == 1
        assert first.get({"b"}) == 2.0

    def test_merge_zero_new_entries_signals_coverage(self):
        gamma = Gamma()
        gamma.record({"a", "b"}, 4.0)
        assert gamma.merge({frozenset({"a", "b"}): 4.0}) == 0

    def test_copy_is_independent(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        clone = gamma.copy()
        clone.record({"b"}, 2.0)
        assert {"b"} not in gamma
        assert {"b"} in clone

    def test_iteration_and_covered_sets(self):
        gamma = Gamma()
        gamma.record({"a"}, 1.0)
        gamma.record({"a", "b"}, 2.0)
        assert set(gamma) == {frozenset({"a"}), frozenset({"a", "b"})}
        assert gamma.covered_join_sets() == frozenset(
            {frozenset({"a"}), frozenset({"a", "b"})}
        )
        assert dict(gamma.items())[frozenset({"a"})] == 1.0
