"""Tests for the Haas et al. sampling-based estimator."""

import pytest

from repro.cardinality.sampling_estimator import SamplingEstimator
from repro.errors import SamplingError
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.workloads.ott import generate_ott_database, make_ott_query


@pytest.fixture(scope="module")
def db():
    # Seed picked for a representative (not lucky, not pathological) sample
    # draw under the per-table (seed, name)-derived sampling seeds.
    return generate_ott_database(
        num_tables=4, rows_per_table=3000, rows_per_value=50, seed=11, sampling_ratio=0.2
    )


class TestSamplingEstimates:
    def test_requires_samples(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        bare = generate_ott_database(
            num_tables=2, rows_per_table=100, seed=1, create_samples=False
        )
        with pytest.raises(SamplingError):
            SamplingEstimator(bare, make_ott_query(bare, [0, 0]))
        # With samples present, construction succeeds.
        SamplingEstimator(db, query)

    def test_detects_empty_join(self, db):
        query = make_ott_query(db, [0, 1, 0, 0])
        estimator = SamplingEstimator(db, query)
        assert estimator.estimate_cardinality({"r1", "r2"}) == 0.0

    def test_nonempty_join_estimate_close_to_truth(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        estimator = SamplingEstimator(db, query)
        # B = A in the OTT data, so the true pair-join cardinality is the
        # product of the two selection counts.
        r1_selected = int((db.table("r1").column("a") == 0).sum())
        r2_selected = int((db.table("r2").column("a") == 0).sum())
        pair_actual = r1_selected * r2_selected
        pair_estimate = estimator.estimate_cardinality({"r1", "r2"})
        assert pair_estimate == pytest.approx(pair_actual, rel=0.6)

    def test_selectivity_matches_cardinality_scaling(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        estimator = SamplingEstimator(db, query)
        rho = estimator.estimate_selectivity({"r1", "r2"})
        cardinality = estimator.estimate_cardinality({"r1", "r2"})
        assert cardinality == pytest.approx(rho * 3000 * 3000, rel=1e-6)

    def test_estimates_cached(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        estimator = SamplingEstimator(db, query)
        first = estimator.estimate_cardinality({"r1", "r2", "r3"})
        second = estimator.estimate_cardinality({"r1", "r2", "r3"})
        assert first == second

    def test_empty_joinset_rejected(self, db):
        estimator = SamplingEstimator(db, make_ott_query(db, [0, 0, 0, 0]))
        with pytest.raises(ValueError):
            estimator.estimate_cardinality(set())


class TestValidatePlan:
    def test_validates_joins_only_by_default(self, db):
        query = make_ott_query(db, [0, 0, 0, 1])
        plan = Optimizer(db).optimize(query)
        validation = SamplingEstimator(db, query).validate_plan(plan)
        assert validation.joins_validated >= 1
        assert all(len(join_set) >= 2 for join_set in validation.cardinalities)
        assert validation.elapsed_seconds >= 0.0

    def test_validates_base_relations_when_asked(self, db):
        query = make_ott_query(db, [0, 0, 0, 1])
        plan = Optimizer(db).optimize(query)
        validation = SamplingEstimator(db, query).validate_plan(
            plan, validate_base_relations=True
        )
        singletons = [s for s in validation.cardinalities if len(s) == 1]
        assert len(singletons) == 4

    def test_full_query_join_set_is_validated(self, db):
        query = make_ott_query(db, [0, 0, 0, 1])
        plan = Optimizer(db).optimize(query)
        validation = SamplingEstimator(db, query).validate_plan(plan)
        full_set = frozenset({"r1", "r2", "r3", "r4"})
        assert full_set in validation.cardinalities
        # The query is empty (constants differ), and sampling sees that.
        assert validation.cardinalities[full_set] == 0.0

    def test_no_sample_support_skips_validation(self, db):
        """A join set with an empty factor sample must not be 'validated'.

        An unlucky draw that misses every row of one relation's selection
        would otherwise poison Γ with spurious empty joins and steer the
        optimizer into catastrophic plans it believes are free.
        """
        query = make_ott_query(db, [0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        estimator = SamplingEstimator(db, query)
        # Simulate the unlucky draw: make r2's filtered sample empty.
        import numpy as np

        filtered = estimator._filtered_sample("r2")
        estimator._filtered_cache["r2"] = filtered.take(np.empty(0, dtype=np.int64))
        assert not estimator.has_sample_support({"r1", "r2"})
        validation = estimator.validate_plan(plan)
        assert validation.joins_skipped_no_support >= 1
        assert all(
            "r2" not in join_set for join_set in validation.cardinalities
        )
        # Join sets with full support are still validated.
        supported = [s for s in validation.cardinalities if "r2" not in s]
        assert validation.joins_validated == len(supported)

    def test_no_sample_support_skips_base_relation_validation(self, db):
        """The guard applies to singletons too: an empty filtered sample of a
        non-empty selection must not validate the base relation to 0 rows."""
        import numpy as np

        query = make_ott_query(db, [0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        estimator = SamplingEstimator(db, query)
        filtered = estimator._filtered_sample("r2")
        estimator._filtered_cache["r2"] = filtered.take(np.empty(0, dtype=np.int64))
        validation = estimator.validate_plan(plan, validate_base_relations=True)
        assert frozenset({"r2"}) not in validation.cardinalities
        assert frozenset({"r1"}) in validation.cardinalities


class TestPrefixCache:
    def test_validate_plan_reuses_sub_joins(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        estimator = SamplingEstimator(db, query)
        first = estimator.validate_plan(plan)
        assert first.joins_validated >= 2
        # Every join set beyond the first extends a cached sub-join.
        assert first.prefix_cache_hits >= first.joins_validated - 1
        assert first.sample_join_row_ops > 0
        # A second round over the same plan does no sample-join work at all.
        second = estimator.validate_plan(plan)
        assert second.sample_join_row_ops == 0

    def test_selectivity_and_cardinality_share_join_count(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        estimator = SamplingEstimator(db, query)
        estimator.estimate_selectivity({"r1", "r2"})
        row_ops = estimator.sample_join_row_ops
        # The cardinality estimate for the same join set reuses the count.
        estimator.estimate_cardinality({"r1", "r2"})
        assert estimator.sample_join_row_ops == row_ops

    def test_cached_estimates_are_consistent(self, db):
        query = make_ott_query(db, [0, 0, 0, 0])
        cold = SamplingEstimator(db, query)
        warm = SamplingEstimator(db, query)
        warm.validate_plan(Optimizer(db).optimize(query))
        for aliases in ({"r1", "r2"}, {"r1", "r2", "r3"}, {"r1", "r2", "r3", "r4"}):
            assert cold.estimate_cardinality(aliases) == warm.estimate_cardinality(aliases)
