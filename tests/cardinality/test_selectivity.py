"""Unit tests for local-predicate and join selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cardinality.join_estimation import equijoin_selectivity
from repro.cardinality.selectivity import (
    conjunction_selectivity,
    equality_selectivity,
    inequality_selectivity,
    local_predicate_selectivity,
)
from repro.sql.ast import LocalPredicate
from repro.stats.analyze import analyze_column


def stats_for(values, mcv_target=100):
    return analyze_column(np.asarray(values), "a", is_numeric=True, mcv_target=mcv_target)


class TestEqualitySelectivity:
    def test_no_statistics_uses_default(self):
        assert equality_selectivity(None, 5) == pytest.approx(0.005)

    def test_mcv_value_uses_exact_frequency(self):
        stats = stats_for(np.repeat(np.arange(10), [50, 10, 10, 10, 5, 5, 4, 3, 2, 1]))
        assert equality_selectivity(stats, 0) == pytest.approx(0.5)

    def test_non_mcv_value_uses_uniform_remainder(self):
        values = np.concatenate([np.full(900, 1), np.arange(100, 200)])
        stats = analyze_column(values, "a", is_numeric=True, mcv_target=1)
        selectivity = equality_selectivity(stats, 150)
        assert selectivity == pytest.approx(0.1 / 100, rel=0.2)

    def test_unseen_value_with_complete_mcvs(self):
        stats = stats_for(np.repeat(np.arange(5), 20))
        assert equality_selectivity(stats, 99) < 1e-6

    @given(st.integers(min_value=0, max_value=49))
    @settings(max_examples=20, deadline=None)
    def test_uniform_column_estimates_are_exact(self, value):
        stats = stats_for(np.repeat(np.arange(50), 10))
        assert equality_selectivity(stats, value) == pytest.approx(1.0 / 50)


class TestInequalitySelectivity:
    def test_no_statistics_default(self):
        assert inequality_selectivity(None, "<", 5) == pytest.approx(1 / 3)

    def test_uniform_range_fractions(self):
        stats = stats_for(np.arange(1000))
        assert inequality_selectivity(stats, "<", 250) == pytest.approx(0.25, abs=0.05)
        assert inequality_selectivity(stats, ">=", 750) == pytest.approx(0.25, abs=0.05)

    def test_out_of_range_values(self):
        stats = stats_for(np.arange(1000))
        assert inequality_selectivity(stats, "<", -5) <= 0.01
        assert inequality_selectivity(stats, "<=", 5000) >= 0.99

    def test_non_numeric_value_falls_back(self):
        stats = stats_for(np.arange(100))
        assert inequality_selectivity(stats, "<", "abc") == pytest.approx(1 / 3)


class TestPredicateDispatchAndConjunction:
    def test_dispatch(self):
        stats = stats_for(np.repeat(np.arange(10), 10))
        eq = local_predicate_selectivity(stats, LocalPredicate("t", "a", "=", 3))
        ne = local_predicate_selectivity(stats, LocalPredicate("t", "a", "<>", 3))
        lt = local_predicate_selectivity(stats, LocalPredicate("t", "a", "<", 5))
        assert eq == pytest.approx(0.1)
        assert ne == pytest.approx(0.9)
        assert 0.3 < lt < 0.7

    def test_conjunction_is_product(self):
        assert conjunction_selectivity([0.5, 0.2]) == pytest.approx(0.1)
        assert conjunction_selectivity([]) == 1.0

    def test_conjunction_clamped(self):
        assert conjunction_selectivity([1e-20, 1e-20]) >= 1e-9
        assert conjunction_selectivity([2.0]) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_conjunction_within_bounds(self, selectivities):
        result = conjunction_selectivity(selectivities)
        assert 0.0 < result <= 1.0


class TestEquijoinSelectivity:
    def test_no_statistics_default(self):
        assert equijoin_selectivity(None, None) == pytest.approx(0.005)

    def test_one_sided_statistics(self):
        stats = stats_for(np.repeat(np.arange(20), 5))
        assert equijoin_selectivity(stats, None) == pytest.approx(1 / 20)

    def test_uniform_key_join_matches_system_r(self):
        left = stats_for(np.repeat(np.arange(100), 10), mcv_target=0)
        right = stats_for(np.repeat(np.arange(50), 10), mcv_target=0)
        assert equijoin_selectivity(left, right) == pytest.approx(1 / 100, rel=0.1)

    def test_mcv_join_refinement_on_skewed_data(self):
        # 90% of both sides share one hot value: the true join selectivity is
        # dominated by that value and far exceeds 1/n_distinct.
        left = stats_for(np.concatenate([np.full(900, 1), np.arange(2, 102)]))
        right = stats_for(np.concatenate([np.full(900, 1), np.arange(200, 300)]))
        selectivity = equijoin_selectivity(left, right)
        assert selectivity == pytest.approx(0.81, rel=0.1)

    def test_disjoint_complete_mcvs_give_near_zero(self):
        left = stats_for(np.repeat(np.arange(0, 10), 10))
        right = stats_for(np.repeat(np.arange(100, 110), 10))
        assert equijoin_selectivity(left, right) < 1e-6

    def test_selectivity_symmetric(self):
        left = stats_for(np.repeat(np.arange(30), 3))
        right = stats_for(np.repeat(np.arange(60), 2))
        assert equijoin_selectivity(left, right) == pytest.approx(
            equijoin_selectivity(right, left)
        )
