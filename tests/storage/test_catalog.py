"""Unit tests for the Database catalog."""

import numpy as np
import pytest

from repro.errors import CatalogError, StatisticsError
from repro.storage.catalog import Database
from repro.storage.table import Column, Table, TableSchema


@pytest.fixture
def make_table(make_rng):
    """Factory for small deterministic tables (seeded via the shared fixture)."""

    def factory(name="t", rows=100):
        schema = TableSchema(name, (Column("a", "int"), Column("b", "int")))
        rng = make_rng()
        return Table(schema, {"a": np.arange(rows), "b": rng.integers(0, 10, size=rows)})

    return factory


class TestTables:
    def test_create_and_lookup(self, make_table):
        db = Database()
        table = db.create_table(make_table())
        assert db.has_table("t")
        assert db.table("t") is table
        assert db.table_names() == ["t"]

    def test_duplicate_create_rejected(self, make_table):
        db = Database()
        db.create_table(make_table())
        with pytest.raises(CatalogError):
            db.create_table(make_table())

    def test_replace_invalidates_derived_state(self, make_table):
        db = Database()
        db.create_table(make_table())
        db.create_index("t", "a")
        db.analyze()
        db.create_samples(ratio=0.5, seed=0)
        db.create_table(make_table(rows=50), replace=True)
        assert not db.has_index("t", "a")
        assert "t" not in db.statistics
        assert db.samples is None

    def test_drop_table(self, make_table):
        db = Database()
        db.create_table(make_table())
        db.create_index("t", "a")
        db.analyze()
        db.drop_table("t")
        assert not db.has_table("t")
        assert "t" not in db.statistics
        with pytest.raises(CatalogError):
            db.drop_table("t")

    def test_unknown_table_lookup(self):
        with pytest.raises(CatalogError):
            Database().table("nope")


class TestIndexes:
    def test_create_and_lookup_index(self, make_table):
        db = Database()
        db.create_table(make_table())
        db.create_index("t", "b")
        assert db.has_index("t", "b")
        assert db.hash_index("t", "b").num_keys == 10
        assert db.sorted_index("t", "b") is not None
        assert db.indexed_columns("t") == ["b"]

    def test_missing_index_raises(self, make_table):
        db = Database()
        db.create_table(make_table())
        with pytest.raises(CatalogError):
            db.hash_index("t", "a")
        with pytest.raises(CatalogError):
            db.sorted_index("t", "a")


class TestStatisticsAndSamples:
    def test_analyze_populates_statistics(self, make_table):
        db = Database()
        db.create_table(make_table())
        db.analyze()
        stats = db.table_statistics("t")
        assert stats.row_count == 100
        assert stats.column("b").n_distinct == 10

    def test_statistics_missing_raises(self, make_table):
        db = Database()
        db.create_table(make_table())
        with pytest.raises(StatisticsError):
            db.table_statistics("t")

    def test_create_samples(self, make_table):
        db = Database()
        db.create_table(make_table(rows=1000))
        samples = db.create_samples(ratio=0.1, seed=1)
        assert db.samples is samples
        assert samples.sample_for("t").num_rows >= 80

    def test_create_table_from_columns(self):
        db = Database()
        table = db.create_table_from_columns(
            "x", (Column("a", "int"),), {"a": [1, 2, 3]}
        )
        assert table.num_rows == 3
        assert db.has_table("x")
