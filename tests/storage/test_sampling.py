"""Unit and property tests for table sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.storage.sampling import SampleSet, sample_table
from repro.storage.table import Column, Table, TableSchema


def make_table(rows: int) -> Table:
    schema = TableSchema("t", (Column("a", "int"),))
    return Table(schema, {"a": np.arange(rows)})


class TestSampleTable:
    def test_invalid_ratio_rejected(self):
        with pytest.raises(SamplingError):
            sample_table(make_table(10), ratio=0.0)
        with pytest.raises(SamplingError):
            sample_table(make_table(10), ratio=1.5)

    def test_unknown_method_rejected(self):
        with pytest.raises(SamplingError):
            sample_table(make_table(10), method="cluster")

    def test_full_ratio_returns_all_rows(self):
        sample = sample_table(make_table(50), ratio=1.0)
        assert sample.num_rows == 50

    def test_small_table_sampled_in_full(self):
        # Below min_rows the whole table is kept (protects the estimator).
        sample = sample_table(make_table(30), ratio=0.05, seed=1, min_rows=100)
        assert sample.num_rows == 30

    def test_min_rows_floor_applies(self):
        sample = sample_table(make_table(1000), ratio=0.01, seed=1, min_rows=100)
        assert sample.num_rows == 100

    def test_bernoulli_sample_size_is_plausible(self):
        sample = sample_table(make_table(20_000), ratio=0.1, seed=3, min_rows=10)
        assert 1500 < sample.num_rows < 2500

    def test_fixed_sample_size_is_exact(self):
        sample = sample_table(make_table(1000), ratio=0.2, seed=3, method="fixed", min_rows=10)
        assert sample.num_rows == 200

    def test_sampling_is_reproducible(self):
        first = sample_table(make_table(1000), ratio=0.2, seed=11, min_rows=10)
        second = sample_table(make_table(1000), ratio=0.2, seed=11, min_rows=10)
        assert list(first.column("a")) == list(second.column("a"))

    def test_empty_table(self):
        sample = sample_table(make_table(0), ratio=0.5)
        assert sample.num_rows == 0

    @given(rows=st.integers(min_value=1, max_value=2000), ratio=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_sample_rows_subset_of_base(self, rows, ratio):
        table = make_table(rows)
        sample = sample_table(table, ratio=ratio, seed=0, min_rows=5)
        assert sample.num_rows <= rows
        assert set(sample.column("a").tolist()) <= set(table.column("a").tolist())


class TestSampleSet:
    def test_seed_stable_when_tables_added(self):
        """Adding a table must not reshuffle the other tables' samples.

        Seeds are derived from ``(seed, table_name)``; the old positional
        ``seed + offset`` scheme shifted every seed after an insertion.
        """
        tables = {"alpha": make_table(5000), "gamma": make_table(5000)}
        before = SampleSet.build(tables, ratio=0.1, seed=7, min_rows=10)
        # "beta" sorts between the existing names, shifting their offsets.
        tables["beta"] = make_table(5000)
        after = SampleSet.build(tables, ratio=0.1, seed=7, min_rows=10)
        for name in ("alpha", "gamma"):
            assert (
                before.sample_for(name).column("a").tolist()
                == after.sample_for(name).column("a").tolist()
            )

    def test_scale_factor_fallback_uses_min_rows_aware_ratio(self):
        """The empty-sample fallback must honour the min-rows floor.

        With ratio=0.001 and min_rows=100 on a 10k-row table, the sampler
        would have drawn 100 rows (effective ratio 1%), so the fallback
        scale is 100x — the raw ``1 / ratio`` (1000x) overscales tenfold.
        """
        sample_set = SampleSet(ratio=0.001, min_rows=100)
        sample_set.samples["t"] = make_table(0)
        sample_set.base_row_counts["t"] = 10_000
        assert sample_set.scale_factor("t") == pytest.approx(100.0)

    def test_scale_factor_fallback_empty_base_table(self):
        sample_set = SampleSet(ratio=0.5, min_rows=100)
        sample_set.samples["t"] = make_table(0)
        sample_set.base_row_counts["t"] = 0
        assert sample_set.scale_factor("t") == 1.0

    def test_build_and_scale_factor(self):
        tables = {"big": make_table(10_000), "small": make_table(40)}
        sample_set = SampleSet.build(tables, ratio=0.1, seed=5, min_rows=50)
        assert sample_set.sample_for("small").num_rows == 40
        assert sample_set.scale_factor("small") == pytest.approx(1.0)
        big_scale = sample_set.scale_factor("big")
        assert 8.0 < big_scale < 13.0

    def test_missing_table_raises(self):
        sample_set = SampleSet.build({"t": make_table(10)}, ratio=0.5)
        with pytest.raises(SamplingError):
            sample_set.sample_for("other")
        with pytest.raises(SamplingError):
            sample_set.scale_factor("other")
