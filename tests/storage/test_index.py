"""Unit tests for hash and sorted indexes."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Column, Table, TableSchema


@pytest.fixture
def table():
    schema = TableSchema("t", (Column("k", "int"), Column("v", "int")))
    return Table(schema, {"k": np.array([5, 3, 5, 1, 3, 5]), "v": np.arange(6)})


class TestHashIndex:
    def test_lookup_returns_all_matches(self, table):
        index = HashIndex(table, "k")
        assert sorted(index.lookup(5).tolist()) == [0, 2, 5]
        assert sorted(index.lookup(3).tolist()) == [1, 4]
        assert index.lookup(1).tolist() == [3]

    def test_lookup_missing_value_is_empty(self, table):
        index = HashIndex(table, "k")
        assert index.lookup(42).size == 0

    def test_num_keys(self, table):
        assert HashIndex(table, "k").num_keys == 3

    def test_missing_column_rejected(self, table):
        with pytest.raises(CatalogError):
            HashIndex(table, "missing")

    def test_lookup_values_match_base_table(self, table):
        index = HashIndex(table, "k")
        rows = index.lookup(5)
        assert set(table.column("k")[rows]) == {5}


class TestSortedIndex:
    def test_point_lookup(self, table):
        index = SortedIndex(table, "k")
        assert sorted(index.lookup(3).tolist()) == [1, 4]

    def test_range_lookup_inclusive(self, table):
        index = SortedIndex(table, "k")
        rows = index.range_lookup(3, 5)
        assert sorted(table.column("k")[rows].tolist()) == [3, 3, 5, 5, 5]

    def test_range_lookup_exclusive_bounds(self, table):
        index = SortedIndex(table, "k")
        rows = index.range_lookup(1, 5, include_low=False, include_high=False)
        assert sorted(table.column("k")[rows].tolist()) == [3, 3]

    def test_open_ended_ranges(self, table):
        index = SortedIndex(table, "k")
        assert len(index.range_lookup(None, None)) == 6
        assert sorted(table.column("k")[index.range_lookup(4, None)].tolist()) == [5, 5, 5]
        assert sorted(table.column("k")[index.range_lookup(None, 2)].tolist()) == [1]

    def test_empty_range(self, table):
        index = SortedIndex(table, "k")
        assert index.range_lookup(10, 20).size == 0

    def test_missing_column_rejected(self, table):
        with pytest.raises(CatalogError):
            SortedIndex(table, "missing")
