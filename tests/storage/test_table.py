"""Unit tests for the columnar Table and its schema validation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.table import Column, Table, TableSchema, table_from_rows


def make_table(rows=10):
    schema = TableSchema("t", (Column("a", "int"), Column("b", "float"), Column("c", "str")))
    return Table(schema, {
        "a": np.arange(rows),
        "b": np.linspace(0.0, 1.0, rows),
        "c": np.array([f"v{i}" for i in range(rows)], dtype=object),
    })


class TestColumn:
    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_numpy_dtype_mapping(self):
        assert Column("x", "int").numpy_dtype() == np.dtype(np.int64)
        assert Column("x", "float").numpy_dtype() == np.dtype(np.float64)
        assert Column("x", "str").numpy_dtype() == np.dtype(object)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a"), Column("a")))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_column_lookup(self):
        schema = TableSchema("t", (Column("a"), Column("b")))
        assert schema.column("a").name == "a"
        assert schema.has_column("b")
        assert not schema.has_column("z")
        with pytest.raises(SchemaError):
            schema.column("z")


class TestTable:
    def test_basic_properties(self):
        table = make_table(10)
        assert table.num_rows == 10
        assert len(table) == 10
        assert table.column_names == ["a", "b", "c"]
        assert table.num_pages == 1

    def test_num_pages_rounds_up(self):
        table = make_table(250)
        assert table.num_pages == 3

    def test_column_access_and_dtype_coercion(self):
        table = make_table()
        assert table.column("a").dtype == np.int64
        assert table.column("b").dtype == np.float64
        assert table.column("c").dtype == object
        with pytest.raises(SchemaError):
            table.column("missing")

    def test_missing_column_rejected(self):
        schema = TableSchema("t", (Column("a"), Column("b")))
        with pytest.raises(SchemaError):
            Table(schema, {"a": [1, 2]})

    def test_extra_column_rejected(self):
        schema = TableSchema("t", (Column("a"),))
        with pytest.raises(SchemaError):
            Table(schema, {"a": [1], "z": [2]})

    def test_length_mismatch_rejected(self):
        schema = TableSchema("t", (Column("a"), Column("b")))
        with pytest.raises(SchemaError):
            Table(schema, {"a": [1, 2], "b": [1]})

    def test_two_dimensional_column_rejected(self):
        schema = TableSchema("t", (Column("a"),))
        with pytest.raises(SchemaError):
            Table(schema, {"a": np.zeros((2, 2))})

    def test_take_preserves_order_and_schema(self):
        table = make_table(10)
        sub = table.take(np.array([3, 1, 7]))
        assert sub.num_rows == 3
        assert list(sub.column("a")) == [3, 1, 7]
        assert sub.column_names == table.column_names

    def test_filter_with_mask(self):
        table = make_table(10)
        sub = table.filter(table.column("a") >= 5)
        assert sub.num_rows == 5
        assert list(sub.column("a")) == [5, 6, 7, 8, 9]

    def test_filter_mask_length_mismatch(self):
        table = make_table(10)
        with pytest.raises(SchemaError):
            table.filter(np.ones(3, dtype=bool))

    def test_head_returns_dicts(self):
        table = make_table(4)
        head = table.head(2)
        assert len(head) == 2
        assert head[0]["a"] == 0

    def test_zero_tuples_per_page_rejected(self):
        schema = TableSchema("t", (Column("a"),))
        with pytest.raises(SchemaError):
            Table(schema, {"a": [1]}, tuples_per_page=0)

    def test_table_from_rows(self):
        schema = TableSchema("t", (Column("a"), Column("b", "str")))
        table = table_from_rows(schema, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.num_rows == 2
        assert list(table.column("b")) == ["x", "y"]

    def test_table_from_rows_missing_column(self):
        schema = TableSchema("t", (Column("a"), Column("b", "str")))
        with pytest.raises(SchemaError):
            table_from_rows(schema, [{"a": 1}])
