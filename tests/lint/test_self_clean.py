"""The repo's own source must satisfy its invariant checker.

This is the in-suite mirror of the CI ``static-analysis`` gate: the real
``src/``, ``benchmarks/`` and ``tests/`` trees (fixtures excluded) produce
zero diagnostics, and the linter's own implementation passes its typing and
hygiene rules.
"""

from __future__ import annotations

from pathlib import Path

from repro_lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint(*relative: str) -> list:
    paths = [str(REPO_ROOT / rel) for rel in relative]
    return lint_paths(paths)


def test_src_is_clean() -> None:
    diagnostics = _lint("src")
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


def test_benchmarks_are_clean() -> None:
    diagnostics = _lint("benchmarks")
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


def test_test_suite_is_clean() -> None:
    diagnostics = _lint("tests")
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


def test_linter_lints_itself() -> None:
    diagnostics = _lint("tools/repro_lint")
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)
