"""End-to-end CLI behaviour: exit codes, filters, rule listing."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_lint(*args: str) -> Tuple[int, str, str]:
    completed = subprocess.run(
        [sys.executable, "-m", "repro_lint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return completed.returncode, completed.stdout, completed.stderr


def test_clean_tree_exits_zero() -> None:
    code, stdout, stderr = run_lint("src", "benchmarks", "tests")
    assert code == 0, stdout + stderr


def test_bad_fixture_exits_one_with_diagnostics() -> None:
    bad = str(FIXTURES / "rpl001_bad.py")
    code, stdout, stderr = run_lint(bad)
    assert code == 1
    assert "RPL001" in stdout
    # path:line:col: CODE message, clickable and grep-able.
    first = stdout.splitlines()[0]
    assert first.count(":") >= 3 and "rpl001_bad.py" in first
    assert "suppress" in stderr


def test_select_filter_restricts_rules() -> None:
    bad = str(FIXTURES / "rpl010_bad.py")
    code, stdout, _ = run_lint(bad, "--select", "RPL001")
    assert code == 0, stdout
    code, stdout, _ = run_lint(bad, "--select", "RPL010")
    assert code == 1 and "RPL010" in stdout


def test_ignore_filter_drops_rules() -> None:
    bad = str(FIXTURES / "rpl010_bad.py")
    code, stdout, _ = run_lint(bad, "--ignore", "RPL010")
    assert code == 0, stdout


def test_unknown_code_is_a_usage_error() -> None:
    code, _, stderr = run_lint("src", "--select", "RPL999")
    assert code == 2
    assert "RPL999" in stderr


def test_missing_path_is_a_usage_error() -> None:
    code, _, stderr = run_lint("does_not_exist_dir")
    assert code == 2
    assert "does_not_exist_dir" in stderr


def test_list_rules_shows_all_codes() -> None:
    code, stdout, _ = run_lint("--list-rules")
    assert code == 0
    for rule_code in [f"RPL{n:03d}" for n in range(1, 11)]:
        assert rule_code in stdout


def test_statistics_summarises_per_code() -> None:
    bad = str(FIXTURES / "rpl001_bad.py")
    code, stdout, _ = run_lint(bad, "--statistics")
    assert code == 1
    lines: List[str] = stdout.splitlines()
    assert any("RPL001" in line and "4" in line for line in lines)


def test_fixture_directory_excluded_from_directory_walks() -> None:
    # The gate lints tests/ wholesale; the deliberately-broken fixtures must
    # only be reachable as explicit file arguments.
    code, stdout, stderr = run_lint("tests")
    assert code == 0, stdout + stderr
