"""Every repro-lint rule fires on its bad fixture and stays quiet on the good one.

The fixtures under ``tests/lint/fixtures`` contain violations *on purpose*
(the directory is excluded from the repo-wide gate); each is linted here
in-memory under a virtual path inside the rule's scope, so path-scoped rules
(RPL002's plan-enumeration modules, RPL008's src/repro scope, ...) are
exercised exactly as they would be on real source.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict

import pytest

from repro_lint import REGISTRY, all_rules, lint_source, rule_for_code
from repro_lint.engine import _SUPPRESSION_RE

FIXTURES = Path(__file__).parent / "fixtures"

#: Virtual path each rule's fixtures are linted under — inside the rule's
#: scope (and outside its skip list) so path-scoped rules actually run.
VIRTUAL_PATHS: Dict[str, str] = {
    "RPL001": "src/repro/workloads/fixture.py",
    "RPL002": "src/repro/plans/fixture.py",
    "RPL003": "src/repro/relalg/fixture.py",
    "RPL004": "src/repro/relalg/fixture.py",
    "RPL005": "src/repro/relalg/fixture.py",
    "RPL006": "src/repro/executor/fixture.py",
    "RPL007": "src/repro/executor/fixture.py",
    "RPL008": "src/repro/executor/fixture.py",
    "RPL009": "src/repro/typing_fixture.py",
    "RPL010": "src/repro/service/fixture.py",
    "RPL011": "src/repro/service/coordinator.py",
}

#: How many distinct violations the bad fixture plants (the rule must find
#: every one, not just the first).
EXPECTED_BAD_COUNTS: Dict[str, int] = {
    "RPL001": 4,
    "RPL002": 4,
    "RPL003": 2,
    "RPL004": 3,
    "RPL005": 3,
    "RPL006": 2,
    "RPL007": 2,
    "RPL008": 3,
    "RPL009": 3,
    "RPL010": 3,
    "RPL011": 3,
}

ALL_CODES = sorted(VIRTUAL_PATHS)


def _fixture(code: str, kind: str) -> str:
    return (FIXTURES / f"{code.lower()}_{kind}.py").read_text(encoding="utf-8")


def test_registry_has_at_least_eight_rules() -> None:
    all_rules()  # rule modules register on import
    assert len(REGISTRY) >= 8
    assert sorted(REGISTRY) == ALL_CODES


def test_every_rule_has_fixture_coverage() -> None:
    # A new rule without a bad/good fixture pair fails here, not silently.
    for rule in all_rules():
        assert rule.code in VIRTUAL_PATHS, f"no fixture mapping for {rule.code}"
        assert (FIXTURES / f"{rule.code.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{rule.code.lower()}_good.py").is_file()


@pytest.mark.parametrize("code", ALL_CODES)
def test_rule_fires_on_bad_fixture(code: str) -> None:
    diagnostics = lint_source(
        _fixture(code, "bad"), VIRTUAL_PATHS[code], select=[code]
    )
    assert len(diagnostics) == EXPECTED_BAD_COUNTS[code], [
        d.render() for d in diagnostics
    ]
    assert all(d.code == code for d in diagnostics)
    assert all(d.line > 0 and d.path == VIRTUAL_PATHS[code] for d in diagnostics)


@pytest.mark.parametrize("code", ALL_CODES)
def test_rule_quiet_on_good_fixture(code: str) -> None:
    diagnostics = lint_source(
        _fixture(code, "good"), VIRTUAL_PATHS[code], select=[code]
    )
    assert diagnostics == [], [d.render() for d in diagnostics]


@pytest.mark.parametrize("code", ALL_CODES)
def test_rule_metadata_complete(code: str) -> None:
    rule = rule_for_code(code)
    assert rule.name and rule.summary and rule.contract


def test_suppression_comment_silences_one_line() -> None:
    source = "import numpy as np\nrng = np.random.default_rng()  # repro-lint: ignore[RPL001]\n"
    assert lint_source(source, "src/repro/fixture.py", select=["RPL001"]) == []


def test_suppression_comment_is_code_specific() -> None:
    source = "import numpy as np\nrng = np.random.default_rng()  # repro-lint: ignore[RPL010]\n"
    diagnostics = lint_source(source, "src/repro/fixture.py", select=["RPL001"])
    assert [d.code for d in diagnostics] == ["RPL001"]


def test_bare_suppression_comment_silences_all_codes() -> None:
    source = "import numpy as np\nrng = np.random.default_rng()  # repro-lint: ignore\n"
    assert lint_source(source, "src/repro/fixture.py") == []
    assert _SUPPRESSION_RE.search("# repro-lint: ignore") is not None


def test_scoped_rule_ignores_out_of_scope_paths() -> None:
    # RPL002 only polices the plan-enumeration/merge modules.
    bad = _fixture("RPL002", "bad")
    assert lint_source(bad, "src/repro/plans/fixture.py", select=["RPL002"])
    assert lint_source(bad, "src/repro/workloads/fixture.py", select=["RPL002"]) == []


def test_shard_order_rule_is_file_scoped() -> None:
    # RPL011 polices exactly the coordinator/sharding/merge-kernel modules.
    bad = _fixture("RPL011", "bad")
    assert lint_source(bad, "src/repro/service/sharding.py", select=["RPL011"])
    assert lint_source(bad, "src/repro/relalg/aggregate.py", select=["RPL011"])
    assert lint_source(bad, "src/repro/service/service.py", select=["RPL011"]) == []


def test_shm_rules_exempt_the_registry_module() -> None:
    # RPL006/RPL007 must not fire inside the one module allowed to own
    # segment lifecycles.
    for code in ("RPL006", "RPL007"):
        bad = _fixture(code, "bad")
        assert lint_source(bad, "src/repro/relalg/shm.py", select=[code]) == []


def test_syntax_error_reported_as_rpl000() -> None:
    diagnostics = lint_source("def broken(:\n", "src/repro/fixture.py")
    assert [d.code for d in diagnostics] == ["RPL000"]


def test_fixtures_are_valid_python() -> None:
    for path in sorted(FIXTURES.glob("*.py")):
        ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
