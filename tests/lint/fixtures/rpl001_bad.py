"""Fixture: every flavour of unseeded randomness RPL001 must catch."""

import random

import numpy as np


def entropy_seeded_generator():
    return np.random.default_rng()


def global_numpy_state(n):
    return np.random.permutation(n)


def entropy_seeded_stdlib():
    return random.Random()


def global_stdlib_state(values):
    return random.choice(values)
