"""RPL011 bad fixture: shard/merge loops whose order is insertion- or
hash-dependent — each would let two runs of the same scatter merge in a
different order."""

from __future__ import annotations

from typing import Dict, List, Set


def broadcast_gossip(shards: Dict[int, object], gamma: object) -> None:
    for shard in shards.values():  # violation: dict-view (arrival) order
        shard.apply_gamma_gossip(gamma)  # type: ignore[attr-defined]


def merge_columns(partials: Dict[str, List[float]]) -> List[List[float]]:
    # violation: dict-view order decides the merge column order
    return [partials[name] for name in partials.keys()]


def gossip_receivers(senders: Set[int], extra: Set[int]) -> List[int]:
    receivers = []
    for receiver in senders.union(extra):  # violation: set union, hash order
        receivers.append(receiver)
    return receivers
