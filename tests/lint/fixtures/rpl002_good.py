"""Fixture: content-ordered iteration RPL002 must accept."""


def expand_subsets(left, right):
    plans = []
    for alias in sorted(left | right):
        plans.append(alias)
    for alias in sorted(set(right)):
        plans.append(alias)
    for pair in enumerate(sorted(left.union(right))):
        plans.append(pair)
    for alias in [x for x in sorted(left)]:
        plans.append(alias)
    return plans
