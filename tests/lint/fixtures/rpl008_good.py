"""Fixture: float aggregation through the canonical helpers (RPL008)."""

from repro.relalg import group_aggregate


def grouped_sum(relation, keys, aggregates, scheduler):
    return group_aggregate(relation, keys, aggregates, scheduler=scheduler)


def plain_elementwise(values, other):
    # Elementwise arithmetic is order-free; only reductions are restricted.
    return values + other
