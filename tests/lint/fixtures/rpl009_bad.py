"""Fixture: missing annotations the typing gate must catch (RPL009)."""


def untyped_parameter(value) -> int:
    return int(value)


def untyped_return(value: int):
    return value


def untyped_star_args(*args, **kwargs) -> None:
    del args, kwargs
