"""Fixture: attach-only shared-memory use RPL006 must accept."""

from multiprocessing.shared_memory import SharedMemory


def attach(name):
    return SharedMemory(name=name)


def attach_explicit(name):
    return SharedMemory(name=name, create=False)
