"""Fixture: ledger-mediated segment release RPL007 must accept."""


def drop_segment(registry, name):
    registry.release(name)


def close_only(segment):
    segment.close()
