"""Fixture: hash-ordered iteration feeding plan enumeration (RPL002)."""


def expand_subsets(left, right):
    plans = []
    for alias in frozenset(left):
        plans.append(alias)
    for alias in {x for x in left}:
        plans.append(alias)
    for alias in set(right):
        plans.append(alias)
    for alias in list(left.union(right)):
        plans.append(alias)
    return plans
