"""Fixture: timing on the scheduler side only, RPL003 must accept."""

import time


def _join_partition_task(payload):
    return payload


def run_with_timing(payload):
    started = time.perf_counter()
    result = _join_partition_task(payload)
    return result, time.perf_counter() - started
