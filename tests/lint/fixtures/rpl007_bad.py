"""Fixture: raw segment unlinks outside the registry (RPL007)."""


def drop_segment(segment):
    segment.close()
    segment.unlink()


def drop_by_name(registry, name):
    registry.segments[name].unlink()
