"""RPL011 good fixture: the same shard/merge loops in canonical sorted
order — the merged bytes are now a pure function of the shard contents."""

from __future__ import annotations

from typing import Dict, List, Set


def broadcast_gossip(shards: Dict[int, object], gamma: object) -> None:
    for shard_id in sorted(shards):  # canonical shard-id order
        shards[shard_id].apply_gamma_gossip(gamma)  # type: ignore[attr-defined]


def merge_columns(partials: Dict[str, List[float]]) -> List[List[float]]:
    return [partials[name] for name in sorted(partials)]


def gossip_receivers(senders: Set[int], extra: Set[int]) -> List[int]:
    receivers = []
    for receiver in sorted(senders.union(extra)):
        receivers.append(receiver)
    return receivers


def merge_parts(parts: List[object]) -> List[object]:
    # Lists carry an explicit order — iteration is fine.
    return [part for part in parts]
