"""Fixture: explicitly seeded randomness RPL001 must accept."""

import random

import numpy as np


def seeded_generator(seed):
    return np.random.default_rng(seed)


def keyword_seeded_generator(seed):
    return np.random.default_rng(seed=seed)


def seeded_stdlib(seed):
    return random.Random(seed)


def drawing_from_instance(rng, values):
    return rng.choice(values)
