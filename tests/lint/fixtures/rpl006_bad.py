"""Fixture: shared-memory segments created outside the registry (RPL006)."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def allocate(nbytes):
    return SharedMemory(create=True, size=nbytes)


def allocate_positional(name, nbytes):
    return shared_memory.SharedMemory(name, True, nbytes)
