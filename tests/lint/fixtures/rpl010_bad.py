"""Fixture: mutable default arguments (RPL010)."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def index(key, mapping={}):
    return mapping.get(key)


def tally(*, seen=set()):
    return seen
