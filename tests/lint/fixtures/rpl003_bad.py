"""Fixture: wall-clock reads inside kernel task bodies (RPL003)."""

import time
from datetime import datetime


def _join_partition_task(payload):
    started = time.perf_counter()
    stamp = datetime.now()
    return payload, started, stamp
