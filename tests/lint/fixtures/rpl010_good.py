"""Fixture: immutable/None defaults RPL010 must accept."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def index(key, mapping=None):
    return (mapping or {}).get(key)


def window(bounds=(0, 10)):
    return bounds
