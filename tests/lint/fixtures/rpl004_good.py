"""Fixture: top-level kernel functions RPL004 must accept."""


def _shift_task(payload):
    value, offset = payload
    return value + offset


def run_top_level(scheduler, payloads):
    return scheduler.map_kernel(_shift_task, payloads)


def run_with_stage(scheduler, payloads):
    return scheduler.map_kernel(_shift_task, payloads, stage="shift")
