"""Fixture: descriptor payload task signatures RPL005 must accept."""

from typing import Tuple


def _scan_task(payload: Tuple[object, int, int]):
    descriptor, start, stop = payload
    return descriptor, start, stop


def materialize(relation, start: int, stop: int):
    # Not a *_task function: Relation parameters are fine outside kernels.
    return relation.slice(start, stop)
