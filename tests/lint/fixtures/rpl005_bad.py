"""Fixture: materialised relations in task signatures (RPL005)."""

from typing import Optional

from repro.relalg import ChunkedRelation, Relation
from repro.storage.table import Table


def _scan_task(relation: Relation, start: int, stop: int):
    return relation


def _chunk_task(chunked: "ChunkedRelation"):
    return chunked


def _load_task(table: Optional[Table]):
    return table
