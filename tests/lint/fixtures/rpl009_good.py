"""Fixture: fully annotated functions the typing gate must accept (RPL009)."""


class Counter:
    def __init__(self, start: int = 0) -> None:
        self.value = start

    def bump(self, by: int = 1) -> int:
        self.value += by
        return self.value


def typed_star_args(*args: int, **kwargs: object) -> int:
    del kwargs
    return sum(args)
