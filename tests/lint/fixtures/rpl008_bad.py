"""Fixture: ad-hoc float reductions outside the canonical helpers (RPL008)."""

import math

import numpy as np


def grouped_sum(values, boundaries):
    return np.add.reduceat(values, boundaries)


def compensated_total(values):
    return math.fsum(values)


def nan_total(values):
    return np.nansum(values)
