"""Fixture: non-picklable callables handed to map_kernel (RPL004)."""


def run_lambda(scheduler, payloads):
    return scheduler.map_kernel(lambda payload: payload, payloads)


def run_bound_method(scheduler, kernels, payloads):
    return scheduler.map_kernel(kernels.partition, payloads)


def run_closure(scheduler, payloads, offset):
    def _shifted_task(payload):
        return payload + offset

    return scheduler.map_kernel(_shifted_task, payloads)
