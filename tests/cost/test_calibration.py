"""Unit tests for the cost-unit calibration (Section 5.1.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.calibration import (
    CalibrationObservation,
    calibrate_cost_units,
    fit_cost_units,
)
from repro.cost.model import ResourceVector
from repro.cost.units import DEFAULT_COST_UNITS, CostUnits
from repro.errors import CalibrationError
from repro.relalg import TaskScheduler


def _observation(resources: ResourceVector, units: CostUnits, label="obs"):
    """An observation whose 'measured' time is exactly resources · units."""
    elapsed = float(resources.as_array() @ np.array(list(units.as_dict().values())))
    return CalibrationObservation(resources=resources, elapsed_seconds=elapsed, label=label)


def _synthetic_observations(units: CostUnits):
    """Six linearly independent resource vectors priced under ``units``."""
    vectors = [
        ResourceVector(seq_pages=100.0),
        ResourceVector(random_pages=40.0),
        ResourceVector(tuples=10_000.0),
        ResourceVector(index_tuples=5_000.0),
        ResourceVector(operator_evals=20_000.0),
        ResourceVector(
            seq_pages=10.0, random_pages=4.0, tuples=1_000.0,
            index_tuples=500.0, operator_evals=2_000.0,
        ),
    ]
    return [_observation(v, units, label=f"obs{i}") for i, v in enumerate(vectors)]


class TestFitCostUnits:
    def test_recovers_the_generating_units(self):
        truth = CostUnits(
            seq_page_cost=2e-4, random_page_cost=8e-4, cpu_tuple_cost=1e-6,
            cpu_index_tuple_cost=5e-7, cpu_operator_cost=2.5e-7,
        )
        result = fit_cost_units(_synthetic_observations(truth))
        fitted = result.units.as_dict()
        for name, value in truth.as_dict().items():
            assert fitted[name] == pytest.approx(value, rel=1e-6), name
        assert result.residual_norm == pytest.approx(0.0, abs=1e-9)
        assert result.num_observations == 6

    def test_requires_five_observations(self):
        observations = _synthetic_observations(DEFAULT_COST_UNITS)[:4]
        with pytest.raises(CalibrationError, match="at least 5"):
            fit_cost_units(observations)

    def test_rejects_non_finite_observations(self):
        observations = _synthetic_observations(DEFAULT_COST_UNITS)
        observations[0] = CalibrationObservation(
            resources=ResourceVector(seq_pages=float("nan")), elapsed_seconds=1.0
        )
        with pytest.raises(CalibrationError, match="non-finite"):
            fit_cost_units(observations)

    def test_zero_units_are_floored(self):
        """A unit NNLS drives to exactly zero is floored — zero-cost
        operations produce pathological plans."""
        # Every observation involves only sequential pages, so the other
        # four units are unidentifiable and NNLS returns 0 for them.
        observations = [
            _observation(ResourceVector(seq_pages=float(10 + i)), DEFAULT_COST_UNITS)
            for i in range(6)
        ]
        result = fit_cost_units(observations)
        for name, value in result.units.as_dict().items():
            assert value > 0.0, name


class TestCalibrateAgainstExecutor:
    def test_calibrated_units_differ_from_defaults(self, ott_db):
        result = calibrate_cost_units(ott_db)
        assert result.num_observations >= 5
        fitted = result.units.as_dict()
        defaults = DEFAULT_COST_UNITS.as_dict()
        # The defaults are PostgreSQL's abstract units; fitted values are in
        # seconds-per-operation on this machine — different by construction.
        assert fitted != defaults
        assert all(value > 0.0 for value in fitted.values())

    def test_scheduler_attached_calibration(self, ott_db):
        """Calibrating on the deployment's shared morsel scheduler works and
        fits positive units (timings change, identifiability does not)."""
        with TaskScheduler(workers=2, name="calib") as scheduler:
            result = calibrate_cost_units(ott_db, scheduler=scheduler)
        assert result.num_observations >= 5
        assert all(value > 0.0 for value in result.units.as_dict().values())

    def test_repetitions_average_timings(self, ott_db):
        result = calibrate_cost_units(ott_db, repetitions=2)
        assert result.num_observations >= 5
        assert all(obs.elapsed_seconds >= 0.0 for obs in result.observations)
