"""Unit tests for cost units, the cost model and calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.calibration import CalibrationObservation, fit_cost_units
from repro.cost.model import CostModel, ResourceVector
from repro.cost.units import CostUnits, DEFAULT_COST_UNITS
from repro.errors import CalibrationError
from repro.plans.nodes import JoinMethod, ScanMethod


class TestCostUnits:
    def test_defaults_match_postgresql(self):
        units = DEFAULT_COST_UNITS
        assert units.seq_page_cost == 1.0
        assert units.random_page_cost == 4.0
        assert units.cpu_tuple_cost == 0.01
        assert units.cpu_index_tuple_cost == 0.005
        assert units.cpu_operator_cost == 0.0025

    def test_as_dict_round_trip(self):
        units = CostUnits.from_vector(list(DEFAULT_COST_UNITS.as_dict().values()))
        assert units == DEFAULT_COST_UNITS

    def test_scaled_preserves_ratios(self):
        scaled = DEFAULT_COST_UNITS.scaled(10.0)
        assert scaled.random_page_cost / scaled.seq_page_cost == pytest.approx(4.0)

    def test_with_values(self):
        modified = DEFAULT_COST_UNITS.with_values(random_page_cost=8.0)
        assert modified.random_page_cost == 8.0
        assert modified.seq_page_cost == 1.0


class TestResourceVector:
    def test_addition(self):
        total = ResourceVector(seq_pages=1, tuples=10) + ResourceVector(seq_pages=2, operator_evals=5)
        assert total.seq_pages == 3
        assert total.tuples == 10
        assert total.operator_evals == 5

    def test_as_array_order_matches_units(self):
        vector = ResourceVector(1, 2, 3, 4, 5)
        assert list(vector.as_array()) == [1, 2, 3, 4, 5]


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_cost_is_dot_product(self):
        vector = ResourceVector(seq_pages=10, random_pages=1, tuples=100, index_tuples=0, operator_evals=200)
        expected = 10 * 1.0 + 1 * 4.0 + 100 * 0.01 + 200 * 0.0025
        assert self.model.cost(vector) == pytest.approx(expected)

    def test_seq_scan_charges_all_pages_and_tuples(self):
        resources = self.model.seq_scan_resources(table_rows=1000, num_predicates=2, output_rows=10)
        assert resources.seq_pages == 10
        assert resources.tuples == 1000
        assert resources.operator_evals == pytest.approx(2 * 1000 + 10)

    def test_index_scan_cheaper_than_seq_scan_for_selective_predicates(self):
        seq = self.model.seq_scan_resources(100_000, 1, 10)
        index = self.model.index_scan_resources(100_000, 10, 0, 10)
        assert self.model.cost(index) < self.model.cost(seq)

    def test_index_scan_pages_capped_by_table_pages(self):
        resources = self.model.index_scan_resources(1000, 5000, 0, 5000)
        assert resources.random_pages <= 10

    def test_scan_dispatch(self):
        seq = self.model.scan_resources(ScanMethod.SEQ_SCAN, 1000, 10, 1)
        index = self.model.scan_resources(ScanMethod.INDEX_SCAN, 1000, 10, 1, index_matched_rows=10)
        assert seq.seq_pages > 0 and index.random_pages > 0

    def test_hash_join_linear_in_inputs(self):
        small = self.model.hash_join_resources(100, 100, 10)
        big = self.model.hash_join_resources(10_000, 10_000, 10)
        assert self.model.cost(big) > self.model.cost(small)

    def test_nested_loop_quadratic_blowup(self):
        hash_join = self.model.hash_join_resources(10_000, 10_000, 100)
        nested = self.model.nested_loop_resources(10_000, 10_000, 100)
        assert self.model.cost(nested) > 100 * self.model.cost(hash_join)

    def test_merge_join_includes_sort_cost(self):
        merge = self.model.merge_join_resources(1000, 1000, 100)
        hash_join = self.model.hash_join_resources(1000, 1000, 100)
        assert merge.operator_evals > hash_join.operator_evals

    def test_index_nested_loop_charges_random_pages_per_output_row(self):
        resources = self.model.index_nested_loop_resources(100, 10_000, 500)
        assert resources.random_pages == 500
        assert resources.index_tuples == 500

    def test_join_dispatch_all_methods(self):
        for method in JoinMethod:
            resources = self.model.join_resources(method, 100, 100, 50, inner_table_rows=1000)
            assert self.model.cost(resources) > 0

    def test_aggregate_resources(self):
        resources = self.model.aggregate_resources(1000, 10)
        assert resources.operator_evals == 1000
        assert resources.tuples == 10

    def test_with_units_changes_pricing_not_formulas(self):
        expensive = self.model.with_units(DEFAULT_COST_UNITS.scaled(100))
        vector = ResourceVector(seq_pages=10, tuples=100)
        assert expensive.cost(vector) == pytest.approx(100 * self.model.cost(vector))

    @given(
        outer=st.floats(min_value=0, max_value=1e6),
        inner=st.floats(min_value=0, max_value=1e6),
        output=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_join_costs_are_nonnegative_and_finite(self, outer, inner, output):
        for method in JoinMethod:
            cost = self.model.cost(
                self.model.join_resources(method, outer, inner, output, inner_table_rows=inner)
            )
            assert np.isfinite(cost)
            assert cost >= 0

    @given(rows=st.floats(min_value=0, max_value=1e7))
    @settings(max_examples=50, deadline=None)
    def test_seq_scan_cost_monotone_in_rows(self, rows):
        smaller = self.model.cost(self.model.seq_scan_resources(rows, 1, rows / 2))
        larger = self.model.cost(self.model.seq_scan_resources(rows * 2 + 1, 1, rows))
        assert larger >= smaller


class TestCalibration:
    def test_requires_enough_observations(self):
        with pytest.raises(CalibrationError):
            fit_cost_units([CalibrationObservation(ResourceVector(seq_pages=1), 0.1)])

    def test_recovers_synthetic_units(self, make_rng):
        rng = make_rng()
        true_units = np.array([2e-3, 8e-3, 1e-5, 5e-6, 2e-6])
        observations = []
        for _ in range(50):
            vector = ResourceVector(*rng.uniform(0, 1000, size=5))
            seconds = float(vector.as_array() @ true_units)
            observations.append(CalibrationObservation(vector, seconds))
        result = fit_cost_units(observations)
        fitted = np.array(list(result.units.as_dict().values()))
        assert np.allclose(fitted, true_units, rtol=0.05)
        assert result.num_observations == 50

    def test_rejects_non_finite_observations(self):
        observations = [
            CalibrationObservation(ResourceVector(seq_pages=float("nan")), 0.1) for _ in range(5)
        ]
        with pytest.raises(CalibrationError):
            fit_cost_units(observations)

    def test_units_never_exactly_zero(self, make_rng):
        rng = make_rng(1)
        observations = []
        for _ in range(20):
            # Only sequential pages matter in this synthetic workload.
            pages = rng.uniform(1, 100)
            observations.append(
                CalibrationObservation(ResourceVector(seq_pages=pages), pages * 1e-3)
            )
        result = fit_cost_units(observations)
        for value in result.units.as_dict().values():
            assert value > 0
