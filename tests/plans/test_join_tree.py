"""Tests for the join-tree formalism (Definitions 1-4, Appendix E)."""

import pytest

from repro.plans.join_tree import (
    JoinTree,
    TransformationKind,
    classify_transformation,
    is_covered_by,
    is_local_transformation,
    plans_identical,
    plans_structurally_equal,
    replace_subtrees,
    subtree_for,
)
from repro.plans.nodes import (
    AggregateNode,
    JoinMethod,
    JoinNode,
    MaterializedNode,
    ScanMethod,
    ScanNode,
)


def scan(alias):
    return ScanNode(table=alias.upper(), alias=alias, relations=frozenset({alias}))


def join(left, right, method=JoinMethod.HASH_JOIN):
    return JoinNode(left=left, right=right, method=method,
                    relations=frozenset(left.relations | right.relations))


def left_deep(*aliases, method=JoinMethod.HASH_JOIN):
    plan = scan(aliases[0])
    for alias in aliases[1:]:
        plan = join(plan, scan(alias), method)
    return plan


# The trees of the paper's Figure 1.
def t1():
    return left_deep("a", "b", "c", "d")                      # ((A⋈B)⋈C)⋈D


def t1_prime():
    return join(join(scan("c"), join(scan("a"), scan("b"))), scan("d"))  # (C⋈(A⋈B))⋈D


def t2():
    return join(join(scan("a"), scan("b")), join(scan("c"), scan("d")))  # (A⋈B)⋈(C⋈D)


def t2_prime():
    return join(join(scan("c"), scan("d")), join(scan("a"), scan("b")))  # (C⋈D)⋈(A⋈B)


class TestJoinTreeRepresentation:
    def test_figure1_t2_join_set(self):
        tree = JoinTree.of(t2())
        assert tree.join_set == {
            frozenset({"a", "b"}), frozenset({"c", "d"}), frozenset({"a", "b", "c", "d"})
        }
        assert tree.num_joins == 3

    def test_encoding_of_left_deep_tree(self):
        assert JoinTree.of(t1()).encoding() == ("ab", "abc", "abcd")

    def test_encoding_of_bushy_tree(self):
        assert JoinTree.of(t2()).encoding() == ("ab", "cd", "abcd")

    def test_left_deep_detection(self):
        assert JoinTree.of(t1()).is_left_deep()
        assert not JoinTree.of(t2()).is_left_deep()

    def test_aggregate_node_is_transparent(self):
        plan = AggregateNode(child=t1(), relations=frozenset("abcd"))
        assert JoinTree.of(plan).join_set == JoinTree.of(t1()).join_set


class TestLocalGlobalTransformations:
    def test_tree_is_local_transformation_of_itself(self):
        assert is_local_transformation(t1(), t1())

    def test_figure1_local_pairs(self):
        assert is_local_transformation(t1(), t1_prime())
        assert is_local_transformation(t2(), t2_prime())

    def test_figure1_global_pair(self):
        assert JoinTree.of(t2()).is_global_transformation_of(JoinTree.of(t1()))
        assert not is_local_transformation(t1(), t2())

    def test_physical_operator_change_is_local(self):
        hash_plan = left_deep("a", "b", "c", method=JoinMethod.HASH_JOIN)
        merge_plan = left_deep("a", "b", "c", method=JoinMethod.MERGE_JOIN)
        assert is_local_transformation(hash_plan, merge_plan)

    def test_classify_transformation(self):
        assert classify_transformation(t1(), t1()) is TransformationKind.IDENTICAL
        assert classify_transformation(t1(), t1_prime()) is TransformationKind.LOCAL
        assert classify_transformation(t1(), t2()) is TransformationKind.GLOBAL


class TestCoverage:
    def test_plan_covered_by_itself(self):
        assert is_covered_by(t1(), [t1()])

    def test_local_transformation_is_covered(self):
        """Corollary 2's premise: a local transformation adds no new joins."""
        assert is_covered_by(t1_prime(), [t1()])
        assert is_covered_by(t2_prime(), [t2()])

    def test_example1_t2_not_covered_by_t1(self):
        """Example 1: the join C⋈D of T2 is not observed in T1."""
        assert not is_covered_by(t2(), [t1()])

    def test_union_coverage(self):
        other = join(join(scan("c"), scan("d")), join(scan("a"), scan("b")))
        assert is_covered_by(t2(), [t1(), other])


class TestPlanEquality:
    def test_plans_identical_requires_same_operators(self):
        assert plans_identical(t1(), t1())
        hash_plan = left_deep("a", "b", method=JoinMethod.HASH_JOIN)
        merge_plan = left_deep("a", "b", method=JoinMethod.MERGE_JOIN)
        assert not plans_identical(hash_plan, merge_plan)
        # ... but they are structurally equivalent (Definition 3).
        assert plans_structurally_equal(hash_plan, merge_plan)

    def test_structural_equality_sensitive_to_join_order(self):
        assert not plans_structurally_equal(t1(), t1_prime())

    def test_join_tree_hash_and_eq(self):
        assert JoinTree.of(t1()) == JoinTree.of(t1())
        assert hash(JoinTree.of(t1())) == hash(JoinTree.of(t1()))
        assert JoinTree.of(t1()) != JoinTree.of(t2())


class TestSubtreeSurgery:
    def test_subtree_for_finds_exact_cover(self):
        plan = t2()
        node = subtree_for(plan, {"a", "b"})
        assert node is not None
        assert frozenset(node.relations) == frozenset({"a", "b"})
        assert subtree_for(plan, {"a", "c"}) is None

    def test_subtree_for_skips_aggregate_wrapper(self):
        inner = t1()
        wrapped = AggregateNode(child=inner, relations=frozenset(inner.relations))
        found = subtree_for(wrapped, {"a", "b", "c", "d"})
        assert isinstance(found, JoinNode)

    def test_replace_subtrees_splices_materialized_leaves(self):
        plan = t1()  # ((A⋈B)⋈C)⋈D
        leaf = MaterializedNode(relations=frozenset({"a", "b"}), estimated_rows=7.0)
        replaced = replace_subtrees(plan, {frozenset({"a", "b"}): leaf})
        spliced = subtree_for(replaced, {"a", "b"})
        assert isinstance(spliced, MaterializedNode)
        assert frozenset(replaced.relations) == frozenset({"a", "b", "c", "d"})
        # The original plan is not mutated.
        assert isinstance(subtree_for(plan, {"a", "b"}), JoinNode)

    def test_replace_subtrees_top_down_prefers_largest(self):
        plan = t1()
        small = MaterializedNode(relations=frozenset({"a", "b"}), estimated_rows=1.0)
        large = MaterializedNode(relations=frozenset({"a", "b", "c"}), estimated_rows=2.0)
        replaced = replace_subtrees(
            plan, {frozenset({"a", "b"}): small, frozenset({"a", "b", "c"}): large}
        )
        assert isinstance(subtree_for(replaced, {"a", "b", "c"}), MaterializedNode)
        assert subtree_for(replaced, {"a", "b"}) is None

    def test_replace_full_plan_and_aggregate_child(self):
        inner = t1()
        wrapped = AggregateNode(child=inner, relations=frozenset(inner.relations))
        full = frozenset({"a", "b", "c", "d"})
        leaf = MaterializedNode(relations=full, estimated_rows=3.0)
        replaced = replace_subtrees(wrapped, {full: leaf})
        assert isinstance(replaced, AggregateNode)
        assert isinstance(replaced.child, MaterializedNode)

    def test_materialized_node_signature_and_leaf_order(self):
        leaf = MaterializedNode(relations=frozenset({"b", "a"}), estimated_rows=1.0)
        assert leaf.signature() == ("materialized", ("a", "b"))
        plan = join(leaf, scan("c"))
        assert JoinTree.of(plan).encoding() == ("abc",)
        assert "materialized" in leaf.describe()
