"""TaskScheduler lifecycle: idempotent shutdown, terminal close, no leaks."""

from __future__ import annotations

import threading

import pytest

from repro.relalg import TaskScheduler


def _worker_threads(scheduler_name: str):
    prefix = f"{scheduler_name}-morsel"
    return [t for t in threading.enumerate() if t.name.startswith(prefix)]


class TestShutdown:
    def test_shutdown_is_idempotent(self):
        scheduler = TaskScheduler(workers=2, name="idem")
        assert scheduler.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        scheduler.shutdown()
        scheduler.shutdown()
        scheduler.shutdown()
        assert not _worker_threads("idem")

    def test_shutdown_allows_respawn(self):
        """Between batches the driver parks the pool; the next map revives it."""
        scheduler = TaskScheduler(workers=2, name="respawn", backend="thread")
        scheduler.map(lambda x: x, [1, 2])
        scheduler.shutdown()
        assert scheduler.map(lambda x: x * 10, [1, 2]) == [10, 20]
        assert _worker_threads("respawn")
        scheduler.shutdown()

    def test_concurrent_shutdown_is_safe(self):
        scheduler = TaskScheduler(workers=4, name="concshut")
        scheduler.map(lambda x: x, range(8))
        threads = [threading.Thread(target=scheduler.shutdown) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not _worker_threads("concshut")


class TestClose:
    def test_close_is_terminal_but_still_serves_inline(self):
        scheduler = TaskScheduler(workers=2, name="terminal")
        scheduler.map(lambda x: x, [1])
        scheduler.close()
        assert scheduler.closed
        # Maps still work (inline), but never respawn worker threads.
        assert scheduler.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert not _worker_threads("terminal")
        stats = scheduler.stats()
        assert stats.tasks_inline >= 3

    def test_close_is_idempotent(self):
        scheduler = TaskScheduler(workers=2, name="close-idem")
        scheduler.close()
        scheduler.close()
        assert scheduler.closed

    def test_context_manager_closes_on_error(self):
        """The error path must not leak workers nor allow a later respawn —
        the service holds its scheduler in exactly this pattern."""
        with pytest.raises(RuntimeError, match="boom"):
            with TaskScheduler(workers=2, name="leaky") as scheduler:
                scheduler.map(lambda x: x, [1, 2, 3, 4])
                raise RuntimeError("boom")
        assert scheduler.closed
        scheduler.map(lambda x: x, [5, 6])  # inline, no respawn
        assert not _worker_threads("leaky")

    def test_closed_scheduler_reports_serial(self):
        scheduler = TaskScheduler(workers=4, name="serialized", backend="thread")
        assert scheduler.parallel
        scheduler.close()
        assert not scheduler.parallel

    def test_counters_survive_close(self):
        scheduler = TaskScheduler(workers=2, name="counted", backend="thread")
        scheduler.map(lambda x: x, range(6))
        submitted_before = scheduler.stats().tasks_submitted
        scheduler.close()
        assert scheduler.stats().tasks_submitted == submitted_before
