"""On a single-core host the scheduler degrades to inline serial execution.

``BENCH_parallel_runtime.json`` measured 0.67× vs serial at 2 workers on a
1-core host: fork, descriptor pickling and queue transport are pure overhead
when there is zero available parallelism.  The contract under test: a
:class:`TaskScheduler` constructed *without* an explicit backend runs one
inline worker when ``os.cpu_count()`` is 1, while an explicit ``backend=``
remains a demand for that pool (the shm lifecycle tests rely on it).
"""

from __future__ import annotations

import pytest

from repro.relalg import TaskScheduler
from repro.relalg.scheduler import default_worker_count, resolve_worker_count


def _double_task(payload: int) -> int:
    return payload * 2


@pytest.fixture
def single_core(monkeypatch):
    monkeypatch.setattr("repro.relalg.scheduler.os.cpu_count", lambda: 1)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SCHED_BACKEND", raising=False)


class TestSingleCoreDegrade:
    def test_default_worker_count_is_one(self, single_core):
        assert default_worker_count() == 1
        assert resolve_worker_count("auto") == 1
        assert resolve_worker_count(None) == 1

    def test_scheduler_degrades_to_inline_serial(self, single_core):
        sched = TaskScheduler(workers=4, name="one-core")
        try:
            assert sched.workers == 1
            assert not sched.parallel
            assert not sched.process_parallel
        finally:
            sched.close()

    def test_map_and_map_kernel_run_inline(self, single_core):
        with TaskScheduler(workers=2, name="one-core-inline") as sched:
            assert sched.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
            assert sched.map_kernel(_double_task, [1, 2, 3]) == [2, 4, 6]
            stats = sched.stats()
            assert stats.tasks_inline == 6
            assert stats.tasks_submitted == 0
            assert stats.tasks_process == 0

    def test_explicit_backend_bypasses_the_degrade(self, single_core):
        # An explicit backend is a demand for that pool (correctness tests
        # exercise real worker processes even on one core).
        for backend in ("process", "thread"):
            sched = TaskScheduler(workers=2, name=f"forced-{backend}", backend=backend)
            try:
                assert sched.workers == 2
                assert sched.parallel
            finally:
                sched.close()

    def test_multicore_host_keeps_requested_workers(self, monkeypatch):
        monkeypatch.setattr("repro.relalg.scheduler.os.cpu_count", lambda: 8)
        sched = TaskScheduler(workers=4, name="eight-core")
        try:
            assert sched.workers == 4
            assert sched.parallel
        finally:
            sched.close()

    def test_workers_env_override_is_still_clamped_without_backend(
        self, single_core, monkeypatch
    ):
        # REPRO_WORKERS drives the *auto* rule; the single-core degrade is
        # about pools being pure overhead, which an oversized auto count
        # does not change.
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_worker_count() == 6
        sched = TaskScheduler(name="env-sized")
        try:
            assert sched.workers == 1
        finally:
            sched.close()
