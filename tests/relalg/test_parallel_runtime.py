"""Property tests for the morsel-driven parallel runtime.

The contract under test is the tentpole's hard requirement: **every parallel
path is bit-identical to the serial path** — same rows, same order, same
dtypes, including float aggregates whose accumulation order must not change.
The tests sweep randomized data, morsel sizes and partition counts across

* the partition-parallel hash join (int keys, dict-encoded string keys,
  multi-column composite keys, and the int64 composite-domain overflow path
  that routes predicates through the residual filter);
* chunk-parallel grouped aggregation (sum/avg float bit-identity, string
  min/max, count);
* morsel-parallel predicate evaluation;
* the scheduler itself (ordered results, accounting, nested-map safety);
* end-to-end query execution over the TPC-H / TPC-DS / OTT generators.

Parallel kernels normally fall back to serial below a row threshold; the
``force_parallel`` fixture zeroes those thresholds so small randomized
relations still exercise the parallel machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.relalg.aggregate as aggregate_module
import repro.relalg.joins as joins_module
import repro.relalg.predicates as predicates_module
from repro.relalg import (
    ChunkedRelation,
    DictEncodedArray,
    Relation,
    TaskScheduler,
    filter_relation,
    group_aggregate,
    hash_join,
    parallel_hash_join,
)
from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate


@pytest.fixture
def force_parallel(monkeypatch):
    """Zero the serial-fallback row thresholds so small inputs go parallel."""
    monkeypatch.setattr(joins_module, "_MIN_PARALLEL_JOIN_ROWS", 0)
    monkeypatch.setattr(aggregate_module, "_MIN_PARALLEL_AGG_ROWS", 0)
    monkeypatch.setattr(predicates_module, "_MIN_PARALLEL_FILTER_ROWS", 0)


@pytest.fixture(scope="module", params=["process", "thread"])
def scheduler(request):
    """Every bit-identity property runs against both backends: the
    process-backed shared-memory runtime and the legacy thread tier."""
    with TaskScheduler(workers=4, name="test", backend=request.param) as sched:
        yield sched


def assert_bit_identical(serial: Relation, parallel: Relation) -> None:
    """Same columns, rows, row order, dtypes — byte-for-byte equality."""
    assert set(serial) == set(parallel)
    assert serial.num_rows == parallel.num_rows
    for name in serial:
        a, b = serial[name], parallel[name]
        if isinstance(a, DictEncodedArray):
            assert isinstance(b, DictEncodedArray), name
            assert np.array_equal(a.codes, b.codes), name
            assert np.array_equal(a.dictionary, b.dictionary), name
        else:
            a, b = np.asarray(a), np.asarray(b)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name


def _keyed_relation(rng, alias, rows, domain, string_keys):
    key_values = rng.integers(0, domain, size=rows)
    if string_keys:
        key = DictEncodedArray.encode(
            np.array([f"key_{value:05d}" for value in key_values], dtype=object)
        )
    else:
        key = key_values
    return Relation(
        {
            f"{alias}.k": key,
            f"{alias}.k2": rng.integers(0, max(2, domain // 3), size=rows),
            f"{alias}.payload": rng.uniform(0.0, 100.0, size=rows),
        }
    )


class TestParallelHashJoinBitIdentity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("string_keys", [False, True])
    def test_single_key_random(self, force_parallel, scheduler, seed, string_keys, make_rng):
        rng = make_rng(seed)
        left = _keyed_relation(
            rng, "l", int(rng.integers(0, 500)), int(rng.integers(1, 60)), string_keys
        )
        right = _keyed_relation(
            rng, "r", int(rng.integers(0, 500)), int(rng.integers(1, 60)), string_keys
        )
        predicates = [JoinPredicate("l", "k", "r", "k")]
        serial = hash_join(left, right, predicates, frozenset({"l"}))
        for num_partitions in (None, 1, 3, 7):
            parallel = parallel_hash_join(
                left, right, predicates, frozenset({"l"}),
                scheduler=scheduler, num_partitions=num_partitions,
            )
            assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("seed", range(4))
    def test_composite_keys(self, force_parallel, scheduler, seed, make_rng):
        rng = make_rng(100 + seed)
        left = _keyed_relation(rng, "l", 300, 12, False)
        right = _keyed_relation(rng, "r", 250, 12, False)
        predicates = [
            JoinPredicate("l", "k", "r", "k"),
            JoinPredicate("l", "k2", "r", "k2"),
        ]
        serial = hash_join(left, right, predicates, frozenset({"l"}))
        parallel = parallel_hash_join(
            left, right, predicates, frozenset({"l"}), scheduler=scheduler
        )
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("string_keys", [False, True])
    def test_composite_domain_overflow_residual_path(
        self, force_parallel, scheduler, monkeypatch, string_keys
    , make_rng):
        """When the composite int64 domain overflows, extra predicates become
        residual filters on the matched pairs — serial and parallel must
        agree bit for bit on that path too (shrinking the overflow limit
        forces it without multi-million-value dictionaries)."""
        monkeypatch.setattr(joins_module, "_MAX_COMPOSITE_DOMAIN", 8)
        rng = make_rng(7)
        left = _keyed_relation(rng, "l", 400, 20, string_keys)
        right = _keyed_relation(rng, "r", 350, 20, string_keys)
        predicates = [
            JoinPredicate("l", "k", "r", "k"),
            JoinPredicate("l", "k2", "r", "k2"),
        ]
        # The shrunken limit must actually trigger the residual path.
        codes = joins_module._composite_codes(left, right, predicates, frozenset({"l"}))
        assert codes[3], "expected the overflow limit to force a residual predicate"
        serial = hash_join(left, right, predicates, frozenset({"l"}))
        parallel = parallel_hash_join(
            left, right, predicates, frozenset({"l"}), scheduler=scheduler
        )
        assert_bit_identical(serial, parallel)
        # Cross-check against the unshrunken composite-key result (the
        # residual path must not change the answer, only the route).
        monkeypatch.undo()
        assert_bit_identical(hash_join(left, right, predicates, frozenset({"l"})), serial)

    def test_empty_and_no_match_inputs(self, force_parallel, scheduler, make_rng):
        rng = make_rng(1)
        left = _keyed_relation(rng, "l", 100, 5, False)
        empty = _keyed_relation(rng, "r", 0, 5, False)
        predicates = [JoinPredicate("l", "k", "r", "k")]
        assert_bit_identical(
            hash_join(left, empty, predicates, frozenset({"l"})),
            parallel_hash_join(left, empty, predicates, frozenset({"l"}), scheduler=scheduler),
        )
        disjoint = Relation({"r.k": rng.integers(100, 110, size=50),
                             "r.k2": rng.integers(0, 3, size=50),
                             "r.payload": rng.uniform(size=50)})
        assert_bit_identical(
            hash_join(left, disjoint, predicates, frozenset({"l"})),
            parallel_hash_join(left, disjoint, predicates, frozenset({"l"}), scheduler=scheduler),
        )


class TestParallelAggregationBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("morsel_rows", [7, 64, 1000, 100_000])
    def test_float_sum_avg_bit_identity(self, force_parallel, scheduler, seed, morsel_rows, make_rng):
        """Group-aligned chunking must keep float accumulation order — the
        sums must be *exactly* equal, not just allclose."""
        rng = make_rng(seed)
        rows = int(rng.integers(1, 3000))
        relation = Relation(
            {
                "t.g": rng.integers(0, max(1, rows // 4), size=rows),
                "t.v": rng.uniform(-1e6, 1e6, size=rows),
            }
        )
        group_by = [ColumnRef("t", "g")]
        aggregates = [
            Aggregate("sum", "t", "v", "total"),
            Aggregate("avg", "t", "v", "mean"),
            Aggregate("min", "t", "v", "lo"),
            Aggregate("max", "t", "v", "hi"),
            Aggregate("count", None, None, "n"),
        ]
        serial = group_aggregate(relation, group_by, aggregates)
        parallel = group_aggregate(
            relation, group_by, aggregates, scheduler=scheduler, morsel_rows=morsel_rows
        )
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("morsel_rows", [3, 50, 1024])
    def test_string_keys_and_string_min_max(self, force_parallel, scheduler, morsel_rows, make_rng):
        rng = make_rng(13)
        rows = 800
        categories = np.array([f"cat_{i:02d}" for i in range(17)], dtype=object)
        relation = Relation(
            {
                "t.g": DictEncodedArray.encode(categories[rng.integers(0, 17, size=rows)]),
                "t.s": DictEncodedArray.encode(
                    np.array([f"val_{v:04d}" for v in rng.integers(0, 300, size=rows)], dtype=object)
                ),
                "t.v": rng.uniform(size=rows),
            }
        )
        aggregates = [
            Aggregate("min", "t", "s", "lo"),
            Aggregate("max", "t", "s", "hi"),
            Aggregate("sum", "t", "v", "total"),
            Aggregate("count", None, None, "n"),
        ]
        serial = group_aggregate(relation, [ColumnRef("t", "g")], aggregates)
        parallel = group_aggregate(
            relation, [ColumnRef("t", "g")], aggregates,
            scheduler=scheduler, morsel_rows=morsel_rows,
        )
        assert_bit_identical(serial, parallel)

    def test_global_aggregate_unaffected(self, force_parallel, scheduler, make_rng):
        rng = make_rng(3)
        relation = Relation({"t.v": rng.uniform(size=500)})
        aggregates = [Aggregate("sum", "t", "v", "s"), Aggregate("count", None, None, "n")]
        serial = group_aggregate(relation, [], aggregates)
        parallel = group_aggregate(relation, [], aggregates, scheduler=scheduler)
        assert_bit_identical(serial, parallel)


class TestParallelFilterBitIdentity:
    @pytest.mark.parametrize("morsel_rows", [5, 128, 4096])
    def test_filter_masks_identical(self, force_parallel, scheduler, morsel_rows, make_rng):
        rng = make_rng(21)
        rows = 2000
        relation = Relation(
            {
                "t.a": rng.integers(0, 50, size=rows),
                "t.s": DictEncodedArray.encode(
                    np.array([f"v{v:02d}" for v in rng.integers(0, 30, size=rows)], dtype=object)
                ),
            }
        )
        predicates = [
            LocalPredicate("t", "a", "between", (10, 35)),
            LocalPredicate("t", "s", "in", ("v01", "v05", "v27")),
        ]
        serial = filter_relation(relation, "t", predicates)
        parallel = filter_relation(
            relation, "t", predicates, scheduler, morsel_rows
        )
        assert_bit_identical(serial, parallel)


class TestChunkedRelation:
    def test_zero_copy_morsels(self, make_rng):
        rng = make_rng(5)
        relation = Relation(
            {
                "t.a": rng.integers(0, 9, size=1000),
                "t.s": DictEncodedArray.encode(
                    np.array([f"x{v}" for v in rng.integers(0, 5, size=1000)], dtype=object)
                ),
            }
        )
        chunked = ChunkedRelation(relation, morsel_rows=300)
        assert chunked.num_morsels == 4
        assert [stop - start for start, stop in chunked.bounds] == [300, 300, 300, 100]
        assert sum(m.num_rows for m in chunked) == 1000
        morsel = chunked.morsel(1)
        assert np.shares_memory(np.asarray(morsel["t.a"]), np.asarray(relation["t.a"]))
        assert np.shares_memory(morsel["t.s"].codes, relation["t.s"].codes)
        assert morsel["t.s"].dictionary is relation["t.s"].dictionary
        assert chunked.concat() is relation

    def test_empty_relation_has_one_empty_morsel(self):
        chunked = ChunkedRelation(Relation(), morsel_rows=10)
        assert chunked.num_morsels == 1
        assert chunked.morsel(0).num_rows == 0

    def test_concat_of_morsels_round_trips(self, make_rng):
        from repro.relalg import concat_relations

        rng = make_rng(8)
        relation = Relation(
            {
                "t.a": rng.integers(0, 9, size=777),
                "t.s": DictEncodedArray.encode(
                    np.array([f"x{v}" for v in rng.integers(0, 5, size=777)], dtype=object)
                ),
            }
        )
        rebuilt = concat_relations(ChunkedRelation(relation, morsel_rows=100))
        assert_bit_identical(relation, rebuilt)
        # Morsel parts share one dictionary, so the rebuilt string column
        # concatenates in code space without re-encoding.
        assert rebuilt["t.s"].dictionary is relation["t.s"].dictionary

    def test_fingerprint_tracks_content_and_grid(self):
        base = Relation({"t.a": np.arange(100), "t.b": np.arange(100) * 2.0})
        same = Relation({"t.a": np.arange(100), "t.b": np.arange(100) * 2.0})
        assert ChunkedRelation(base, 16).fingerprint() == ChunkedRelation(same, 16).fingerprint()
        assert ChunkedRelation(base, 16).fingerprint() != ChunkedRelation(base, 32).fingerprint()
        changed = Relation({"t.a": np.arange(100), "t.b": np.arange(100) * 2.0})
        changed["t.b"] = np.asarray(changed["t.b"]).copy()
        np.asarray(changed["t.b"])[50] += 1.0
        assert ChunkedRelation(base, 16).fingerprint() != ChunkedRelation(changed, 16).fingerprint()


class TestTaskScheduler:
    def test_results_in_submission_order(self):
        import time as time_module

        with TaskScheduler(workers=4, backend="thread") as sched:
            def slow_identity(item):
                # Earlier items sleep longer: completion order is reversed.
                time_module.sleep(0.02 * (5 - item))
                return item

            assert sched.map(slow_identity, range(5)) == [0, 1, 2, 3, 4]
            assert sched.stats().tasks_completed == 5

    def test_serial_scheduler_runs_inline(self):
        sched = TaskScheduler(workers=1)
        assert not sched.parallel
        assert sched.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        stats = sched.stats()
        assert stats.tasks_submitted == 0 and stats.tasks_inline == 3

    def test_nested_map_from_worker_runs_inline(self):
        with TaskScheduler(workers=2, backend="thread") as sched:
            def outer(item):
                return sum(sched.map(lambda x: x + item, range(3)))

            assert sched.map(outer, [10, 20]) == [33, 63]

    def test_accounting_labels(self):
        with TaskScheduler(workers=2, backend="thread") as sched:
            with sched.accounting("q1"):
                sched.map(lambda x: x, range(4))
            sched.map(lambda x: x, range(3), account="q2")
            assert sched.account_stats("q1").tasks == 4
            assert sched.account_stats("q2").tasks == 3
            assert sched.account_stats("missing").tasks == 0

    def test_queue_depth_high_water(self):
        with TaskScheduler(workers=2, backend="thread") as sched:
            sched.map(lambda x: x, range(8))
            assert sched.max_queue_depth >= 2
            assert sched.queue_depth == 0
