"""Property tests for the relational-algebra core.

The three equi-join kernels (hash, sort-merge, block nested-loop) must agree
on the produced row *multiset* for randomized schemas and data, and
dictionary-encoded string columns must round-trip unchanged through filter,
join and aggregation.
"""

from collections import Counter

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.relalg import (
    DictEncodedArray,
    Relation,
    filter_relation,
    group_aggregate,
    hash_join,
    merge_join,
    nested_loop_join,
)
from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate


def _row_multiset(relation: Relation) -> Counter:
    decoded = relation.decoded()
    names = sorted(decoded)
    return Counter(
        tuple(decoded[name][i] for name in names) for i in range(relation.num_rows)
    )


def _random_relation(rng, alias: str, rows: int, key_domain: int, string_keys: bool):
    key_values = rng.integers(0, key_domain, size=rows)
    if string_keys:
        key = DictEncodedArray.encode(
            np.array([f"key_{value:03d}" for value in key_values], dtype=object)
        )
    else:
        key = key_values
    return Relation(
        {
            f"{alias}.k": key,
            f"{alias}.payload": rng.integers(0, 1000, size=rows),
        }
    )


class TestJoinKernelEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("string_keys", [False, True])
    def test_kernels_agree_on_random_data(self, seed, string_keys, make_rng):
        rng = make_rng(seed)
        left = _random_relation(
            rng, "l", int(rng.integers(0, 120)), int(rng.integers(1, 40)), string_keys
        )
        right = _random_relation(
            rng, "r", int(rng.integers(0, 120)), int(rng.integers(1, 40)), string_keys
        )
        predicates = [JoinPredicate("l", "k", "r", "k")]
        results = [
            kernel(left, right, predicates, frozenset({"l"}))
            for kernel in (hash_join, merge_join, nested_loop_join)
        ]
        reference = _row_multiset(results[-1])
        assert _row_multiset(results[0]) == reference
        assert _row_multiset(results[1]) == reference
        # Sanity: the multiset matches a dictionary-based reference join.
        left_keys = left["l.k"].decode() if string_keys else left["l.k"]
        right_keys = right["r.k"].decode() if string_keys else right["r.k"]
        expected = sum(
            int(np.sum(np.asarray(right_keys) == key)) for key in np.asarray(left_keys)
        )
        assert results[0].num_rows == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_predicate_composite_keys(self, seed, make_rng):
        rng = make_rng(100 + seed)
        rows = 150
        left = Relation(
            {
                "l.k1": rng.integers(0, 6, size=rows),
                "l.k2": rng.integers(0, 6, size=rows),
            }
        )
        right = Relation(
            {
                "r.k1": rng.integers(0, 6, size=rows),
                "r.k2": rng.integers(0, 6, size=rows),
            }
        )
        predicates = [
            JoinPredicate("l", "k1", "r", "k1"),
            JoinPredicate("l", "k2", "r", "k2"),
        ]
        counts = {
            kernel.__name__: kernel(left, right, predicates, frozenset({"l"})).num_rows
            for kernel in (hash_join, merge_join, nested_loop_join)
        }
        assert len(set(counts.values())) == 1, counts

    def test_cross_product_without_predicates(self):
        left = Relation({"l.a": np.arange(7)})
        right = Relation({"r.b": np.arange(5)})
        for kernel in (hash_join, merge_join, nested_loop_join):
            assert kernel(left, right, [], frozenset({"l"})).num_rows == 35

    def test_reversed_predicate_orientation(self):
        left = Relation({"l.k": np.array([1, 2, 3])})
        right = Relation({"r.k": np.array([2, 3, 3])})
        # Predicate written right-to-left must resolve sides via left_aliases.
        predicate = JoinPredicate("r", "k", "l", "k")
        result = hash_join(left, right, [predicate], frozenset({"l"}))
        assert result.num_rows == 3


class TestDictionaryRoundTrip:
    def test_encode_decode_round_trip(self):
        values = np.array(["pear", "apple", "pear", "fig", "apple"], dtype=object)
        encoded = DictEncodedArray.encode(values)
        assert encoded.codes.dtype == np.int32
        assert list(encoded.decode()) == list(values)

    def test_filter_join_aggregate_round_trip(self, make_rng):
        rng = make_rng(11)
        categories = np.array(["alpha", "beta", "gamma", "delta"], dtype=object)
        rows = 300
        left = Relation(
            {
                "l.cat": DictEncodedArray.encode(categories[rng.integers(0, 4, size=rows)]),
                "l.v": rng.uniform(0, 10, size=rows),
            }
        )
        right = Relation(
            {"r.cat": DictEncodedArray.encode(categories[rng.integers(0, 4, size=rows)])}
        )
        filtered = filter_relation(
            left, "l", [LocalPredicate("l", "cat", "in", ("alpha", "beta"))]
        )
        assert set(filtered["l.cat"].decode()) <= {"alpha", "beta"}
        joined = hash_join(filtered, right, [JoinPredicate("l", "cat", "r", "cat")], frozenset({"l"}))
        decoded = joined.decoded()
        assert (decoded["l.cat"] == decoded["r.cat"]).all()
        grouped = group_aggregate(
            joined,
            [ColumnRef("l", "cat")],
            [Aggregate("count", None, None, "n"), Aggregate("sum", "l", "v", "total")],
        )
        out = grouped.decoded()
        # Reference computation on decoded values.
        left_cats = filtered["l.cat"].decode()
        right_cats = right["r.cat"].decode()
        for i, cat in enumerate(out["l.cat"]):
            left_mask = left_cats == cat
            expected_count = int(left_mask.sum()) * int((right_cats == cat).sum())
            assert out["n"][i] == expected_count

    def test_min_max_on_encoded_strings(self):
        relation = Relation(
            {
                "t.g": np.array([1, 1, 2]),
                "t.s": DictEncodedArray.encode(
                    np.array(["pear", "apple", "zebra"], dtype=object)
                ),
            }
        )
        grouped = group_aggregate(
            relation,
            [ColumnRef("t", "g")],
            [Aggregate("min", "t", "s", "lo"), Aggregate("max", "t", "s", "hi")],
        )
        assert list(grouped["lo"]) == ["apple", "zebra"]
        assert list(grouped["hi"]) == ["pear", "zebra"]


class TestPredicateCompiler:
    def _relation(self):
        return Relation(
            {
                "t.n": np.array([1, 2, 3, 4, 5]),
                "t.s": DictEncodedArray.encode(
                    np.array(["a", "b", "c", "d", "e"], dtype=object)
                ),
            }
        )

    def test_in_and_between_numeric(self):
        relation = self._relation()
        filtered = filter_relation(relation, "t", [LocalPredicate("t", "n", "in", (2, 5, 9))])
        assert list(filtered["t.n"]) == [2, 5]
        filtered = filter_relation(relation, "t", [LocalPredicate("t", "n", "between", (2, 4))])
        assert list(filtered["t.n"]) == [2, 3, 4]

    def test_in_and_between_encoded_strings(self):
        relation = self._relation()
        filtered = filter_relation(
            relation, "t", [LocalPredicate("t", "s", "in", ("b", "e", "zz"))]
        )
        assert list(filtered["t.s"].decode()) == ["b", "e"]
        filtered = filter_relation(
            relation, "t", [LocalPredicate("t", "s", "between", ("b", "d"))]
        )
        assert list(filtered["t.s"].decode()) == ["b", "c", "d"]

    def test_range_operators_on_encoded_strings(self):
        relation = self._relation()
        for op, expected in [
            ("<", ["a", "b"]),
            ("<=", ["a", "b", "c"]),
            (">", ["d", "e"]),
            (">=", ["c", "d", "e"]),
            ("=", ["c"]),
            ("<>", ["a", "b", "d", "e"]),
        ]:
            filtered = filter_relation(relation, "t", [LocalPredicate("t", "s", op, "c")])
            assert list(filtered["t.s"].decode()) == expected, op

    def test_unknown_operator_raises(self):
        class FakePredicate:
            alias, column, op, value = "t", "n", "~~", 1

        with pytest.raises(ExecutionError):
            filter_relation(self._relation(), "t", [FakePredicate()])

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            filter_relation(self._relation(), "t", [LocalPredicate("t", "nope", "=", 1)])


class TestTypeMismatches:
    """Regression tests: incomparable literals/keys must not raise raw TypeErrors."""

    def test_numeric_literal_against_string_column_matches_nothing(self):
        relation = Relation(
            {"t.s": DictEncodedArray.encode(np.array(["a", "b"], dtype=object))}
        )
        assert filter_relation(relation, "t", [LocalPredicate("t", "s", "=", 5)]).num_rows == 0
        assert filter_relation(relation, "t", [LocalPredicate("t", "s", "<>", 5)]).num_rows == 2
        assert (
            filter_relation(relation, "t", [LocalPredicate("t", "s", "in", (1, 2))]).num_rows
            == 0
        )

    def test_range_against_string_column_raises_execution_error(self):
        relation = Relation(
            {"t.s": DictEncodedArray.encode(np.array(["a", "b"], dtype=object))}
        )
        with pytest.raises(ExecutionError):
            filter_relation(relation, "t", [LocalPredicate("t", "s", "<", 5)])

    def test_join_between_string_and_numeric_keys_is_empty(self):
        left = Relation({"l.k": DictEncodedArray.encode(np.array(["1", "2"], dtype=object))})
        right = Relation({"r.k": np.array([1, 2])})
        result = hash_join(left, right, [JoinPredicate("l", "k", "r", "k")], frozenset({"l"}))
        assert result.num_rows == 0

    def test_table_accepts_unorderable_string_column(self):
        from repro.storage.table import Column, Table, TableSchema

        table = Table(
            TableSchema("t", (Column("s", "str"),)),
            {"s": np.array(["a", None, "b"], dtype=object)},
        )
        assert list(table.column("s")) == ["a", None, "b"]
        assert table.take(np.array([2, 0])).column("s").tolist() == ["b", "a"]

    def test_analyze_handles_unorderable_string_column(self):
        from repro.storage.catalog import Database
        from repro.storage.table import Column, Table, TableSchema

        db = Database("u")
        db.create_table(Table(
            TableSchema("t", (Column("s", "str"),)),
            {"s": np.array(["a", None, "b", "a"], dtype=object)},
        ))
        db.analyze()
        stats = db.table_statistics("t").columns["s"]
        assert stats.n_distinct == 3

    def test_join_with_unorderable_values_keeps_valid_matches(self):
        # One None among the keys must not poison the comparable rows.
        left = Relation({"l.k": np.array(["x", None, "y"], dtype=object)})
        right = Relation({"r.k": DictEncodedArray.encode(np.array(["x", "y"], dtype=object))})
        for l, r in ((left, right), (right, left)):
            aliases = frozenset({"l"}) if "l.k" in l else frozenset({"r"})
            result = hash_join(l, r, [JoinPredicate("l", "k", "r", "k")], aliases)
            assert result.num_rows == 2
        # Plain-vs-plain with None on either side.
        plain_right = Relation({"r.k": np.array(["x", "y"], dtype=object)})
        assert hash_join(left, plain_right, [JoinPredicate("l", "k", "r", "k")],
                         frozenset({"l"})).num_rows == 2
        assert hash_join(plain_right, left, [JoinPredicate("l", "k", "r", "k")],
                         frozenset({"r"})).num_rows == 2

    def test_group_by_unorderable_column_raises_execution_error(self):
        relation = Relation({"t.g": np.array(["a", None], dtype=object)})
        with pytest.raises(ExecutionError):
            group_aggregate(relation, [ColumnRef("t", "g")],
                            [Aggregate("count", None, None, "n")])

    def test_in_with_mixed_type_literals_matches_comparable_values(self):
        relation = Relation({"t.a": np.array([1, 2, 3])})
        filtered = filter_relation(
            relation, "t", [LocalPredicate("t", "a", "in", (1, "x"))]
        )
        assert list(filtered["t.a"]) == [1]

    def test_empty_grouped_string_min_max_dtype_matches_nonempty(self):
        def make(rows):
            return Relation({
                "t.g": np.arange(rows, dtype=np.int64),
                "t.s": DictEncodedArray.encode(
                    np.array(["a"] * rows, dtype=object)
                ),
            })
        aggs = [Aggregate("min", "t", "s", "lo")]
        empty = group_aggregate(make(0), [ColumnRef("t", "g")], aggs)
        full = group_aggregate(make(2), [ColumnRef("t", "g")], aggs)
        assert np.asarray(empty["lo"]).dtype == np.asarray(full["lo"]).dtype == np.dtype(object)
