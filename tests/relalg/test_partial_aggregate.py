"""Partial-aggregate decomposition is bit-identical to single-node.

The sharded coordinator's correctness contract: for any shard count and
*any* row-to-shard assignment, reducing each shard's rows with
:func:`~repro.relalg.aggregate.partial_aggregate` and merging the partials
with :func:`~repro.relalg.aggregate.merge_partials` (canonical shard order)
must reproduce :func:`~repro.relalg.aggregate.group_aggregate` over the
undivided relation byte for byte — dtypes, group order, and float bits
(``AVG`` decomposes into sum+count; exactness is what makes the float
division order-independent).  Exercised over TPC-H, TPC-DS and OTT data,
shard counts 1–8, random/skewed/adversarial assignments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.relalg import Relation
from repro.relalg.aggregate import (
    group_aggregate,
    merge_partials,
    partial_aggregate,
    partial_merge_exact,
)
from repro.sql.ast import Aggregate, ColumnRef
from repro.workloads.ott import generate_ott_database
from repro.workloads.tpcds import generate_tpcds_database
from repro.workloads.tpch import generate_tpch_database


def _assert_bit_identical(expected: Relation, actual: Relation) -> None:
    """Byte-equality in the *served* representation.

    The service layer decodes every result before returning it
    (``Executor.execute_plan`` ends with ``relation.decoded()``), so the
    bit-identity contract compares decoded columns: names, order, dtypes,
    and exact bits (floats compared through their int64 bit patterns).
    """
    expected = expected.decoded()
    actual = actual.decoded()
    assert list(expected) == list(actual), "column names/order diverged"
    assert expected.num_rows == actual.num_rows
    for name in expected:
        left = np.asarray(expected[name])
        right = np.asarray(actual[name])
        assert left.dtype == right.dtype, f"{name}: dtype {left.dtype} != {right.dtype}"
        if left.dtype.kind == "f":
            assert np.array_equal(
                left.view(np.int64), right.view(np.int64)
            ), f"{name}: float bits diverged"
        else:
            assert np.array_equal(left, right), f"{name}: values diverged"


def _split(relation: Relation, assignment: np.ndarray, num_shards: int) -> List[Relation]:
    return [
        relation.take(np.flatnonzero(assignment == shard))
        for shard in range(num_shards)
    ]


def _merged(
    parts: Sequence[Relation],
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[Aggregate],
) -> Relation:
    partials = [partial_aggregate(part, group_by, aggregates) for part in parts]
    return merge_partials(partials, group_by, aggregates)


def _assignments(
    num_rows: int, num_shards: int, seed: int
) -> List[Tuple[str, np.ndarray]]:
    """Random, skewed, and adversarial row-to-shard assignments."""
    rng = np.random.default_rng(seed)
    uniform = rng.integers(0, num_shards, size=num_rows)
    skewed = np.where(
        rng.random(num_rows) < 0.9, 0, rng.integers(0, num_shards, size=num_rows)
    )
    one_shard = np.full(num_rows, num_shards - 1)
    return [("uniform", uniform), ("skewed", skewed), ("one-shard", one_shard)]


# --------------------------------------------------------------------------- #
# Workload fixtures: (relation, group_by, exact-composable aggregates)
# --------------------------------------------------------------------------- #
def _tpch_case() -> Tuple[Relation, List[ColumnRef], List[Aggregate]]:
    db = generate_tpch_database(scale_factor=0.01, seed=7, sampling_ratio=0.3)
    relation = Relation.from_table(db.table("lineitem"), "l")
    group_by = [ColumnRef("l", "l_returnflag"), ColumnRef("l", "l_linestatus")]
    aggregates = [
        Aggregate("count", None, None, "cnt"),
        Aggregate("sum", "l", "l_quantity", "qty"),
        Aggregate("avg", "l", "l_quantity", "avg_qty"),
        Aggregate("min", "l", "l_shipmode", "first_mode"),
        Aggregate("max", "l", "l_extendedprice", "top_price"),
    ]
    return relation, group_by, aggregates


def _tpcds_case() -> Tuple[Relation, List[ColumnRef], List[Aggregate]]:
    db = generate_tpcds_database(seed=7)
    relation = Relation.from_table(db.table("store_sales"), "ss")
    group_by = [ColumnRef("ss", "ss_store_sk")]
    aggregates = [
        Aggregate("count", None, None, "cnt"),
        Aggregate("sum", "ss", "ss_quantity", "qty"),
        Aggregate("avg", "ss", "ss_quantity", "avg_qty"),
        Aggregate("min", "ss", "ss_net_profit", "worst"),
        Aggregate("max", "ss", "ss_sales_price", "best"),
    ]
    return relation, group_by, aggregates


def _ott_case() -> Tuple[Relation, List[ColumnRef], List[Aggregate]]:
    db = generate_ott_database(
        num_tables=3, rows_per_table=900, rows_per_value=30, seed=7, sampling_ratio=0.3
    )
    relation = Relation.from_table(db.table("r1"), "r1")
    group_by = [ColumnRef("r1", "a")]
    aggregates = [
        Aggregate("count", None, None, "cnt"),
        Aggregate("sum", "r1", "b", "total"),
        Aggregate("avg", "r1", "b", "mean"),
        Aggregate("max", "r1", "b", "top"),
    ]
    return relation, group_by, aggregates


_CASES = {"tpch": _tpch_case, "tpcds": _tpcds_case, "ott": _ott_case}


@pytest.fixture(scope="module", params=sorted(_CASES))
def case(request):
    return _CASES[request.param]()


class TestGroupedMerge:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    def test_any_shard_count_matches_single_node(self, case, num_shards):
        relation, group_by, aggregates = case
        whole = group_aggregate(relation, group_by, aggregates)
        for label, assignment in _assignments(relation.num_rows, num_shards, seed=31):
            parts = _split(relation, assignment, num_shards)
            merged = _merged(parts, group_by, aggregates)
            try:
                _assert_bit_identical(whole, merged)
            except AssertionError as exc:  # pragma: no cover - diagnostics
                raise AssertionError(f"{label} assignment: {exc}") from exc

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_any_random_assignment_matches_single_node(self, case, seed):
        relation, group_by, aggregates = case
        whole = group_aggregate(relation, group_by, aggregates)
        rng = np.random.default_rng(seed)
        num_shards = int(rng.integers(1, 9))
        assignment = rng.integers(0, num_shards, size=relation.num_rows)
        merged = _merged(_split(relation, assignment, num_shards), group_by, aggregates)
        _assert_bit_identical(whole, merged)

    def test_merge_is_assignment_invariant(self, case):
        """Two different assignments merge to the same bytes — the merged
        result is a pure function of the row multiset."""
        relation, group_by, aggregates = case
        first = _merged(
            _split(relation, _assignments(relation.num_rows, 4, 11)[0][1], 4),
            group_by,
            aggregates,
        )
        second = _merged(
            _split(relation, _assignments(relation.num_rows, 4, 12)[0][1], 4),
            group_by,
            aggregates,
        )
        _assert_bit_identical(first, second)

    def test_empty_shards_are_harmless(self, case):
        relation, group_by, aggregates = case
        # 8 shards but every row on shard 3: seven empty partials.
        assignment = np.full(relation.num_rows, 3)
        whole = group_aggregate(relation, group_by, aggregates)
        merged = _merged(_split(relation, assignment, 8), group_by, aggregates)
        _assert_bit_identical(whole, merged)


class TestGlobalMerge:
    """No GROUP BY: one global row, ``$rows`` validity tracking."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_global_aggregates_match_single_node(self, case, num_shards):
        relation, _, aggregates = case
        whole = group_aggregate(relation, [], aggregates)
        rng = np.random.default_rng(5)
        assignment = rng.integers(0, num_shards, size=relation.num_rows)
        merged = _merged(_split(relation, assignment, num_shards), [], aggregates)
        _assert_bit_identical(whole, merged)

    def test_all_empty_parts_merge_like_empty_input(self, case):
        relation, _, aggregates = case
        empty = relation.empty_like()
        whole = group_aggregate(empty, [], aggregates)
        merged = _merged([empty, empty, empty], [], aggregates)
        _assert_bit_identical(whole, merged)


class TestAvgDecomposition:
    def test_partial_carries_sum_and_count(self, case):
        relation, group_by, aggregates = case
        avg = next(a for a in aggregates if a.func == "avg")
        partial = partial_aggregate(relation, group_by, aggregates)
        assert f"{avg.output_name}$sum" in partial
        assert f"{avg.output_name}$count" in partial
        assert avg.output_name not in partial

    def test_avg_equals_merged_sum_over_count(self, case):
        relation, group_by, aggregates = case
        avg = next(a for a in aggregates if a.func == "avg")
        merged = _merged(_split(relation, np.arange(relation.num_rows) % 3, 3),
                         group_by, aggregates)
        sums = _merged(
            _split(relation, np.arange(relation.num_rows) % 3, 3),
            group_by,
            [
                Aggregate("sum", avg.alias, avg.column, "s"),
                Aggregate("count", None, None, "c"),
            ],
        )
        expected = np.asarray(sums["s"], dtype=np.float64) / np.asarray(sums["c"])
        assert np.array_equal(
            np.asarray(merged[avg.output_name]).view(np.int64),
            expected.view(np.int64),
        )


class TestExactnessRouting:
    """``partial_merge_exact`` gates the partial path to exact compositions."""

    def _int_columns(self) -> set:
        return {("l", "l_quantity")}

    def test_count_min_max_always_compose(self):
        aggregates = [
            Aggregate("count", None, None, "c"),
            Aggregate("min", "l", "l_extendedprice", "mn"),
            Aggregate("max", "l", "l_shipmode", "mx"),
        ]
        assert partial_merge_exact(aggregates, frozenset())

    def test_integer_sum_and_avg_compose(self):
        aggregates = [
            Aggregate("sum", "l", "l_quantity", "s"),
            Aggregate("avg", "l", "l_quantity", "a"),
        ]
        assert partial_merge_exact(aggregates, self._int_columns())

    def test_float_sum_does_not_compose(self):
        aggregates = [Aggregate("sum", "l", "l_extendedprice", "s")]
        assert not partial_merge_exact(aggregates, self._int_columns())

    def test_float_avg_does_not_compose(self):
        aggregates = [Aggregate("avg", "l", "l_extendedprice", "a")]
        assert not partial_merge_exact(aggregates, self._int_columns())

    def test_merge_requires_canonical_part_order_to_matter(self):
        """The documented contract: parts arrive in canonical shard order.
        With exact-composable aggregates any order gives the same bytes —
        which is exactly why the partial path is safe."""
        relation, group_by, aggregates = _tpch_case()
        parts = _split(relation, np.arange(relation.num_rows) % 4, 4)
        forward = _merged(parts, group_by, aggregates)
        backward = _merged(list(reversed(parts)), group_by, aggregates)
        _assert_bit_identical(forward, backward)
