"""Tests for adaptive morsel sizing.

The sizer's contract: per stage, grow the morsel row count while the measured
per-task overhead fraction stays above the 5% target; growth is monotone,
clamped to ``[min_rows, max_rows]``, converges (at most ``log2(max/min)``
doublings), and stages are sized independently.  Sizing is a scheduling hint
only — the final class re-runs the grouped-aggregation kernel at every size a
driven sizer actually picked and asserts bit-identity against serial at each.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.relalg.aggregate as aggregate_module
from repro.relalg import (
    AdaptiveMorselSizer,
    DictEncodedArray,
    Relation,
    TaskScheduler,
    group_aggregate,
)
from repro.sql.ast import Aggregate, ColumnRef


def observe_overheated(sizer, stage, fraction=0.8, batches=1):
    """Feed ``batches`` observations whose overhead fraction is ``fraction``.

    With ``workers=2`` and ``tasks=8`` the effective capacity is ``2 * wall``;
    busy seconds are chosen so the measured fraction equals ``fraction``.
    """
    wall = 1.0
    busy = (1.0 - fraction) * wall * 2
    for _ in range(batches):
        sizer.observe(stage, tasks=8, wall_seconds=wall, busy_seconds=busy, workers=2)


class TestAdaptiveMorselSizer:
    def test_seed_is_clamped_into_bounds(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=8000)
        assert sizer.morsel_rows("s", 10) == 1000
        assert sizer.morsel_rows("s2", 1_000_000) == 8000
        assert sizer.morsel_rows("s3", 4000) == 4000

    def test_high_overhead_doubles_until_max(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=16_000)
        assert sizer.morsel_rows("agg", 1000) == 1000
        for expected in (2000, 4000, 8000, 16_000, 16_000):
            observe_overheated(sizer, "agg")
            assert sizer.morsel_rows("agg", 1000) == expected
        history = sizer.snapshot()["agg"].sizes
        assert history == [1000, 2000, 4000, 8000, 16_000]
        assert history == sorted(history)  # growth is monotone

    def test_low_overhead_converges_without_growth(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=16_000)
        sizer.morsel_rows("join", 2000)
        for _ in range(10):
            observe_overheated(sizer, "join", fraction=0.01)
        state = sizer.snapshot()["join"]
        assert state.morsel_rows == 2000
        assert state.sizes == [2000]
        assert state.observations == 10
        assert state.overhead_fraction == pytest.approx(0.01, abs=1e-9)

    def test_ewma_converges_to_steady_fraction(self):
        """A noisy first batch must not pin the size forever: the EWMA tracks
        the steady state, and growth stops once it is under target."""
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=64_000, smoothing=0.5)
        sizer.morsel_rows("f", 1000)
        observe_overheated(sizer, "f", fraction=0.9)  # cold-start spike: grows
        for _ in range(12):
            observe_overheated(sizer, "f", fraction=0.01)
        state = sizer.snapshot()["f"]
        assert state.overhead_fraction < 0.05
        assert state.morsel_rows < 64_000  # did not run away to the max

    def test_single_task_batches_never_grow(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=16_000)
        sizer.morsel_rows("solo", 1000)
        for _ in range(5):
            sizer.observe("solo", tasks=1, wall_seconds=1.0, busy_seconds=0.0, workers=4)
        # One-task batches have no per-task amortization to win: growing the
        # morsel cannot reduce overhead, so the size must stay put.
        assert sizer.morsel_rows("solo", 1000) == 1000

    def test_stages_are_independent(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=16_000)
        sizer.morsel_rows("join", 1000)
        sizer.morsel_rows("agg", 1000)
        observe_overheated(sizer, "join", batches=3)
        assert sizer.morsel_rows("join", 1000) == 8000
        assert sizer.morsel_rows("agg", 1000) == 1000

    def test_degenerate_observations_are_ignored(self):
        sizer = AdaptiveMorselSizer(min_rows=1000, max_rows=16_000)
        sizer.observe("x", tasks=0, wall_seconds=1.0, busy_seconds=0.0, workers=2)
        sizer.observe("x", tasks=4, wall_seconds=0.0, busy_seconds=0.0, workers=2)
        assert "x" not in sizer.snapshot()


class TestSchedulerIntegration:
    def test_stage_none_bypasses_adaptation(self):
        with TaskScheduler(workers=2, name="sizing", backend="thread") as sched:
            observe_overheated(sched.sizer, "agg", batches=3)
            grown = sched.adaptive_morsel_rows("agg", 20_000)
            assert grown > 20_000  # the stage adapted...
            assert sched.adaptive_morsel_rows(None, 123) == 123  # ...None opts out

    def test_serial_scheduler_never_adapts(self):
        sched = TaskScheduler(workers=1, name="serial")
        observe_overheated(sched.sizer, "agg", batches=3)
        assert sched.adaptive_morsel_rows("agg", 123) == 123

    def test_kernel_batches_feed_the_sizer(self, monkeypatch, make_rng):
        monkeypatch.setattr(aggregate_module, "_MIN_PARALLEL_AGG_ROWS", 0)
        rng = make_rng(11)
        rows = 5000
        relation = Relation(
            {
                "t.g": rng.integers(0, 40, size=rows),
                "t.v": rng.uniform(size=rows),
            }
        )
        # A small-bounds sizer so a 5000-row relation still yields a multi-
        # task batch (the production floor of 16 384 rows would make it one
        # chunk, which has nothing to observe).
        sizer = AdaptiveMorselSizer(min_rows=64, max_rows=4096)
        with TaskScheduler(workers=2, name="feed", backend="process", sizer=sizer) as sched:
            group_aggregate(
                relation,
                [ColumnRef("t", "g")],
                [Aggregate("sum", "t", "v", "total")],
                scheduler=sched,
                morsel_rows=512,
                stage="agg_feed",
            )
            state = sched.sizer.snapshot().get("agg_feed")
            assert state is not None and state.observations >= 1


class TestBitIdentityAcrossAdaptedSizes:
    def test_aggregation_identical_at_every_picked_size(self, monkeypatch, make_rng):
        """Drive a sizer through its whole growth history, then prove the
        kernel is bit-identical to serial at every size it ever picked."""
        monkeypatch.setattr(aggregate_module, "_MIN_PARALLEL_AGG_ROWS", 0)
        sizer = AdaptiveMorselSizer(min_rows=32, max_rows=4096)
        sizer.morsel_rows("sweep", 32)
        for _ in range(12):  # far past convergence at the max bound
            observe_overheated(sizer, "sweep")
        picked = sizer.snapshot()["sweep"].sizes
        assert picked[0] == 32 and picked[-1] == 4096

        rng = make_rng(17)
        rows = 6000
        relation = Relation(
            {
                "t.g": DictEncodedArray.encode(
                    np.array([f"g{v:03d}" for v in rng.integers(0, 120, size=rows)], dtype=object)
                ),
                "t.v": rng.uniform(-1e6, 1e6, size=rows),
            }
        )
        group_by = [ColumnRef("t", "g")]
        aggregates = [
            Aggregate("sum", "t", "v", "total"),
            Aggregate("avg", "t", "v", "mean"),
            Aggregate("count", None, None, "n"),
        ]
        serial = group_aggregate(relation, group_by, aggregates)
        with TaskScheduler(workers=4, name="sweep", backend="process") as sched:
            for morsel_rows in picked:
                parallel = group_aggregate(
                    relation, group_by, aggregates,
                    scheduler=sched, morsel_rows=morsel_rows,
                )
                assert set(serial) == set(parallel)
                for name in serial:
                    a, b = serial[name], parallel[name]
                    if isinstance(a, DictEncodedArray):
                        assert np.array_equal(a.codes, b.codes), (name, morsel_rows)
                        assert np.array_equal(a.dictionary, b.dictionary)
                    else:
                        a, b = np.asarray(a), np.asarray(b)
                        assert a.dtype == b.dtype
                        assert np.array_equal(a, b), (name, morsel_rows)
