"""Lifecycle tests for the shared-memory segment registry and arenas.

The contract under test is the tentpole's cleanup guarantee: **no shared-
memory segment outlives the scheduler that published it** — not after a
normal ``close()``, not after a kernel raised, and not after a worker
process died mid-task.  Leaks are asserted two independent ways: through the
scheduler's own :class:`SegmentRegistry` ledger (``live_names`` plus the
created/unlinked counters) and through a registry-blind audit of ``/dev/shm``
(:func:`shm_dir_segments`), so a bookkeeping bug cannot hide an actual leak.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.relalg import (
    Relation,
    TaskScheduler,
    attach_array,
    attach_columns,
    shm_dir_segments,
)
from repro.relalg.shm import SEGMENT_PREFIX, SegmentRegistry, ShmArena


# --------------------------------------------------------------------------- #
# Kernel bodies (top-level so the worker processes can unpickle them)
# --------------------------------------------------------------------------- #
def _sum_task(descriptor):
    return float(np.sum(attach_array(descriptor)))


def _failing_task(descriptor):
    attach_array(descriptor)  # the attach itself must succeed
    raise ValueError("kernel failure for the lifecycle test")


def _crash_task(payload):
    """Kill the worker process dead — no exception, no cleanup.

    Guarded by the parent's pid: the crash-recovery path re-runs lost tasks
    *inline in the parent*, and that re-run must return normally instead of
    taking the test process down with it.
    """
    parent_pid, descriptor, crash = payload
    if crash and os.getpid() != parent_pid:
        os._exit(17)
    return float(np.sum(attach_array(descriptor)))


def _our_segments():
    """The /dev/shm audit, scoped to this prefix (empty on non-POSIX hosts)."""
    return [name for name in shm_dir_segments() if name.startswith(SEGMENT_PREFIX)]


def assert_no_leaks(scheduler: TaskScheduler) -> None:
    registry = scheduler.segments
    assert registry.live_names() == []
    assert registry.unlinked_total == registry.created_total
    assert _our_segments() == []


# --------------------------------------------------------------------------- #
# Registry + arena scoping
# --------------------------------------------------------------------------- #
class TestSegmentRegistry:
    def test_refcounted_release(self):
        registry = SegmentRegistry()
        segment = registry.create(64)
        name = segment.name
        registry.retain(name)
        registry.release(name)
        assert registry.live_names() == [name]  # one reference still held
        registry.release(name)
        assert registry.live_names() == []
        assert registry.created_total == 1 and registry.unlinked_total == 1
        assert name not in shm_dir_segments()

    def test_unlink_all_force_frees_everything(self):
        registry = SegmentRegistry()
        names = [registry.create(16).name for _ in range(3)]
        registry.retain(names[0])  # even extra references do not survive
        assert sorted(registry.live_names()) == sorted(names)
        assert registry.unlink_all() == 3
        assert registry.live_names() == []
        assert not set(names) & set(shm_dir_segments())

    def test_release_of_unknown_name_is_a_no_op(self):
        registry = SegmentRegistry()
        registry.release("repro_shm_never_created")
        assert registry.live_names() == []


class TestShmArena:
    def test_scope_exit_releases_all_segments(self, make_rng):
        registry = SegmentRegistry()
        with ShmArena(registry) as arena:
            arena.share_array(make_rng(0).uniform(size=1000))
            arena.share_bytes(b"morsels")
            assert len(registry.live_names()) == 2
        assert registry.live_names() == []
        assert registry.unlinked_total == registry.created_total == 2

    def test_scope_exit_releases_on_exception(self, make_rng):
        registry = SegmentRegistry()
        with pytest.raises(RuntimeError):
            with ShmArena(registry) as arena:
                arena.share_array(make_rng(1).integers(0, 10, size=500))
                raise RuntimeError("kernel blew up mid-publish")
        assert registry.live_names() == []

    def test_relation_round_trip_is_bit_identical(self, make_rng):
        from repro.relalg import DictEncodedArray

        rng = make_rng(2)
        relation = Relation(
            {
                "t.a": rng.integers(0, 100, size=400),
                "t.v": rng.uniform(size=400),
                "t.s": DictEncodedArray.encode(
                    np.array([f"s{v}" for v in rng.integers(0, 7, size=400)], dtype=object)
                ),
            }
        )
        registry = SegmentRegistry()
        with ShmArena(registry) as arena:
            descriptor = relation.to_shared(arena)
            attached = Relation.from_descriptor(descriptor)
            assert attached.num_rows == relation.num_rows
            assert np.array_equal(
                np.asarray(attached["t.a"]), np.asarray(relation["t.a"])
            )
            assert np.array_equal(
                np.asarray(attached["t.v"]), np.asarray(relation["t.v"])
            )
            assert np.array_equal(attached["t.s"].codes, relation["t.s"].codes)
            assert np.array_equal(attached["t.s"].dictionary, relation["t.s"].dictionary)
            # Plain columns are zero-copy views of the shared buffer, not copies.
            assert not np.shares_memory(
                np.asarray(attached["t.a"]), np.asarray(relation["t.a"])
            )
            del attached  # views must die before the arena frees the buffers
        assert registry.live_names() == []

    def test_columns_attach_inside_worker_processes(self, make_rng):
        values = make_rng(3).uniform(size=10_000)
        with TaskScheduler(workers=2, name="shmtest", backend="process") as sched:
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                results = sched.map_kernel(_sum_task, [descriptor] * 4)
            assert results == [float(np.sum(values))] * 4
            assert sched.stats().tasks_process == 4
        assert_no_leaks(sched)


# --------------------------------------------------------------------------- #
# Scheduler-coupled lifecycle: close, exceptions, crashes
# --------------------------------------------------------------------------- #
class TestSchedulerCleanup:
    def test_close_unlinks_stragglers(self, make_rng):
        sched = TaskScheduler(workers=2, name="straggler", backend="process")
        arena = sched.new_arena()  # deliberately never released: a "leak"
        arena.share_array(make_rng(4).uniform(size=2048))
        assert len(sched.segments.live_names()) == 1
        sched.close()
        assert_no_leaks(sched)
        assert sched.closed

    def test_close_is_idempotent(self):
        sched = TaskScheduler(workers=2, name="idem", backend="process")
        sched.close()
        sched.close()
        assert_no_leaks(sched)

    def test_kernel_exception_releases_segments(self, make_rng):
        values = make_rng(5).uniform(size=4096)
        with TaskScheduler(workers=2, name="failing", backend="process") as sched:
            with pytest.raises(ValueError, match="kernel failure"):
                with sched.new_arena() as arena:
                    descriptor = arena.share_array(values)
                    sched.map_kernel(_failing_task, [descriptor] * 3)
            # The arena's scope exit already freed the batch's segments.
            assert sched.segments.live_names() == []
            # The scheduler survives the failure and stays usable.
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                assert sched.map_kernel(_sum_task, [descriptor] * 2) == [
                    float(np.sum(values))
                ] * 2
        assert_no_leaks(sched)

    def test_thread_map_exception_leaves_no_segments(self):
        def explode(item):
            raise RuntimeError(f"task {item} failed")

        with TaskScheduler(workers=2, name="threads", backend="process") as sched:
            with pytest.raises(RuntimeError):
                sched.map(explode, range(4))
        assert_no_leaks(sched)

    def test_worker_crash_recovers_and_leaks_nothing(self, make_rng):
        values = make_rng(6).uniform(size=8192)
        expected = float(np.sum(values))
        parent = os.getpid()
        with TaskScheduler(workers=2, name="crash", backend="process") as sched:
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                payloads = [
                    (parent, descriptor, index == 1) for index in range(6)
                ]
                results = sched.map_kernel(_crash_task, payloads)
            # Every task's result is present and correct despite the death.
            assert results == [expected] * 6
            stats = sched.stats()
            assert stats.process_pool_crashes == 1
            assert stats.tasks_inline >= 1  # the lost tasks re-ran inline
            # The pool respawns lazily and serves the next batch normally.
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                assert sched.map_kernel(_sum_task, [descriptor] * 4) == [expected] * 4
            assert sched.stats().process_pool_crashes == 1
        assert_no_leaks(sched)

    def test_shutdown_is_reusable_and_frees_nothing_early(self, make_rng):
        values = make_rng(7).uniform(size=1024)
        sched = TaskScheduler(workers=2, name="reuse", backend="process")
        try:
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                first = sched.map_kernel(_sum_task, [descriptor] * 2)
            sched.shutdown()  # parks the pools, keeps the scheduler usable
            assert not sched.closed
            with sched.new_arena() as arena:
                descriptor = arena.share_array(values)
                second = sched.map_kernel(_sum_task, [descriptor] * 2)
            assert first == second == [float(np.sum(values))] * 2
        finally:
            sched.close()
        assert_no_leaks(sched)

    def test_parallel_query_kernels_leak_nothing(self, make_rng):
        """End to end: join + aggregation + filter through the process tier,
        then close — both the ledger and /dev/shm must come back empty."""
        import repro.relalg.aggregate as aggregate_module
        import repro.relalg.joins as joins_module
        import repro.relalg.predicates as predicates_module
        from repro.relalg import filter_relation, group_aggregate, parallel_hash_join
        from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate

        rng = make_rng(8)
        left = Relation(
            {
                "l.k": rng.integers(0, 50, size=3000),
                "l.v": rng.uniform(size=3000),
            }
        )
        right = Relation(
            {
                "r.k": rng.integers(0, 50, size=2000),
                "r.w": rng.uniform(size=2000),
            }
        )
        saved = (
            joins_module._MIN_PARALLEL_JOIN_ROWS,
            aggregate_module._MIN_PARALLEL_AGG_ROWS,
            predicates_module._MIN_PARALLEL_FILTER_ROWS,
        )
        joins_module._MIN_PARALLEL_JOIN_ROWS = 0
        aggregate_module._MIN_PARALLEL_AGG_ROWS = 0
        predicates_module._MIN_PARALLEL_FILTER_ROWS = 0
        try:
            with TaskScheduler(workers=2, name="e2e", backend="process") as sched:
                joined = parallel_hash_join(
                    left, right, [JoinPredicate("l", "k", "r", "k")],
                    frozenset({"l"}), scheduler=sched,
                )
                filtered = filter_relation(
                    joined, "l", [LocalPredicate("l", "v", "between", (0.2, 0.9))],
                    sched, 256,
                )
                group_aggregate(
                    filtered,
                    [ColumnRef("l", "k")],
                    [Aggregate("sum", "l", "v", "total")],
                    scheduler=sched,
                    morsel_rows=256,
                )
                assert sched.stats().tasks_process > 0
                assert sched.segments.live_names() == []  # arenas are scoped
        finally:
            (
                joins_module._MIN_PARALLEL_JOIN_ROWS,
                aggregate_module._MIN_PARALLEL_AGG_ROWS,
                predicates_module._MIN_PARALLEL_FILTER_ROWS,
            ) = saved
        assert_no_leaks(sched)
