"""Direct unit tests for the Appendix B special-case convergence bounds."""

import pytest

from repro.theory.ball_queue import expected_steps
from repro.theory.special_cases import (
    overestimation_only_bound,
    underestimation_only_expected_steps,
)


class TestOverestimationBound:
    def test_theorem7_m_plus_1(self):
        # Each round validates at least one more join of the final plan.
        assert overestimation_only_bound(0) == 1
        assert overestimation_only_bound(4) == 5
        assert overestimation_only_bound(7) == 8

    def test_negative_joins_rejected(self):
        with pytest.raises(ValueError):
            overestimation_only_bound(-1)


class TestUnderestimationBound:
    def test_partitioned_expected_steps(self):
        # S_{N/M}: partitioning by the first join's edge.
        assert underestimation_only_expected_steps(32, 4) == pytest.approx(
            expected_steps(8)
        )

    def test_floor_at_one_tree_per_partition(self):
        # More edges than trees still leaves one tree per partition.
        assert underestimation_only_expected_steps(3, 10) == pytest.approx(
            expected_steps(1)
        )

    def test_much_smaller_than_unpartitioned(self):
        n, m = 1024, 8
        assert underestimation_only_expected_steps(n, m) < expected_steps(n)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            underestimation_only_expected_steps(0, 1)
        with pytest.raises(ValueError):
            underestimation_only_expected_steps(16, 0)
