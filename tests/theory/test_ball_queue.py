"""Direct unit tests for the ball-queue model (Equation 1, Lemma 1, Theorem 3)."""

import numpy as np
import pytest

from repro.theory.ball_queue import (
    expected_steps,
    expected_steps_curve,
    simulate_procedure1,
    sqrt_bound_holds,
)


class TestExpectedSteps:
    def test_closed_form_small_n(self):
        # S_1: the single ball is marked once, the next probe terminates.
        assert expected_steps(1) == pytest.approx(1.0)
        # S_2 by hand: 1·1·(1/2) + 2·(1/2)·(2/2) = 1.5
        assert expected_steps(2) == pytest.approx(1.5)
        # S_3 by hand: 1·(1/3) + 2·(2/3)·(2/3) + 3·(2/3)·(1/3)·(3/3) = 17/9
        assert expected_steps(3) == pytest.approx(17.0 / 9.0)

    def test_monotone_in_n(self):
        values = [expected_steps(n) for n in range(1, 60)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            expected_steps(0)
        with pytest.raises(ValueError):
            expected_steps(-3)

    def test_theorem3_sqrt_envelope(self):
        # Figure 3's claim: sqrt(N) <= S_N <= 2*sqrt(N) over the plotted range.
        assert sqrt_bound_holds(500, factor=2.0)
        for n in (10, 100, 500):
            assert expected_steps(n) >= np.sqrt(n)

    def test_sqrt_bound_detects_violation(self):
        # A factor below 1 must fail (S_N >= sqrt(N)).
        assert not sqrt_bound_holds(100, factor=0.9)

    def test_curve_matches_pointwise_evaluation(self):
        curve = expected_steps_curve(max_n=20, step=5)
        assert sorted(curve) == [1, 6, 11, 16]
        for n, value in curve.items():
            assert value == pytest.approx(expected_steps(n))


class TestSimulation:
    def test_monte_carlo_agrees_with_closed_form(self):
        for n in (1, 2, 5, 20):
            simulated = simulate_procedure1(n, trials=4000, seed=1)
            assert simulated == pytest.approx(expected_steps(n), rel=0.1)

    def test_simulation_is_seeded(self):
        a = simulate_procedure1(10, trials=100, seed=3)
        b = simulate_procedure1(10, trials=100, seed=3)
        assert a == b

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            simulate_procedure1(0)
