"""Unit tests for the query AST and join graph."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import Aggregate, JoinPredicate, LocalPredicate
from repro.sql.builder import QueryBuilder


def chain_query(num_tables=4):
    builder = QueryBuilder("chain")
    for index in range(1, num_tables + 1):
        builder.table(f"t{index}")
    for index in range(1, num_tables):
        builder.join(f"t{index}", "k", f"t{index + 1}", "k")
    return builder.build()


class TestPredicates:
    def test_local_predicate_rejects_bad_operator(self):
        with pytest.raises(ParseError):
            LocalPredicate("t", "a", "like", 1)

    def test_join_predicate_normalization(self):
        predicate = JoinPredicate("z", "c1", "a", "c2")
        normalized = predicate.normalized()
        assert normalized.left_alias == "a"
        assert normalized.right_alias == "z"
        # Normalizing twice is a no-op.
        assert normalized.normalized() == normalized

    def test_join_predicate_column_for(self):
        predicate = JoinPredicate("a", "x", "b", "y")
        assert predicate.column_for("a") == "x"
        assert predicate.column_for("b") == "y"
        with pytest.raises(ParseError):
            predicate.column_for("c")

    def test_aggregate_requires_column(self):
        with pytest.raises(ParseError):
            Aggregate(func="sum", alias=None, column=None, output_name="s")
        Aggregate(func="count", alias=None, column=None, output_name="c")


class TestQueryValidation:
    def test_duplicate_aliases_rejected(self):
        builder = QueryBuilder("bad").table("t", "x").table("u", "x")
        with pytest.raises(ParseError):
            builder.build()

    def test_unknown_alias_in_filter_rejected(self):
        builder = QueryBuilder("bad").table("t").filter("missing", "a", "=", 1)
        with pytest.raises(ParseError):
            builder.build()

    def test_self_join_requires_distinct_aliases(self):
        builder = QueryBuilder("bad").table("t", "a").table("t", "b").join("a", "x", "a", "x")
        with pytest.raises(ParseError):
            builder.build()

    def test_table_for_alias(self):
        query = QueryBuilder("q").table("lineitem", "l").build()
        assert query.table_for_alias("l") == "lineitem"
        with pytest.raises(ParseError):
            query.table_for_alias("x")


class TestJoinGraph:
    def test_chain_graph_structure(self):
        query = chain_query(4)
        graph = query.join_graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert query.is_join_graph_connected()
        assert query.num_joins == 3

    def test_disconnected_graph_detected(self):
        query = (
            QueryBuilder("q").table("a").table("b").table("c")
            .join("a", "k", "b", "k").build()
        )
        assert not query.is_join_graph_connected()

    def test_join_predicates_between(self):
        query = chain_query(4)
        between = query.join_predicates_between({"t1", "t2"}, {"t3"})
        assert len(between) == 1
        assert between[0].aliases() == frozenset({"t2", "t3"})
        assert query.join_predicates_between({"t1"}, {"t4"}) == []

    def test_parallel_edges_collected(self):
        query = (
            QueryBuilder("q").table("a").table("b")
            .join("a", "k1", "b", "k1").join("a", "k2", "b", "k2").build()
        )
        graph = query.join_graph()
        assert graph.number_of_edges() == 1
        assert len(graph["a"]["b"]["predicates"]) == 2

    def test_local_predicates_for(self):
        query = (
            QueryBuilder("q").table("a").table("b")
            .filter("a", "x", "=", 1).filter("a", "y", ">", 2).filter("b", "z", "=", 3)
            .join("a", "k", "b", "k").build()
        )
        assert len(query.local_predicates_for("a")) == 2
        assert len(query.local_predicates_for("b")) == 1
