"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.parser import parse_query


class TestBasicParsing:
    def test_select_star_single_table(self):
        query = parse_query("SELECT * FROM orders")
        assert [ref.table for ref in query.tables] == ["orders"]
        assert query.projections == []
        assert query.local_predicates == []

    def test_projection_columns(self):
        query = parse_query("SELECT o.o_id, o.o_total FROM orders o")
        assert len(query.projections) == 2
        assert str(query.projections[0]) == "o.o_id"

    def test_alias_forms(self):
        query = parse_query("SELECT * FROM orders AS o, lineitem l")
        assert query.aliases == ["o", "l"]
        assert query.table_for_alias("l") == "lineitem"

    def test_unqualified_column_single_table(self):
        query = parse_query("SELECT o_id FROM orders WHERE o_total > 10")
        assert query.projections[0].alias == "orders"
        assert query.local_predicates[0].alias == "orders"

    def test_unqualified_column_multi_table_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT o_id FROM orders, lineitem")


class TestPredicates:
    def test_literal_types(self):
        query = parse_query(
            "SELECT * FROM t WHERE t.a = 3 AND t.b >= 1.5 AND t.c = 'BUILDING'"
        )
        values = {(p.column, p.op): p.value for p in query.local_predicates}
        assert values[("a", "=")] == 3
        assert values[("b", ">=")] == 1.5
        assert values[("c", "=")] == "BUILDING"

    def test_not_equal_variants(self):
        query = parse_query("SELECT * FROM t WHERE t.a <> 1 AND t.b != 2")
        assert all(p.op == "<>" for p in query.local_predicates)

    def test_join_predicate_extraction(self):
        query = parse_query(
            "SELECT * FROM orders o, lineitem l WHERE o.o_id = l.l_order AND l.l_qty < 5"
        )
        assert len(query.join_predicates) == 1
        assert len(query.local_predicates) == 1
        join = query.join_predicates[0]
        assert {join.left_alias, join.right_alias} == {"o", "l"}

    def test_non_equality_column_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a, b WHERE a.x < b.y")


class TestAggregatesAndGrouping:
    def test_aggregates_with_alias(self):
        query = parse_query(
            "SELECT sum(l.l_price) AS revenue, count(*) FROM lineitem l GROUP BY l.l_flag"
        )
        assert {a.output_name for a in query.aggregates} == {"revenue", "count"}
        assert query.group_by[0].column == "l_flag"

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM t")
        assert query.aggregates[0].func == "count"
        assert query.aggregates[0].column is None

    def test_full_tpch_like_query(self):
        query = parse_query(
            "SELECT c.c_name, sum(l.l_price) AS revenue "
            "FROM customer c, orders o, lineitem l "
            "WHERE c.c_key = o.o_custkey AND o.o_key = l.l_orderkey "
            "AND c.c_segment = 'BUILDING' AND o.o_date < 900 "
            "GROUP BY c.c_name"
        )
        assert len(query.tables) == 3
        assert len(query.join_predicates) == 2
        assert len(query.local_predicates) == 2
        assert query.is_join_graph_connected()


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "SELECT",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t WHERE t.a =",
        "SELECT * FROM t GROUP",
        "SELECT * FROM t WHERE t.a ~ 3",
        "FROM t SELECT *",
        "SELECT * FROM t extra garbage",
    ])
    def test_malformed_queries_raise(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_parser_and_builder_agree(self):
        parsed = parse_query(
            "SELECT count(*) FROM r1, r2 WHERE r1.b = r2.b AND r1.a = 0 AND r2.a = 1"
        )
        assert parsed.num_joins == 1
        assert len(parsed.local_predicates) == 2


class TestInAndBetween:
    def test_in_predicate(self):
        query = parse_query("SELECT count(*) FROM t WHERE t.a IN (1, 2, 3)")
        predicate = query.local_predicates[0]
        assert predicate.op == "in"
        assert predicate.value == (1, 2, 3)

    def test_in_predicate_strings(self):
        query = parse_query("SELECT count(*) FROM t WHERE t.s IN ('x', 'y')")
        assert query.local_predicates[0].value == ("x", "y")

    def test_between_predicate(self):
        query = parse_query("SELECT count(*) FROM t WHERE t.a BETWEEN 2 AND 8")
        predicate = query.local_predicates[0]
        assert predicate.op == "between"
        assert predicate.value == (2, 8)

    def test_between_followed_by_conjunction(self):
        query = parse_query(
            "SELECT count(*) FROM t WHERE t.a BETWEEN 2 AND 8 AND t.b = 1"
        )
        assert len(query.local_predicates) == 2
        assert query.local_predicates[0].op == "between"
        assert query.local_predicates[1].op == "="

    def test_in_mixed_with_join(self):
        query = parse_query(
            "SELECT count(*) FROM r, s WHERE r.k = s.k AND r.a IN (1, 2)"
        )
        assert query.num_joins == 1
        assert query.local_predicates[0].op == "in"

    @pytest.mark.parametrize("text", [
        "SELECT * FROM t WHERE t.a IN ()",
        "SELECT * FROM t WHERE t.a IN 1",
        "SELECT * FROM t WHERE t.a BETWEEN 1",
        "SELECT * FROM t WHERE t.a BETWEEN AND 2",
    ])
    def test_malformed_in_between_raise(self, text):
        with pytest.raises(ParseError):
            parse_query(text)
