"""Normalized fingerprints: the shared plan/template/binding cache keys."""

from __future__ import annotations

import numpy as np

from repro.sql.builder import QueryBuilder
from repro.sql.fingerprint import (
    binding_key,
    normalize_value,
    plan_fingerprint,
    statistics_fingerprint,
    template_fingerprint,
)
from repro.sql.parser import parse_query


def _orders_query(value, name="q"):
    return (
        QueryBuilder(name)
        .table("orders", "o")
        .filter("o", "o_customer", "=", value)
        .aggregate("count", output_name="n")
        .build()
    )


class TestNormalization:
    def test_numeric_spellings_collapse(self):
        assert normalize_value(5) == normalize_value(5.0)
        assert normalize_value(np.int64(5)) == normalize_value(5)
        assert normalize_value(np.float64(5.0)) == normalize_value(5)

    def test_distinct_numbers_stay_distinct(self):
        assert normalize_value(5) != normalize_value(6)
        assert normalize_value(5) != normalize_value(5.5)

    def test_bool_is_not_the_number_one(self):
        assert normalize_value(True) != normalize_value(1)

    def test_in_lists_are_order_insensitive(self):
        assert normalize_value((1, 2, 3)) == normalize_value((3, 1, 2))
        assert normalize_value((1, 2, 3)) != normalize_value((1, 2, 4))


class TestPlanFingerprint:
    def test_literal_difference_splits_the_key(self):
        """The regression the shared utility exists for: two queries that
        differ only in a predicate constant must never share a plan."""
        assert plan_fingerprint(_orders_query(5)) != plan_fingerprint(_orders_query(6))
        assert statistics_fingerprint(_orders_query(5)) != statistics_fingerprint(
            _orders_query(6)
        )

    def test_numeric_spelling_does_not_split_the_key(self):
        assert plan_fingerprint(_orders_query(5)) == plan_fingerprint(
            _orders_query(np.int64(5))
        )
        assert plan_fingerprint(_orders_query(5)) == plan_fingerprint(_orders_query(5.0))

    def test_name_is_excluded(self):
        assert plan_fingerprint(_orders_query(5, "a")) == plan_fingerprint(
            _orders_query(5, "b")
        )

    def test_in_list_order_is_normalized(self):
        first = (
            QueryBuilder("q").table("orders", "o")
            .filter("o", "o_priority", "in", ("HIGH", "LOW")).build()
        )
        second = (
            QueryBuilder("q").table("orders", "o")
            .filter("o", "o_priority", "in", ("LOW", "HIGH")).build()
        )
        assert plan_fingerprint(first) == plan_fingerprint(second)

    def test_between_bounds_keep_their_order(self):
        first = (
            QueryBuilder("q").table("orders", "o")
            .filter("o", "o_customer", "between", (1, 5)).build()
        )
        second = (
            QueryBuilder("q").table("orders", "o")
            .filter("o", "o_customer", "between", (5, 1)).build()
        )
        assert plan_fingerprint(first) != plan_fingerprint(second)


class TestTemplateFingerprint:
    def test_sql_and_builder_templates_coincide(self):
        parsed = parse_query(
            "SELECT count(*) AS n FROM orders o WHERE o.o_customer = ?", name="sqlside"
        )
        built = (
            QueryBuilder("builderside")
            .table("orders", "o")
            .filter_param("o", "o_customer", "=")
            .aggregate("count", output_name="n")
            .build()
        )
        assert template_fingerprint(parsed) == template_fingerprint(built)

    def test_parameter_slot_differs_from_constant(self):
        parameterized = parse_query("SELECT count(*) AS n FROM orders o WHERE o.o_customer = ?")
        constant = parse_query("SELECT count(*) AS n FROM orders o WHERE o.o_customer = 5")
        assert template_fingerprint(parameterized) != template_fingerprint(constant)

    def test_binding_key_normalizes_values(self):
        query = parse_query("SELECT count(*) FROM orders o WHERE o.o_customer = ?")
        assert binding_key(query, [5]) == binding_key(query, [np.int64(5)])
        assert binding_key(query, [5]) != binding_key(query, [6])

    def test_binding_key_mapping_vs_sequence(self):
        query = parse_query(
            "SELECT count(*) FROM orders o WHERE o.o_customer = ? AND o.o_priority = ?"
        )
        assert binding_key(query, [5, "HIGH"]) == binding_key(query, {0: 5, 1: "HIGH"})

    def test_positional_zero_never_aliases_named_zero(self):
        """Positional slot 0 and a parameter named "0" are different slots:
        swapping their values must produce a different binding key."""
        query = (
            QueryBuilder("q")
            .table("orders", "o")
            .filter_param("o", "o_customer", "=")           # positional 0
            .filter_param("o", "o_id", "=", name="0")       # named "0"
            .build()
        )
        assert binding_key(query, {0: 5, "0": 7}) != binding_key(query, {0: 7, "0": 5})
