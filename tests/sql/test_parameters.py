"""Placeholder parameters: parsing, binding, builder support."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql.ast import Parameter
from repro.sql.builder import QueryBuilder
from repro.sql.parser import parse_query


class TestParameterParsing:
    def test_positional_parameters_numbered_left_to_right(self):
        query = parse_query(
            "SELECT count(*) FROM orders o WHERE o.o_priority = ? AND o.o_customer = ?"
        )
        parameters = query.parameters()
        assert [p.index for p in parameters] == [0, 1]
        assert query.is_parameterized

    def test_named_parameters_shared_across_occurrences(self):
        query = parse_query(
            "SELECT count(*) FROM items i "
            "WHERE i.i_quantity >= :q AND i.i_part = :p AND i.i_order = :q"
        )
        assert sorted(p.name for p in query.parameters()) == ["p", "q"]

    def test_parameters_in_in_list_and_between(self):
        query = parse_query(
            "SELECT count(*) FROM items i "
            "WHERE i.i_part IN (1, ?, :x) AND i.i_quantity BETWEEN ? AND :hi"
        )
        keys = [p.key for p in query.parameters()]
        assert keys == [0, "x", 1, "hi"]

    def test_question_mark_on_join_side_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM orders o, items i WHERE ? = i.i_order")

    def test_unbound_query_refuses_planning(self):
        query = parse_query("SELECT count(*) FROM orders o WHERE o.o_customer = ?")
        with pytest.raises(ParseError, match="unbound parameters"):
            query.ensure_bound()


class TestBinding:
    def _template(self):
        return parse_query(
            "SELECT count(*) FROM orders o "
            "WHERE o.o_priority = ? AND o.o_customer BETWEEN :lo AND :hi"
        )

    def test_bind_positional_and_named(self):
        bound = self._template().bind({0: "HIGH", "lo": 2, "hi": 9})
        assert not bound.is_parameterized
        values = {(p.op): p.value for p in bound.local_predicates}
        assert values["="] == "HIGH"
        assert values["between"] == (2, 9)

    def test_bind_sequence_covers_positional(self):
        query = parse_query(
            "SELECT count(*) FROM orders o WHERE o.o_priority = ? AND o.o_customer = ?"
        )
        bound = query.bind(["LOW", 3])
        assert [p.value for p in bound.local_predicates] == ["LOW", 3]

    def test_missing_binding_raises(self):
        with pytest.raises(ParseError, match="missing bindings"):
            self._template().bind({0: "HIGH", "lo": 2})

    def test_surplus_binding_raises(self):
        with pytest.raises(ParseError, match="unknown parameter bindings"):
            self._template().bind({0: "HIGH", "lo": 2, "hi": 9, "oops": 1})

    def test_bind_leaves_template_untouched(self):
        template = self._template()
        template.bind({0: "HIGH", "lo": 2, "hi": 9})
        assert template.is_parameterized


class TestBuilderParameters:
    def test_filter_param_positional_and_named(self):
        builder = QueryBuilder("t").table("orders", "o")
        query = (
            builder
            .filter_param("o", "o_priority", "=")
            .filter_param("o", "o_customer", ">=", name="lo")
            .filter_param("o", "o_total", "<", )
            .build()
        )
        keys = [p.key for p in query.parameters()]
        assert keys == [0, "lo", 1]
        bound = query.bind({0: "HIGH", "lo": 5, 1: 100.0})
        assert not bound.is_parameterized

    def test_parameter_constructor_validation(self):
        with pytest.raises(ParseError):
            Parameter()
        with pytest.raises(ParseError):
            Parameter(index=0, name="x")
