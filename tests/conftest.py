"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.catalog import Database
from repro.storage.table import Column, Table, TableSchema
from repro.workloads.ott import generate_ott_database, make_ott_query

#: The single base seed every test-local random stream derives from.  Tests
#: that need several independent streams pass distinct offsets to
#: ``make_rng``; nothing in the suite seeds ``numpy.random`` ad hoc.
GLOBAL_TEST_SEED = 0


@pytest.fixture
def make_rng():
    """Factory for deterministic per-test generators.

    ``make_rng(offset)`` returns ``np.random.default_rng(GLOBAL_TEST_SEED +
    offset)``; the offset keeps streams that must differ (e.g. build vs probe
    side of a join) independent while the whole suite stays reproducible from
    one seed.
    """

    def factory(offset: int = 0) -> np.random.Generator:
        return np.random.default_rng(GLOBAL_TEST_SEED + offset)

    return factory


@pytest.fixture
def rng(make_rng) -> np.random.Generator:
    """The default deterministic generator (offset 0)."""
    return make_rng()


@pytest.fixture
def small_db(make_rng) -> Database:
    """A tiny two-table database (orders/items style) used across unit tests."""
    db = Database("unit")
    rng = make_rng()
    n_orders = 200
    n_items = 1000
    db.create_table(Table(
        TableSchema("orders", (
            Column("o_id", "int"), Column("o_customer", "int"), Column("o_priority", "str"),
            Column("o_total", "float"),
        )),
        {
            "o_id": np.arange(n_orders),
            "o_customer": rng.integers(0, 50, size=n_orders),
            "o_priority": rng.choice(["HIGH", "LOW", "MEDIUM"], size=n_orders).astype(object),
            "o_total": rng.uniform(10.0, 1000.0, size=n_orders),
        },
    ))
    db.create_table(Table(
        TableSchema("items", (
            Column("i_order", "int"), Column("i_part", "int"), Column("i_quantity", "int"),
            Column("i_price", "float"),
        )),
        {
            "i_order": rng.integers(0, n_orders, size=n_items),
            "i_part": rng.integers(0, 100, size=n_items),
            "i_quantity": rng.integers(1, 10, size=n_items),
            "i_price": rng.uniform(1.0, 100.0, size=n_items),
        },
    ))
    db.create_index("orders", "o_id")
    db.create_index("items", "i_order")
    db.analyze()
    db.create_samples(ratio=0.3, seed=7)
    return db


@pytest.fixture(scope="session")
def ott_db() -> Database:
    """A small OTT database shared by the re-optimization tests."""
    return generate_ott_database(
        num_tables=4, rows_per_table=1500, rows_per_value=30, seed=5, sampling_ratio=0.1
    )


@pytest.fixture(scope="session")
def ott_query(ott_db):
    """An OTT query that is empty (constants differ) over the shared database."""
    return make_ott_query(ott_db, [0, 0, 0, 1], name="ott_empty")
