"""The intermediate registry, MaterializedNode execution and canonical order."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.executor.executor import Executor, required_columns
from repro.executor.materialization import (
    IntermediateRegistry,
    canonical_row_order,
    canonicalize_relation,
)
from repro.optimizer.optimizer import Optimizer
from repro.plans.nodes import MaterializedNode
from repro.relalg import Relation
from repro.sql.builder import QueryBuilder
from repro.sql.parser import parse_query


class TestIntermediateRegistry:
    def test_store_and_fetch(self):
        registry = IntermediateRegistry()
        relation = Relation({"a.x": np.array([1, 2, 3])})
        entry = registry.store({"a"}, relation, source_signature=("scan",))
        assert entry.actual_rows == 3
        assert {"a"} in registry
        assert registry.get({"a"}).relation is relation
        assert registry.relation({"a"}) is relation
        assert registry.get({"a"}).reuse_count == 1
        assert registry.total_reuses() == 1
        assert registry.cardinalities() == {frozenset({"a"}): 3}

    def test_missing_join_set_raises(self):
        registry = IntermediateRegistry()
        with pytest.raises(KeyError):
            registry.relation({"a", "b"})
        with pytest.raises(ValueError):
            registry.store([], Relation())

    def test_join_sets_ordered_largest_first(self):
        registry = IntermediateRegistry()
        registry.store({"a"}, Relation(num_rows=1))
        registry.store({"a", "b", "c"}, Relation(num_rows=2))
        registry.store({"a", "b"}, Relation(num_rows=3))
        assert [len(key) for key in registry.join_sets()] == [3, 2, 1]
        assert registry.total_rows() == 6


class TestCanonicalOrder:
    def test_sorts_rows_lexicographically_by_all_columns(self):
        relation = Relation(
            {"t.a": np.array([2, 1, 2, 1]), "t.b": np.array([0, 5, -1, 4])}
        )
        ordered = canonicalize_relation(relation)
        assert ordered["t.a"].tolist() == [1, 1, 2, 2]
        assert ordered["t.b"].tolist() == [4, 5, -1, 0]

    def test_result_is_a_pure_function_of_the_row_multiset(self, make_rng):
        rng = make_rng()
        base = Relation(
            {"t.a": rng.integers(0, 5, size=50), "t.b": rng.uniform(size=50)}
        )
        shuffled = base.take(rng.permutation(50))
        a, b = canonicalize_relation(base), canonicalize_relation(shuffled)
        assert np.array_equal(a["t.a"], b["t.a"])
        assert np.array_equal(a["t.b"], b["t.b"])

    def test_degenerate_relations_pass_through(self):
        empty = Relation()
        assert canonical_row_order(empty) is None
        assert canonicalize_relation(empty) is empty
        single = Relation({"t.a": np.array([1])})
        assert canonical_row_order(single) is None


class TestMaterializedExecution:
    def test_materialized_leaf_resolves_from_registry(self, small_db):
        registry = IntermediateRegistry()
        relation = Relation({"o.o_id": np.arange(10)})
        registry.store({"o"}, relation)
        executor = Executor(small_db, intermediates=registry)
        node = MaterializedNode(relations=frozenset({"o"}), estimated_rows=10.0)
        result = executor.execute_fragment(node)
        assert result.num_rows == 10
        assert result.node_executions[0].kind == "materialized"
        # Reuse is free: no resources charged.
        assert result.simulated_cost == 0.0
        assert result.actual_cardinalities()[frozenset({"o"})] == 10

    def test_materialized_leaf_without_registry_raises(self, small_db):
        executor = Executor(small_db)
        node = MaterializedNode(relations=frozenset({"o"}), estimated_rows=1.0)
        with pytest.raises(ExecutionError):
            executor.execute_fragment(node)

    def test_fragmentwise_join_matches_monolithic(self, small_db):
        """Executing scans and the join as separate checkpointed fragments
        reproduces the monolithic execution bit for bit."""
        query = parse_query(
            "SELECT count(*) FROM orders o, items i WHERE o.o_id = i.i_order"
        )
        plan = Optimizer(small_db).optimize(query)
        monolithic = Executor(small_db).execute_plan(plan, query)

        registry = IntermediateRegistry()
        executor = Executor(small_db, intermediates=registry)
        required = required_columns(plan, query)
        join_node = plan.child
        for scan in join_node.scan_nodes():
            fragment = executor.execute_fragment(scan, required)
            registry.store({scan.alias}, fragment.columns)
        from dataclasses import replace

        spliced = replace(
            join_node,
            left=MaterializedNode(relations=frozenset(join_node.left.relations)),
            right=MaterializedNode(relations=frozenset(join_node.right.relations)),
        )
        fragment = executor.execute_fragment(spliced, required)
        assert fragment.num_rows == monolithic.actual_cardinalities()[
            frozenset({"o", "i"})
        ]


class TestSingleTableCardinalities:
    """Join-free queries must report their result cardinality (satellite fix
    contract: adaptive gating and the golden suite assert these)."""

    def test_seq_scan_single_table(self, small_db):
        query = parse_query("SELECT count(*) FROM orders o WHERE o.o_total > 500")
        result = Executor(small_db).execute(query)
        actuals = result.actual_cardinalities()
        assert frozenset({"o"}) in actuals
        assert actuals[frozenset({"o"})] == result.columns["count"][0]

    def test_index_scan_single_table(self, small_db):
        query = (
            QueryBuilder("q").table("orders", "o").filter("o", "o_id", "=", 5)
            .aggregate("count", output_name="n").build()
        )
        plan = Optimizer(small_db).optimize(query)
        result = Executor(small_db).execute_plan(plan, query)
        actuals = result.actual_cardinalities()
        assert actuals[frozenset({"o"})] == result.columns["n"][0]

    def test_projection_only_single_table(self, small_db):
        query = parse_query("SELECT o.o_id FROM orders o WHERE o.o_customer = 3")
        result = Executor(small_db).execute(query)
        assert result.actual_cardinalities()[frozenset({"o"})] == result.num_rows
