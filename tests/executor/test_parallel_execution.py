"""End-to-end bit-identity of morsel-parallel execution and validation.

The acceptance contract of the parallel runtime: for every workload query
(TPC-H, TPC-DS, OTT), executing a plan with a parallel scheduler attached
must produce exactly the serial results — output columns, row order, actual
cardinalities, resource vectors and simulated cost — and the sampling
validator must produce exactly the serial Δ cardinalities.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.relalg.aggregate as aggregate_module
import repro.relalg.joins as joins_module
import repro.relalg.predicates as predicates_module
from repro.cardinality.sampling_estimator import SamplingEstimator
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.relalg import TaskScheduler
from repro.workloads.ott import generate_ott_database, make_ott_query
from repro.workloads.tpcds import generate_tpcds_database, make_tpcds_workload
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import make_tpch_workload


@pytest.fixture
def force_parallel(monkeypatch):
    """Zero the serial-fallback thresholds so test-scale data goes parallel."""
    monkeypatch.setattr(joins_module, "_MIN_PARALLEL_JOIN_ROWS", 0)
    monkeypatch.setattr(aggregate_module, "_MIN_PARALLEL_AGG_ROWS", 0)
    monkeypatch.setattr(predicates_module, "_MIN_PARALLEL_FILTER_ROWS", 0)


@pytest.fixture(scope="module")
def scheduler():
    with TaskScheduler(workers=4, name="test-exec", backend="process") as sched:
        yield sched


def assert_executions_identical(serial, parallel) -> None:
    assert serial.num_rows == parallel.num_rows
    assert set(serial.columns) == set(parallel.columns)
    for name in serial.columns:
        a = np.asarray(serial.columns[name])
        b = np.asarray(parallel.columns[name])
        assert a.dtype == b.dtype, name
        if np.issubdtype(a.dtype, np.floating):
            # NaN (empty-input aggregates) compares unequal to itself; the
            # bitwise comparison is what "bit-identical" actually means.
            assert np.array_equal(a, b, equal_nan=True), name
        else:
            assert np.array_equal(a, b), name
    assert serial.actual_cardinalities() == parallel.actual_cardinalities()
    assert len(serial.node_executions) == len(parallel.node_executions)
    for node_s, node_p in zip(serial.node_executions, parallel.node_executions):
        assert node_s.relations == node_p.relations
        assert node_s.kind == node_p.kind
        assert node_s.actual_rows == node_p.actual_rows
        assert node_s.resources.as_array().tolist() == node_p.resources.as_array().tolist()
    assert serial.simulated_cost == parallel.simulated_cost


def run_both_and_compare(db, queries, scheduler) -> None:
    optimizer = Optimizer(db)
    serial_executor = Executor(db)
    parallel_executor = Executor(db, scheduler=scheduler, morsel_rows=512)
    for query in queries:
        plan = optimizer.optimize(query)
        serial = serial_executor.execute_plan(plan, query)
        parallel = parallel_executor.execute_plan(plan, query)
        assert_executions_identical(serial, parallel)


class TestWorkloadBitIdentity:
    def test_ott_queries(self, force_parallel, scheduler):
        db = generate_ott_database(
            num_tables=5, rows_per_table=1500, rows_per_value=30, seed=5, sampling_ratio=0.3
        )
        queries = [
            make_ott_query(db, [0, 0, 0, 0, 0]),
            make_ott_query(db, [0, 0, 1, 0, 1]),
            make_ott_query(db, [1, 0, 0, 1, 0]),
        ]
        run_both_and_compare(db, queries, scheduler)

    def test_tpch_queries(self, force_parallel, scheduler):
        db = generate_tpch_database(scale_factor=0.002, seed=3, sampling_ratio=0.4)
        workload = make_tpch_workload(db, instances_per_query=1, seed=3)
        queries = [instances[0] for instances in workload.values()]
        run_both_and_compare(db, queries, scheduler)

    def test_tpcds_queries(self, force_parallel, scheduler):
        db = generate_tpcds_database(scale=0.08, seed=3, sampling_ratio=0.4)
        queries = make_tpcds_workload(db, seed=3)
        run_both_and_compare(db, queries, scheduler)


class TestSamplingValidationBitIdentity:
    def test_validate_plan_identical_cardinalities(self, force_parallel, scheduler):
        db = generate_ott_database(
            num_tables=5, rows_per_table=1500, rows_per_value=30, seed=9, sampling_ratio=0.3
        )
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        serial = SamplingEstimator(db, query).validate_plan(plan)
        parallel = SamplingEstimator(db, query, scheduler=scheduler).validate_plan(plan)
        assert serial.cardinalities == parallel.cardinalities
        assert serial.joins_validated == parallel.joins_validated
        assert serial.joins_skipped_no_support == parallel.joins_skipped_no_support

    def test_morsel_fingerprint_cache_reuse(self, force_parallel, scheduler):
        """Re-validating the same plan hits the fingerprint-keyed caches —
        no new sample-join row operations on the second pass."""
        db = generate_ott_database(
            num_tables=5, rows_per_table=1500, rows_per_value=30, seed=9, sampling_ratio=0.3
        )
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        estimator = SamplingEstimator(db, query, scheduler=scheduler)
        first = estimator.validate_plan(plan)
        second = estimator.validate_plan(plan)
        assert first.cardinalities == second.cardinalities
        assert second.sample_join_row_ops == 0


class TestNestedLoopBlockParameter:
    def test_block_size_does_not_change_results(self, make_rng):
        from repro.relalg import Relation, nested_loop_join
        from repro.sql.ast import JoinPredicate

        rng = make_rng(4)
        left = Relation({"l.k": rng.integers(0, 20, size=300)})
        right = Relation({"r.k": rng.integers(0, 20, size=200)})
        predicates = [JoinPredicate("l", "k", "r", "k")]
        default = nested_loop_join(left, right, predicates, frozenset({"l"}))
        for block_elements in (1, 17, 1000, 10_000_000):
            tiny = nested_loop_join(
                left, right, predicates, frozenset({"l"}), block_elements=block_elements
            )
            assert tiny.num_rows == default.num_rows
            assert np.array_equal(np.asarray(tiny["l.k"]), np.asarray(default["l.k"]))
            assert np.array_equal(np.asarray(tiny["r.k"]), np.asarray(default["r.k"]))

    def test_threaded_through_optimizer_settings(self):
        from repro.optimizer.settings import OptimizerSettings
        from repro.cost.units import DEFAULT_COST_UNITS

        settings = OptimizerSettings(nested_loop_block_elements=12_345)
        assert settings.with_units(DEFAULT_COST_UNITS).nested_loop_block_elements == 12_345
        db = generate_ott_database(
            num_tables=3, rows_per_table=200, rows_per_value=10, seed=1, sampling_ratio=0.5
        )
        executor = Executor(db, nested_loop_block_elements=settings.nested_loop_block_elements)
        assert executor.nested_loop_block_elements == 12_345
