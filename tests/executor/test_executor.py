"""Tests for the executor: correctness of operators and instrumentation."""

import numpy as np
import pytest

from repro.executor.executor import Executor
from repro.relalg import (
    filter_relation,
    group_aggregate,
    hash_join,
    relation_num_rows,
)
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import JoinMethod
from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate
from repro.sql.builder import QueryBuilder
from repro.sql.parser import parse_query


class TestKernels:
    def test_apply_predicate_mask_all_operators(self):
        relation = {"t.a": np.array([1, 2, 3, 4, 5]), "t.b": np.array([10, 20, 30, 40, 50])}
        cases = [
            (LocalPredicate("t", "a", "=", 3), [3]),
            (LocalPredicate("t", "a", "<>", 3), [1, 2, 4, 5]),
            (LocalPredicate("t", "a", "<", 3), [1, 2]),
            (LocalPredicate("t", "a", "<=", 3), [1, 2, 3]),
            (LocalPredicate("t", "a", ">", 3), [4, 5]),
            (LocalPredicate("t", "a", ">=", 3), [3, 4, 5]),
        ]
        for predicate, expected in cases:
            filtered = filter_relation(relation, "t", [predicate])
            assert list(filtered["t.a"]) == expected

    def test_equi_join_matches_reference(self):
        left = {"l.k": np.array([1, 2, 2, 3]), "l.v": np.array([10, 20, 21, 30])}
        right = {"r.k": np.array([2, 2, 3, 4]), "r.w": np.array([200, 201, 300, 400])}
        predicate = JoinPredicate("l", "k", "r", "k")
        result = hash_join(left, right, [predicate], frozenset({"l"}))
        pairs = sorted(zip(result["l.v"].tolist(), result["r.w"].tolist()))
        assert pairs == [(20, 200), (20, 201), (21, 200), (21, 201), (30, 300)]

    def test_equi_join_empty_input(self):
        left = {"l.k": np.array([], dtype=np.int64)}
        right = {"r.k": np.array([1, 2])}
        result = hash_join(left, right, [JoinPredicate("l", "k", "r", "k")], frozenset({"l"}))
        assert relation_num_rows(result) == 0

    def test_equi_join_without_predicates_is_cross_product(self):
        left = {"l.a": np.array([1, 2])}
        right = {"r.b": np.array([10, 20, 30])}
        result = hash_join(left, right, [], frozenset({"l"}))
        assert relation_num_rows(result) == 6

    def test_equi_join_multiple_predicates(self):
        left = {"l.k1": np.array([1, 1, 2]), "l.k2": np.array([5, 6, 7])}
        right = {"r.k1": np.array([1, 1, 2]), "r.k2": np.array([5, 9, 7])}
        predicates = [JoinPredicate("l", "k1", "r", "k1"), JoinPredicate("l", "k2", "r", "k2")]
        result = hash_join(left, right, predicates, frozenset({"l"}))
        assert relation_num_rows(result) == 2

    def test_group_aggregate_grouped(self):
        relation = {
            "t.g": np.array([1, 1, 2, 2, 2]),
            "t.v": np.array([10.0, 20.0, 1.0, 2.0, 3.0]),
        }
        result = group_aggregate(
            relation,
            [ColumnRef("t", "g")],
            [
                Aggregate("sum", "t", "v", "total"),
                Aggregate("count", None, None, "cnt"),
                Aggregate("avg", "t", "v", "mean"),
                Aggregate("min", "t", "v", "lo"),
                Aggregate("max", "t", "v", "hi"),
            ],
        )
        assert list(result["t.g"]) == [1, 2]
        assert list(result["total"]) == [30.0, 6.0]
        assert list(result["cnt"]) == [2, 3]
        assert list(result["mean"]) == [15.0, 2.0]
        assert list(result["lo"]) == [10.0, 1.0]
        assert list(result["hi"]) == [20.0, 3.0]

    def test_group_aggregate_global(self):
        relation = {"t.v": np.array([1.0, 2.0, 3.0])}
        result = group_aggregate(relation, [], [Aggregate("sum", "t", "v", "s")])
        assert result["s"][0] == 6.0

    def test_group_aggregate_empty_input(self):
        relation = {"t.g": np.array([], dtype=np.int64), "t.v": np.array([], dtype=float)}
        grouped = group_aggregate(relation, [ColumnRef("t", "g")], [Aggregate("count", None, None, "c")])
        assert relation_num_rows(grouped) == 0
        global_agg = group_aggregate(relation, [], [Aggregate("count", None, None, "c")])
        assert global_agg["c"][0] == 0


class TestExecutorEndToEnd:
    def test_selection_count_matches_numpy(self, small_db):
        query = parse_query("SELECT count(*) FROM orders WHERE orders.o_priority = 'HIGH'")
        result = Executor(small_db).execute(query)
        expected = int((small_db.table("orders").column("o_priority") == "HIGH").sum())
        assert result.columns["count"][0] == expected

    def test_join_count_matches_reference(self, small_db):
        query = parse_query(
            "SELECT count(*) FROM orders o, items i WHERE o.o_id = i.i_order AND o.o_priority = 'LOW'"
        )
        result = Executor(small_db).execute(query)
        orders = small_db.table("orders")
        items = small_db.table("items")
        low_ids = set(orders.column("o_id")[orders.column("o_priority") == "LOW"].tolist())
        expected = sum(1 for order in items.column("i_order").tolist() if order in low_ids)
        assert result.columns["count"][0] == expected

    def test_join_method_does_not_change_results(self, small_db):
        query = parse_query(
            "SELECT count(*) FROM orders o, items i WHERE o.o_id = i.i_order"
        )
        results = []
        for methods in (
            frozenset({JoinMethod.HASH_JOIN}),
            frozenset({JoinMethod.MERGE_JOIN}),
            frozenset({JoinMethod.NESTED_LOOP}),
            frozenset({JoinMethod.INDEX_NESTED_LOOP, JoinMethod.HASH_JOIN}),
        ):
            settings = OptimizerSettings(enabled_join_methods=methods)
            plan = Optimizer(small_db, settings).optimize(query)
            results.append(Executor(small_db).execute_plan(plan, query).columns["count"][0])
        assert len(set(results)) == 1

    def test_projection_applied(self, small_db):
        query = parse_query("SELECT o.o_id FROM orders o WHERE o.o_total > 500")
        result = Executor(small_db).execute(query)
        assert set(result.columns) == {"o.o_id"}

    def test_instrumentation_records_actual_cardinalities(self, small_db):
        query = parse_query(
            "SELECT count(*) FROM orders o, items i WHERE o.o_id = i.i_order"
        )
        plan = Optimizer(small_db).optimize(query)
        result = Executor(small_db).execute_plan(plan, query)
        actuals = result.actual_cardinalities()
        assert actuals[frozenset({"o", "i"})] == 1000
        assert result.simulated_cost > 0
        assert result.wall_seconds >= 0
        # The total resources equal the sum over the nodes.
        total = sum(ne.resources.tuples for ne in result.node_executions)
        assert result.actual_resources.tuples == pytest.approx(total)

    def test_index_scan_execution_matches_seq_scan(self, small_db):
        query = (
            QueryBuilder("q").table("orders", "o").filter("o", "o_id", "=", 5)
            .aggregate("count", output_name="c").build()
        )
        index_plan = Optimizer(small_db).optimize(query)
        seq_plan = Optimizer(small_db, OptimizerSettings(enable_index_scan=False)).optimize(query)
        executor = Executor(small_db)
        assert (
            executor.execute_plan(index_plan, query).columns["c"][0]
            == executor.execute_plan(seq_plan, query).columns["c"][0]
            == 1
        )

    def test_empty_result_join(self, small_db):
        query = parse_query(
            "SELECT count(*) FROM orders o, items i WHERE o.o_id = i.i_order AND o.o_total < 0"
        )
        result = Executor(small_db).execute(query)
        assert result.columns["count"][0] == 0
