"""Tests for the TPC-H-like and TPC-DS-like generators and query templates."""

import numpy as np
import pytest

from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.workloads.tpch import TpchConfig, generate_tpch_database
from repro.workloads.tpch_queries import (
    TPCH_QUERY_NUMBERS,
    TPCH_QUERY_TEMPLATES,
    make_tpch_query,
    make_tpch_workload,
)
from repro.workloads.tpcds import (
    TPCDS_QUERY_NUMBERS,
    generate_tpcds_database,
    make_tpcds_query,
    make_tpcds_workload,
)


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch_database(scale_factor=0.002, zipf_z=0.0, seed=3, sampling_ratio=0.4)


@pytest.fixture(scope="module")
def tpcds_db():
    return generate_tpcds_database(scale=0.1, seed=3, sampling_ratio=0.4)


class TestTpchGenerator:
    def test_all_tables_present(self, tpch_db):
        expected = {
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        }
        assert set(tpch_db.table_names()) == expected

    def test_row_counts_scale(self, tpch_db):
        config = TpchConfig(scale_factor=0.002)
        assert tpch_db.table("lineitem").num_rows == config.rows("lineitem") == 12000
        assert tpch_db.table("region").num_rows == 5
        assert tpch_db.table("nation").num_rows == 25

    def test_foreign_keys_resolve(self, tpch_db):
        orders = tpch_db.table("orders")
        customers = tpch_db.table("customer")
        assert orders.column("o_custkey").max() < customers.num_rows
        lineitem = tpch_db.table("lineitem")
        assert lineitem.column("l_orderkey").max() < orders.num_rows

    def test_skewed_generation_is_skewed(self):
        skewed = generate_tpch_database(
            scale_factor=0.002, zipf_z=1.0, seed=3,
            analyze=False, create_indexes=False, create_samples=False,
        )
        counts = np.bincount(skewed.table("lineitem").column("l_partkey"))
        top_share = counts.max() / counts.sum()
        # With z=1 the hottest part receives far more than the uniform share.
        assert top_share > 5.0 / len(counts)

    def test_statistics_and_samples_ready(self, tpch_db):
        assert "lineitem" in tpch_db.statistics
        assert tpch_db.samples is not None
        assert tpch_db.has_index("lineitem", "l_orderkey")


class TestTpchQueries:
    def test_template_registry_matches_paper(self):
        assert len(TPCH_QUERY_NUMBERS) == 21
        assert 15 not in TPCH_QUERY_NUMBERS
        assert set(TPCH_QUERY_TEMPLATES) == {f"q{n}" for n in TPCH_QUERY_NUMBERS}

    def test_unknown_query_rejected(self, tpch_db):
        with pytest.raises(KeyError):
            make_tpch_query(tpch_db, 15)

    @pytest.mark.parametrize("number", TPCH_QUERY_NUMBERS)
    def test_each_template_builds_optimizes_and_executes(self, tpch_db, number):
        query = make_tpch_query(tpch_db, number, seed=number)
        query.validate()
        assert query.is_join_graph_connected()
        plan = Optimizer(tpch_db).optimize(query)
        result = Executor(tpch_db).execute_plan(plan, query)
        assert result.simulated_cost > 0

    def test_workload_instances_differ_in_constants(self, tpch_db):
        workload = make_tpch_workload(tpch_db, numbers=[3], instances_per_query=3, seed=1)
        constants = [
            tuple(p.value for p in query.local_predicates) for query in workload["q3"]
        ]
        assert len(set(constants)) > 1

    def test_workload_shape(self, tpch_db):
        workload = make_tpch_workload(tpch_db, instances_per_query=1, seed=0)
        assert len(workload) == 21
        assert all(len(instances) == 1 for instances in workload.values())


class TestTpcdsGeneratorAndQueries:
    def test_expected_tables_present(self, tpcds_db):
        assert {"store_sales", "store_returns", "date_dim", "item", "customer"} <= set(
            tpcds_db.table_names()
        )

    def test_returns_reference_sales(self, tpcds_db):
        returns = tpcds_db.table("store_returns")
        sales = tpcds_db.table("store_sales")
        assert returns.column("sr_ticket_number").max() < sales.num_rows

    def test_workload_covers_paper_queries(self, tpcds_db):
        queries = make_tpcds_workload(tpcds_db, seed=1)
        assert len(queries) == len(TPCDS_QUERY_NUMBERS) + 1  # + Q50'
        names = {query.name for query in queries}
        assert "q50_prime" in names

    def test_unknown_tpcds_query_rejected(self, tpcds_db):
        with pytest.raises(KeyError):
            make_tpcds_query(tpcds_db, "q9999")

    @pytest.mark.parametrize("name", ["q3", "q17", "q50", "q50_prime", "q99", "q69"])
    def test_representative_queries_execute(self, tpcds_db, name):
        query = make_tpcds_query(tpcds_db, name, seed=11)
        plan = Optimizer(tpcds_db).optimize(query)
        result = Executor(tpcds_db).execute_plan(plan, query)
        assert result.simulated_cost > 0
