"""Tests for the OTT database/query generators (Section 4)."""

import numpy as np
import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.workloads.ott import (
    OttConfig,
    generate_ott_database,
    make_ott_query,
    make_ott_workload,
    ott_table_name,
)


@pytest.fixture(scope="module")
def db():
    # rows_per_value is kept small so that the all-matching (non-empty) query
    # executed in these tests materialises ~20^4 rows rather than millions.
    return generate_ott_database(
        num_tables=4, rows_per_table=2000, rows_per_value=20, seed=21, sampling_ratio=0.2
    )


class TestDataGeneration:
    def test_table_naming(self):
        assert ott_table_name(1) == "r1"
        assert ott_table_name(12) == "r12"

    def test_b_equals_a(self, db):
        """Algorithm 2 line 4: the join column equals the selection column."""
        for index in range(1, 5):
            table = db.table(ott_table_name(index))
            assert np.array_equal(table.column("a"), table.column("b"))

    def test_domain_size(self, db):
        config = OttConfig(num_tables=4, rows_per_table=2000, rows_per_value=20)
        assert config.domain_size == 100
        for index in range(1, 5):
            values = db.table(ott_table_name(index)).column("a")
            assert values.min() >= 0
            assert values.max() < 100

    def test_tables_generated_independently(self, db):
        """Algorithm 2 line 2: each relation uses its own random seed."""
        assert not np.array_equal(db.table("r1").column("a"), db.table("r2").column("a"))

    def test_indexes_statistics_samples_created(self, db):
        assert db.has_index("r1", "a") and db.has_index("r1", "b")
        assert "r1" in db.statistics
        assert db.samples is not None


class TestQueries:
    def test_query_structure(self, db):
        query = make_ott_query(db, [0, 1, 2, 3])
        assert query.num_joins == 3
        assert len(query.local_predicates) == 4
        assert query.is_join_graph_connected()

    def test_query_requires_two_tables(self, db):
        with pytest.raises(ValueError):
            make_ott_query(db, [0])

    def test_query_unknown_table_rejected(self, db):
        with pytest.raises(ValueError):
            make_ott_query(db, [0, 0, 0, 0, 0, 0, 0])

    def test_equation3_empty_vs_nonempty(self, db):
        """The query is non-empty exactly when all constants are equal."""
        executor = Executor(db)
        optimizer = Optimizer(db)
        empty_query = make_ott_query(db, [0, 0, 1, 0])
        nonempty_query = make_ott_query(db, [2, 2, 2, 2])
        empty_rows = executor.execute_plan(
            optimizer.optimize(empty_query), empty_query
        ).columns["result_rows"][0]
        nonempty_rows = executor.execute_plan(
            optimizer.optimize(nonempty_query), nonempty_query
        ).columns["result_rows"][0]
        assert empty_rows == 0
        assert nonempty_rows > 0

    def test_optimizer_estimate_identical_regardless_of_emptiness(self, db):
        """Appendix D: the estimated size does not depend on Equation 3 holding."""
        empty_query = make_ott_query(db, [0, 0, 1, 0])
        nonempty_query = make_ott_query(db, [0, 0, 0, 0])
        full = {"r1", "r2", "r3", "r4"}
        empty_estimate = CardinalityEstimator(db, empty_query).joinset_cardinality(full)
        nonempty_estimate = CardinalityEstimator(db, nonempty_query).joinset_cardinality(full)
        assert empty_estimate == pytest.approx(nonempty_estimate, rel=0.35)

    def test_underestimation_gap_grows_with_joins(self, db):
        """Example 4: the optimizer underestimates by ~M^K / L^(K-1)."""
        query = make_ott_query(db, [0, 0, 0, 0])
        estimator = CardinalityEstimator(db, query)
        estimate = estimator.joinset_cardinality({"r1", "r2", "r3", "r4"})
        selected = [int((db.table(f"r{i}").column("a") == 0).sum()) for i in range(1, 5)]
        actual = np.prod(selected, dtype=float)
        assert actual > 50 * estimate


class TestWorkload:
    def test_workload_size_and_names(self, db):
        queries = make_ott_workload(db, num_tables=4, num_queries=7, seed=3)
        assert len(queries) == 7
        assert [q.name for q in queries] == [f"ott_q{i}" for i in range(1, 8)]

    def test_all_workload_queries_are_empty(self, db):
        """With m < n matching selections every workload query is empty."""
        executor = Executor(db)
        optimizer = Optimizer(db)
        for query in make_ott_workload(db, num_tables=4, num_queries=5, seed=9):
            rows = executor.execute_plan(optimizer.optimize(query), query).columns["result_rows"][0]
            assert rows == 0

    def test_invalid_num_matching(self, db):
        with pytest.raises(ValueError):
            make_ott_workload(db, num_tables=4, num_queries=2, num_matching=4)

    def test_workload_reproducible(self, db):
        first = make_ott_workload(db, num_tables=4, num_queries=3, seed=5)
        second = make_ott_workload(db, num_tables=4, num_queries=3, seed=5)
        for a, b in zip(first, second):
            assert [p.value for p in a.local_predicates] == [p.value for p in b.local_predicates]
