"""Tests for the concurrent workload driver."""

import pytest

from repro.plans.join_tree import plans_identical
from repro.reopt.algorithm import Reoptimizer
from repro.reopt.driver import (
    DriverSettings,
    WorkloadDriver,
    plan_fingerprint,
    statistics_fingerprint,
)
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query, make_ott_workload


@pytest.fixture(scope="module")
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=2500, rows_per_value=40, seed=13, sampling_ratio=0.2
    )


@pytest.fixture(scope="module")
def workload(db):
    return make_ott_workload(db, num_tables=5, num_queries=8, seed=5)


class TestFingerprints:
    def test_name_is_not_part_of_the_fingerprint(self, db):
        first = make_ott_query(db, [0, 0, 1, 0, 0], name="first")
        second = make_ott_query(db, [0, 0, 1, 0, 0], name="second")
        assert plan_fingerprint(first) == plan_fingerprint(second)
        assert statistics_fingerprint(first) == statistics_fingerprint(second)

    def test_local_predicates_distinguish_fingerprints(self, db):
        first = make_ott_query(db, [0, 0, 1, 0, 0])
        second = make_ott_query(db, [0, 1, 1, 0, 0])
        assert statistics_fingerprint(first) != statistics_fingerprint(second)

    def test_literal_only_difference_never_shares_a_plan(self, db):
        """Regression for the plan-cache keying: two queries identical except
        for one predicate constant must be distinct cache lines — driver-level
        check on top of the shared fingerprint utility's unit tests."""
        first = make_ott_query(db, [0, 0, 0, 0, 0], name="lit_a")
        second = make_ott_query(db, [0, 0, 0, 0, 2], name="lit_b")
        assert plan_fingerprint(first) != plan_fingerprint(second)
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=1))
        driver.run([first, second])
        assert driver.stats.plan_cache_hits == 0
        assert driver.stats.queries_reoptimized == 2

    def test_numeric_spelling_shares_the_cache_line(self, db):
        """The normalized keys collapse 0 vs 0.0 — same semantics, one plan."""
        float_constants = QueryBuilder("floats")
        for index in range(1, 6):
            value = 1.0 if index == 5 else 0.0
            float_constants.table(f"r{index}").filter(f"r{index}", "a", "=", value)
        for index in range(1, 5):
            float_constants.join(f"r{index}", "b", f"r{index + 1}", "b")
        float_query = float_constants.aggregate("count", output_name="c").build()
        int_query_counted = make_ott_query(db, [0, 0, 0, 0, 1], name="ints_c")
        assert statistics_fingerprint(float_query) == statistics_fingerprint(
            int_query_counted
        )

    def test_aggregates_only_affect_plan_fingerprint(self, db):
        base = (
            QueryBuilder("a").table("r1").table("r2").join("r1", "b", "r2", "b")
        ).build()
        aggregated = (
            QueryBuilder("b").table("r1").table("r2").join("r1", "b", "r2", "b")
            .aggregate("count", output_name="c")
        ).build()
        assert statistics_fingerprint(base) == statistics_fingerprint(aggregated)
        assert plan_fingerprint(base) != plan_fingerprint(aggregated)


class TestDriverEquivalence:
    def test_concurrent_plans_identical_to_serial(self, db, workload):
        reoptimizer = Reoptimizer(db)
        serial = [reoptimizer.reoptimize(query) for query in workload]
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=4))
        batched = driver.run(workload)
        assert len(batched) == len(serial)
        fingerprints = [statistics_fingerprint(query) for query in workload]
        for index, (serial_result, batched_result) in enumerate(zip(serial, batched)):
            # The driver's contract: the *final* plan is always the serial
            # fixed point.
            assert plans_identical(serial_result.final_plan, batched_result.final_plan)
            # Original (round 1) plans match too, except for duplicates that
            # warm-started from a shared Γ and so skipped the uninformed
            # first rounds.
            if fingerprints.count(fingerprints[index]) == 1:
                assert plans_identical(
                    serial_result.original_plan, batched_result.original_plan
                )

    def test_single_worker_path(self, db, workload):
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=1))
        results = driver.run(workload[:2])
        reoptimizer = Reoptimizer(db)
        for query, result in zip(workload[:2], results):
            assert plans_identical(
                result.final_plan, reoptimizer.reoptimize(query).final_plan
            )

    def test_empty_batch(self, db):
        assert WorkloadDriver(db).run([]) == []


class TestBatchOptimizations:
    def test_plan_cache_hits_for_duplicate_queries(self, db):
        queries = [
            make_ott_query(db, [0, 0, 0, 0, 1], name=f"dup_{i}") for i in range(4)
        ]
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=2))
        results = driver.run(queries)
        assert driver.stats.plan_cache_hits >= 1
        assert driver.stats.queries_reoptimized + driver.stats.plan_cache_hits == 4
        for result in results[1:]:
            assert plans_identical(result.final_plan, results[0].final_plan)
        # The cached duplicates report zero overhead and carry their own query.
        names = {result.query.name for result in results}
        assert names == {f"dup_{i}" for i in range(4)}

    def test_plan_cache_persists_across_batches(self, db):
        query = make_ott_query(db, [1, 0, 0, 0, 0])
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=1))
        first = driver.run([query])[0]
        second = driver.run([query])[0]
        assert driver.stats.plan_cache_hits == 1
        assert plans_identical(first.final_plan, second.final_plan)
        assert second.reoptimization_seconds == 0.0

    def test_gamma_warm_start_preserves_final_plan(self, db):
        """Same statistics fingerprint, different output block: Γ is shared,
        the warm-started query converges immediately to the same join plan."""
        bare = QueryBuilder("bare")
        for index in range(1, 4):
            bare.table(f"r{index}").filter(f"r{index}", "a", "=", 0)
        bare.join("r1", "b", "r2", "b").join("r2", "b", "r3", "b")
        bare_query = bare.build()

        counted = QueryBuilder("counted")
        for index in range(1, 4):
            counted.table(f"r{index}").filter(f"r{index}", "a", "=", 0)
        counted.join("r1", "b", "r2", "b").join("r2", "b", "r3", "b")
        counted_query = counted.aggregate("count", output_name="c").build()

        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=1))
        warm_results = driver.run([bare_query, counted_query])
        assert driver.stats.plan_cache_hits == 0  # different plan fingerprints
        assert driver.stats.gamma_warm_starts == 1

        cold = Reoptimizer(db).reoptimize(counted_query)
        warm = warm_results[1]
        assert plans_identical(warm.final_plan, cold.final_plan)
        assert warm.rounds <= cold.rounds

    def test_gamma_sharing_disabled(self, db):
        queries = [
            make_ott_query(db, [0, 0, 0, 1, 0], name="x"),
            make_ott_query(db, [0, 0, 0, 1, 0], name="y"),
        ]
        driver = WorkloadDriver(
            db,
            settings=DriverSettings(max_workers=1, use_plan_cache=False, share_gamma=False),
        )
        results = driver.run(queries)
        assert driver.stats.plan_cache_hits == 0
        assert driver.stats.gamma_warm_starts == 0
        assert plans_identical(results[0].final_plan, results[1].final_plan)
