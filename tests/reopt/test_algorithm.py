"""Tests for Algorithm 1 (the re-optimization loop) and its reports."""

import pytest

from repro.executor.executor import Executor
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import JoinTree, plans_identical
from repro.reopt.algorithm import ReoptimizationSettings, Reoptimizer, reoptimize
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query, make_ott_workload


@pytest.fixture(scope="module")
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=2500, rows_per_value=40, seed=13, sampling_ratio=0.2
    )


class TestTermination:
    def test_loop_converges_and_is_reported(self, db):
        result = reoptimize(db, make_ott_query(db, [0, 0, 0, 0, 1]))
        assert result.converged
        assert 2 <= result.rounds <= 20
        assert result.report.rounds[-1].transformation is not None

    def test_convergence_is_by_identity_or_coverage(self, db):
        result = reoptimize(db, make_ott_query(db, [0, 0, 0, 1, 0]))
        if result.converged and result.rounds >= 2:
            last = result.report.rounds[-1]
            repeated = any(
                plans_identical(last.plan, earlier.plan)
                for earlier in result.report.rounds[:-1]
            )
            # Either the final plan re-surfaced an earlier (fully validated)
            # plan, or its validation added nothing new to Γ (coverage).
            assert repeated or last.new_gamma_entries == 0

    def test_no_join_query_terminates_after_one_round(self, db):
        # A join-free plan has nothing to validate: Δ is empty, Γ cannot
        # grow, and the coverage rule stops the loop without a redundant
        # second optimizer call.
        query = (
            QueryBuilder("single").table("r1").filter("r1", "a", "=", 0)
            .aggregate("count", output_name="c").build()
        )
        result = reoptimize(db, query)
        assert result.rounds == 1
        assert result.converged
        assert not result.plan_changed

    def test_max_rounds_budget_respected(self, db):
        settings = ReoptimizationSettings(max_rounds=2)
        result = Reoptimizer(db, settings=settings).reoptimize(
            make_ott_query(db, [0, 0, 0, 0, 1])
        )
        assert result.rounds <= 2

    def test_sampling_time_budget_stops_early(self, db):
        settings = ReoptimizationSettings(sampling_time_budget=0.0)
        result = Reoptimizer(db, settings=settings).reoptimize(
            make_ott_query(db, [0, 0, 0, 0, 1])
        )
        # One validation happens before the budget check, then the loop stops.
        assert result.rounds <= 2

    def test_samples_created_on_demand(self):
        db = generate_ott_database(
            num_tables=3, rows_per_table=900, rows_per_value=30, seed=3, create_samples=False
        )
        assert db.samples is None
        result = reoptimize(db, make_ott_query(db, [0, 0, 1]))
        assert db.samples is not None
        assert result.rounds >= 2


class TestPlanQuality:
    def test_ott_final_plans_never_catastrophic(self, db):
        """The OTT headline: re-optimized plans avoid the huge intermediate result."""
        executor = Executor(db)
        queries = make_ott_workload(db, num_tables=5, num_queries=6, seed=3)
        for query in queries:
            result = reoptimize(db, query)
            original = executor.execute_plan(result.original_plan, query)
            final = executor.execute_plan(result.final_plan, query)
            assert final.simulated_cost <= original.simulated_cost * 1.3
            assert final.columns["result_rows"][0] == original.columns["result_rows"][0]

    def test_empty_join_detected_and_pushed_down(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        result = reoptimize(db, query)
        # Gamma ends up knowing the full query is empty.
        full = frozenset({"r1", "r2", "r3", "r4", "r5"})
        assert result.gamma.get(full) == 0.0
        # The final plan contains at least one validated-empty join below the top.
        final_tree = JoinTree.of(result.final_plan)
        empty_joins = [
            join_set for join_set in final_tree.join_set
            if result.gamma.get(join_set) == 0.0 and len(join_set) < 5
        ]
        assert empty_joins, "expected an empty join to be evaluated early"

    def test_reoptimization_skips_reexecution_when_plan_unchanged(self, db):
        query = (
            QueryBuilder("simple").table("r1").table("r2")
            .join("r1", "b", "r2", "b")
            .aggregate("count", output_name="c").build()
        )
        result = reoptimize(db, query)
        assert result.plan_changed == (not plans_identical(result.final_plan, result.original_plan))


class TestReports:
    def test_report_summary_fields(self, db):
        result = reoptimize(db, make_ott_query(db, [0, 1, 0, 0, 0]))
        summary = result.report.summary()
        assert summary["query"] == result.query.name
        assert summary["rounds"] == result.rounds
        assert isinstance(summary["transformations"], list)
        assert result.report.total_sampling_seconds >= 0.0

    def test_theorem2_holds_for_observed_chains(self, db):
        """At most one local transformation, and only as the last step."""
        for constants in ([0, 0, 0, 0, 1], [1, 0, 0, 0, 0], [0, 0, 1, 0, 0]):
            result = reoptimize(db, make_ott_query(db, constants))
            assert result.report.validates_theorem_2()

    def test_covered_join_sets_superset_of_final_plan(self, db):
        result = reoptimize(db, make_ott_query(db, [0, 0, 1, 0, 0]))
        final_tree = JoinTree.of(result.final_plan)
        assert final_tree.join_set <= result.report.covered_join_sets()

    def test_custom_optimizer_settings_are_used(self, db):
        settings = OptimizerSettings(allow_bushy=False)
        result = reoptimize(db, make_ott_query(db, [0, 0, 0, 0, 1]), optimizer_settings=settings)
        assert JoinTree.of(result.final_plan).is_left_deep()
