"""Property-based tests for the theory module and the paper's theorems."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.ball_queue import (
    expected_steps,
    expected_steps_curve,
    simulate_procedure1,
    sqrt_bound_holds,
)
from repro.theory.special_cases import (
    overestimation_only_bound,
    underestimation_only_expected_steps,
)


class TestExpectedSteps:
    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            expected_steps(0)

    def test_small_cases_by_hand(self):
        # Equation 1 by hand: for N=1 the single summand is 1 * 1 * (1/1) = 1.
        assert expected_steps(1) == pytest.approx(1.0)
        # N=2: S_2 = 1 * 1 * (1/2) + 2 * (1 - 1/2) * (2/2) = 1.5.
        assert expected_steps(2) == pytest.approx(1.5)

    def test_monotone_in_n(self):
        values = [expected_steps(n) for n in range(1, 200, 10)]
        assert values == sorted(values)

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_theorem3_sqrt_bound(self, n):
        assert expected_steps(n) <= 2.0 * math.sqrt(n) + 1e-9

    @given(st.integers(min_value=4, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_lower_envelope(self, n):
        """Figure 3: S_N stays above sqrt(N) (for N beyond the first few points)."""
        assert expected_steps(n) >= math.sqrt(n) * 0.95

    def test_curve_matches_point_evaluations(self):
        curve = expected_steps_curve(max_n=50, step=7)
        for n, value in curve.items():
            assert value == pytest.approx(expected_steps(n))

    def test_sqrt_bound_helper(self):
        assert sqrt_bound_holds(max_n=300)

    def test_monte_carlo_agrees_with_closed_form(self):
        for n in (5, 20, 100):
            simulated = simulate_procedure1(n, trials=4000, seed=1)
            assert simulated == pytest.approx(expected_steps(n), rel=0.1)

    def test_simulation_invalid_n(self):
        with pytest.raises(ValueError):
            simulate_procedure1(0)


class TestSpecialCaseBounds:
    def test_overestimation_bound(self):
        assert overestimation_only_bound(0) == 1
        assert overestimation_only_bound(4) == 5
        with pytest.raises(ValueError):
            overestimation_only_bound(-1)

    def test_underestimation_bound_smaller_than_general(self):
        n, m = 1000, 10
        assert underestimation_only_expected_steps(n, m) < expected_steps(n)

    def test_underestimation_bound_paper_example(self):
        """The paper's example: N=1000, M=10 gives S_N ~ 39 but S_{N/M} ~ 12."""
        assert expected_steps(1000) == pytest.approx(39.0, abs=2.0)
        assert underestimation_only_expected_steps(1000, 10) == pytest.approx(12.0, abs=2.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            underestimation_only_expected_steps(0, 1)
        with pytest.raises(ValueError):
            underestimation_only_expected_steps(10, 0)

    @given(
        trees=st.integers(min_value=1, max_value=5000),
        edges=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_underestimation_bound_never_exceeds_general_case(self, trees, edges):
        assert underestimation_only_expected_steps(trees, edges) <= expected_steps(trees) + 1e-9
