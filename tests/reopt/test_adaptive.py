"""Mid-execution adaptive re-optimization: mechanics and bit-identity.

The load-bearing property: whatever the threshold, the number of re-plans or
the intermediates reused, adaptive execution returns *byte-identical* results
— including static mode (``replan_threshold=None``), which executes the
optimizer's original plan to completion.  For order-insensitive outputs
(``COUNT``/``MIN``/``MAX``) the result is additionally byte-identical to the
plain executor running the static plan; order-sensitive outputs (float
``SUM``/``AVG``) agree with the plain executor up to float accumulation
order, which the canonical row ordering makes plan-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.gamma import Gamma
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.plans.join_tree import plans_identical
from repro.relalg import DictEncodedArray
from repro.reopt.adaptive import (
    AdaptiveExecutor,
    AdaptiveSettings,
    deviation_factor,
    execute_adaptively,
    needs_canonical_order,
)
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query, make_ott_workload
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import make_tpch_workload
from repro.workloads.tpcds import generate_tpcds_database, make_tpcds_workload


def assert_relations_equal(left, right, exact: bool = True) -> None:
    """Compare two decoded result relations column by column."""
    assert set(left) == set(right)
    assert left.num_rows == right.num_rows
    for name in left:
        a, b = left[name], right[name]
        assert not isinstance(a, DictEncodedArray) and not isinstance(b, DictEncodedArray)
        a, b = np.asarray(a), np.asarray(b)
        if exact or a.dtype.kind not in "fc":
            assert a.dtype == b.dtype, name
            if a.dtype.kind in "fc":
                # NaN (empty-input SUM/AVG) must compare equal to itself.
                assert np.array_equal(a, b, equal_nan=True), name
            else:
                assert np.array_equal(a, b), name
        else:
            assert np.allclose(a, b, rtol=1e-9, equal_nan=True), name


def run_modes(db, query, optimizer=None, threshold=2.0):
    """Static plan via the plain executor, adaptive, and adaptive-static."""
    optimizer = optimizer if optimizer is not None else Optimizer(db)
    static_plan = optimizer.optimize(query)
    plain = Executor(db, cost_units=optimizer.settings.cost_units).execute_plan(
        static_plan, query
    )
    adaptive = AdaptiveExecutor(
        db, optimizer=optimizer, settings=AdaptiveSettings(replan_threshold=threshold)
    ).execute(query, plan=static_plan, gamma=Gamma())
    adaptive_static = AdaptiveExecutor(
        db, optimizer=optimizer, settings=AdaptiveSettings(replan_threshold=None)
    ).execute(query, plan=static_plan, gamma=Gamma())
    return static_plan, plain, adaptive, adaptive_static


class TestAdaptiveMechanics:
    def test_ott_explosion_triggers_replan_and_reuse(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_adaptive")
        result = execute_adaptively(ott_db, query)
        assert result.replans >= 1
        assert result.plan_switches >= 1
        assert result.intermediates_reused >= 1
        assert result.plan_changed
        # The replanned rounds carry the adaptive bookkeeping.
        adaptive_rounds = result.report.rounds[1:]
        assert adaptive_rounds
        for record in adaptive_rounds:
            assert record.trigger_join_set is not None
            assert record.plan_switched is not None
            assert record.exact_gamma_entries >= 1
        # The triggering checkpoints deviated by at least the threshold.
        triggers = [c for c in result.checkpoints if c.triggered_replan]
        assert triggers
        assert all(c.deviation >= 2.0 for c in triggers)

    def test_exact_gamma_entries_for_every_pipeline(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_gamma")
        result = execute_adaptively(ott_db, query)
        for checkpoint in result.checkpoints:
            assert result.gamma.is_exact(checkpoint.join_set)
            assert result.gamma.get(checkpoint.join_set) == checkpoint.actual_rows
        # Singletons (scan outputs) are recorded too.
        for alias in query.aliases:
            assert result.gamma.is_exact({alias})

    def test_static_mode_never_replans(self, ott_db, ott_query):
        settings = AdaptiveSettings(replan_threshold=None)
        result = AdaptiveExecutor(ott_db, settings=settings).execute(ott_query)
        assert result.replans == 0
        assert not result.plan_changed
        assert plans_identical(result.final_plan, result.original_plan)

    def test_max_replans_bounds_optimizer_invocations(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_capped")
        settings = AdaptiveSettings(replan_threshold=1.01, max_replans=1)
        result = AdaptiveExecutor(ott_db, settings=settings).execute(query)
        assert result.replans == 1
        assert result.report.num_plans_generated == 2

    def test_actual_cardinalities_cover_all_checkpoints(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_cards")
        result = execute_adaptively(ott_db, query)
        cards = result.actual_cardinalities()
        for checkpoint in result.checkpoints:
            assert cards[checkpoint.join_set] == checkpoint.actual_rows

    def test_deviation_factor(self):
        assert deviation_factor(100.0, 100) == 1.0
        assert deviation_factor(10.0, 1000) == 100.0
        assert deviation_factor(1000.0, 10) == 100.0
        # Sub-row estimates and empty results are floored, not infinite.
        assert deviation_factor(0.0, 0) == 1.0
        assert deviation_factor(0.001, 5) == 5.0

    def test_needs_canonical_order(self, ott_db):
        count_only = make_ott_query(ott_db, [0, 0, 0, 1], name="count_only")
        assert not needs_canonical_order(count_only)
        projection = (
            QueryBuilder("proj").table("r1").filter("r1", "a", "=", 0)
            .select("r1", "a").build()
        )
        assert needs_canonical_order(projection)

    def test_single_table_query(self, ott_db):
        query = (
            QueryBuilder("single").table("r1").filter("r1", "a", "=", 0)
            .aggregate("count", output_name="n").build()
        )
        result = execute_adaptively(ott_db, query)
        assert result.replans == 0
        plain = Executor(ott_db).execute(query)
        assert_relations_equal(result.execution.columns, plain.columns)
        assert result.gamma.is_exact({"r1"})

    def test_warm_sampled_gamma_is_upgraded_not_trusted(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_warm")
        gamma = Gamma()
        gamma.record({"r1", "r2"}, 3.0)  # a (wrong) sampled entry
        result = execute_adaptively(ott_db, query, gamma=gamma)
        if frozenset({"r1", "r2"}) in result.gamma.exact_join_sets():
            # Executed: the exact observation replaced the sampled guess.
            assert result.gamma.get({"r1", "r2"}) != 3.0


class TestBitIdentityOtt:
    """OTT output is COUNT-only: every mode must agree byte for byte."""

    def test_all_modes_bit_identical(self, ott_db):
        for query in make_ott_workload(ott_db, num_tables=4, num_queries=4, seed=3):
            _, plain, adaptive, adaptive_static = run_modes(ott_db, query)
            assert_relations_equal(adaptive.execution.columns, adaptive_static.execution.columns)
            assert_relations_equal(adaptive.execution.columns, plain.columns)
            assert adaptive.execution.num_rows == plain.num_rows

    def test_tight_threshold_still_bit_identical(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="ott_tight")
        _, plain, adaptive, _ = run_modes(ott_db, query, threshold=1.01)
        assert adaptive.replans >= 1
        assert_relations_equal(adaptive.execution.columns, plain.columns)


class TestBitIdentityTpch:
    """TPC-H queries mix float SUM/AVG aggregates with joins."""

    @pytest.fixture(scope="class")
    def tpch_db(self):
        return generate_tpch_database(
            scale_factor=0.002, zipf_z=1.0, seed=3, create_samples=False
        )

    @pytest.fixture(scope="class")
    def tpch_queries(self, tpch_db):
        workload = make_tpch_workload(tpch_db, numbers=[3, 5, 10, 14], seed=3)
        return [instances[0] for instances in workload.values()]

    def test_adaptive_matches_adaptive_static_exactly(self, tpch_db, tpch_queries):
        for query in tpch_queries:
            _, plain, adaptive, adaptive_static = run_modes(
                tpch_db, query, threshold=1.05
            )
            # The guarantee: byte-identical across adaptive modes, whatever
            # join order the re-plans picked.
            assert_relations_equal(
                adaptive.execution.columns, adaptive_static.execution.columns
            )
            # Against the plain executor: identical rows and non-float
            # columns; float aggregates agree up to accumulation order.
            assert_relations_equal(adaptive.execution.columns, plain.columns, exact=False)

    def test_some_query_actually_replans(self, tpch_db, tpch_queries):
        replans = 0
        for query in tpch_queries:
            result = AdaptiveExecutor(
                tpch_db, settings=AdaptiveSettings(replan_threshold=1.05)
            ).execute(query)
            replans += result.replans
        assert replans >= 1, "expected the skewed TPC-H instances to deviate somewhere"


class TestBitIdentityTpcds:
    @pytest.fixture(scope="class")
    def tpcds_db(self):
        return generate_tpcds_database(scale=0.05, seed=2, create_samples=False)

    def test_adaptive_matches_adaptive_static_exactly(self, tpcds_db):
        queries = [q for q in make_tpcds_workload(tpcds_db, seed=2) if q.num_joins >= 2]
        for query in queries[:4]:
            _, plain, adaptive, adaptive_static = run_modes(
                tpcds_db, query, threshold=1.05
            )
            assert_relations_equal(
                adaptive.execution.columns, adaptive_static.execution.columns
            )
            assert_relations_equal(adaptive.execution.columns, plain.columns, exact=False)


class TestEstimatorExtrapolation:
    def test_exact_anchor_extrapolates_to_supersets(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="ott_extrapolate")
        gamma = Gamma()
        plain = CardinalityEstimator(ott_db, query, gamma=Gamma())
        baseline = plain.joinset_cardinality({"r1", "r2", "r3"})

        gamma.record_exact({"r1", "r2"}, 5000.0)
        anchored = CardinalityEstimator(ott_db, query, gamma=gamma)
        estimate = anchored.joinset_cardinality({"r1", "r2", "r3"})
        # anchored = 5000 * base(r3) * sel(r2.b = r3.b) — far above the AVI
        # product that multiplied the r1⋈r2 mis-estimate in.
        expected = (
            5000.0
            * anchored.base_cardinality("r3")
            * anchored.join_predicate_selectivity(query.join_predicates[1])
        )
        assert estimate == pytest.approx(expected)
        assert estimate > baseline

    def test_sampled_entries_do_not_extrapolate(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="ott_sampled")
        gamma = Gamma()
        gamma.record({"r1", "r2"}, 5000.0)  # sampled: exact-set override only
        estimator = CardinalityEstimator(ott_db, query, gamma=gamma)
        baseline = CardinalityEstimator(ott_db, query, gamma=Gamma())
        assert estimator.joinset_cardinality({"r1", "r2"}) == 5000.0
        assert estimator.joinset_cardinality({"r1", "r2", "r3"}) == pytest.approx(
            baseline.joinset_cardinality({"r1", "r2", "r3"})
        )

    def test_disjoint_anchor_and_exact_rest(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="ott_two_anchors")
        gamma = Gamma()
        gamma.record_exact({"r1", "r2"}, 700.0)
        gamma.record_exact({"r3", "r4"}, 900.0)
        estimator = CardinalityEstimator(ott_db, query, gamma=gamma)
        estimate = estimator.joinset_cardinality({"r1", "r2", "r3", "r4"})
        expected = (
            700.0 * 900.0
            * estimator.join_predicate_selectivity(query.join_predicates[1])
        )
        assert estimate == pytest.approx(expected)
