"""Tests for the incremental re-optimization engine.

Covers the three invariants of the engine:

* cross-round DP reuse — rounds after the first re-expand only Γ-dirtied
  masks (a small fraction of the ``2^K`` subsets);
* bit-identical results — incremental re-planning returns exactly the plan a
  from-scratch search under the same Γ would return;
* convergence bugfixes — an A→B→A oscillation terminates via the
  plan-seen-before check, and a covered plan (zero new Γ entries)
  terminates via the paper's coverage rule.
"""

import pytest

from repro.cardinality.gamma import Gamma
from repro.cost.model import CostModel
from repro.optimizer.dp import DynamicProgrammingPlanner
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import plans_identical
from repro.plans.nodes import JoinMethod, JoinNode
from repro.reopt.algorithm import ReoptimizationSettings, Reoptimizer, reoptimize
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query


@pytest.fixture(scope="module")
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=2500, rows_per_value=40, seed=13, sampling_ratio=0.2
    )


def _fresh_planner(db, query, gamma=None, settings=None):
    settings = settings if settings is not None else OptimizerSettings()
    optimizer = Optimizer(db, settings)
    estimator = optimizer.make_estimator(query, gamma)
    return DynamicProgrammingPlanner(
        db, query, estimator, CostModel(units=settings.cost_units), settings
    )


class TestIncrementalDP:
    def test_replan_identical_to_from_scratch(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        optimizer = Optimizer(db)

        planner = _fresh_planner(db, query)
        planner.plan_joins()
        full_masks = planner.last_masks_expanded
        assert full_masks == 2 ** 5 - 1  # every mask, scans included

        gamma = Gamma()
        gamma.record({"r4", "r5"}, 0.0)
        replanned = planner.replan(
            optimizer.make_estimator(query, gamma), gamma.changed_since(0)
        )
        scratch = _fresh_planner(db, query, gamma)
        assert plans_identical(replanned, scratch.plan_joins())
        # Only supersets of {r4, r5} are dirty: 2^3 = 8 masks.
        assert planner.last_masks_expanded == 8
        assert planner.last_masks_expanded < full_masks

    def test_replan_with_singleton_dirty_set_rebuilds_scan(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        optimizer = Optimizer(db)
        planner = _fresh_planner(db, query)
        planner.plan_joins()

        gamma = Gamma()
        gamma.record({"r1"}, 2.0)
        replanned = planner.replan(
            optimizer.make_estimator(query, gamma), gamma.changed_since(0)
        )
        scratch = _fresh_planner(db, query, gamma)
        assert plans_identical(replanned, scratch.plan_joins())
        # Supersets of {r1}: the scan itself plus 2^4 - 1 join masks.
        assert planner.last_masks_expanded == 16

    def test_replan_with_no_changes_expands_nothing(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        optimizer = Optimizer(db)
        planner = _fresh_planner(db, query)
        baseline = planner.plan_joins()
        replanned = planner.replan(optimizer.make_estimator(query), frozenset())
        assert plans_identical(baseline, replanned)
        assert planner.last_masks_expanded == 0

    def test_replan_ignores_foreign_join_sets(self, db):
        query = make_ott_query(db, [0, 0, 0])
        optimizer = Optimizer(db)
        planner = _fresh_planner(db, query)
        baseline = planner.plan_joins()
        gamma = Gamma()
        gamma.record({"r4", "r5"}, 0.0)  # relations outside this query
        replanned = planner.replan(
            optimizer.make_estimator(query, gamma), gamma.changed_since(0)
        )
        assert plans_identical(baseline, replanned)
        assert planner.last_masks_expanded == 0


class TestSessionInsideAlgorithm1:
    def test_later_rounds_expand_fewer_masks(self, db):
        result = reoptimize(db, make_ott_query(db, [0, 0, 0, 0, 1]))
        masks = [r.dp_masks_expanded for r in result.report.rounds]
        assert masks[0] == 2 ** 5 - 1
        assert len(masks) >= 2
        for later in masks[1:]:
            assert later < masks[0]

    def test_final_plan_matches_from_scratch_optimize(self, db):
        for constants in ([0, 0, 0, 0, 1], [1, 0, 0, 0, 0], [0, 0, 1, 0, 0]):
            query = make_ott_query(db, constants)
            result = reoptimize(db, query)
            scratch = Optimizer(db).optimize(query, result.gamma)
            assert plans_identical(result.final_plan, scratch)

    def test_every_round_plan_matches_scratch_replay(self, db):
        """Replaying Γ growth through a fresh optimizer reproduces each round."""
        from repro.cardinality.sampling_estimator import SamplingEstimator

        query = make_ott_query(db, [0, 1, 0, 0, 0])
        result = reoptimize(db, query)
        sampler = SamplingEstimator(db, query)
        replay_gamma = Gamma()
        for record in result.report.rounds:
            scratch = Optimizer(db).optimize(query, replay_gamma)
            assert plans_identical(record.plan, scratch)
            replay_gamma.merge(sampler.validate_plan(record.plan).cardinalities)


class TestConvergenceFixes:
    @staticmethod
    def _scripted_reoptimizer(db, plans, max_rounds=8):
        """A Reoptimizer whose optimizer replays ``plans`` (cycling)."""

        class _ScriptedSession:
            def __init__(self, script):
                self._script = script
                self._calls = 0
                self.last_masks_expanded = None

            def optimize(self, gamma=None):
                plan = self._script[self._calls % len(self._script)]
                self._calls += 1
                return plan

        class _ScriptedOptimizer(Optimizer):
            def __init__(self, database, script):
                super().__init__(database)
                self._script = script

            def planning_session(self, query):
                return _ScriptedSession(self._script)

        return Reoptimizer(
            db,
            optimizer=_ScriptedOptimizer(db, plans),
            settings=ReoptimizationSettings(max_rounds=max_rounds),
        )

    @staticmethod
    def _chain_query(name="chain3"):
        builder = QueryBuilder(name)
        for index in range(1, 4):
            builder.table(f"r{index}")
        builder.join("r1", "b", "r2", "b")
        builder.join("r2", "b", "r3", "b")
        return builder.build()

    def test_oscillation_terminates_by_plan_identity(self, db):
        """A→B→A must stop at round 3: plan A was already validated in round 1.

        The old loop compared only against the previous round's plan, so an
        oscillating estimator re-validated covered plans until max_rounds.
        """
        query = self._chain_query()
        plan_a = Optimizer(db).optimize(query)
        force = Gamma()
        # Make the pair used first in plan A look enormous so the optimizer
        # produces a structurally different plan B.
        first_join = min(plan_a.join_nodes(), key=lambda node: len(node.relations))
        force.record(first_join.relations, 1e9)
        plan_b = Optimizer(db).optimize(query, force)
        assert not plans_identical(plan_a, plan_b)
        from repro.plans.join_tree import JoinTree

        # The oscillation must be between *globally* different plans, so
        # that round 2 genuinely grows Γ (otherwise the coverage rule — a
        # different, correct exit — fires first).
        assert JoinTree.of(plan_a).join_set != JoinTree.of(plan_b).join_set

        reoptimizer = self._scripted_reoptimizer(db, [plan_a, plan_b])
        result = reoptimizer.reoptimize(query)
        assert result.converged
        assert result.rounds == 3
        assert plans_identical(result.final_plan, plan_a)

    def test_covered_plan_terminates_by_zero_new_entries(self, db):
        """A commuted (local-transformation) plan adds no Γ entries → stop.

        The plans are not identical, so the identity check alone would keep
        looping; the paper's coverage rule ends the loop at round 2.
        """
        query = self._chain_query()
        plan_a = Optimizer(db).optimize(query)
        top = plan_a
        assert isinstance(top, JoinNode)
        plan_b = JoinNode(
            relations=top.relations,
            estimated_rows=top.estimated_rows,
            estimated_cost=top.estimated_cost * 1.01,
            left=top.right,
            right=top.left,
            method=JoinMethod.NESTED_LOOP,
            predicates=top.predicates,
        )
        assert not plans_identical(plan_a, plan_b)

        reoptimizer = self._scripted_reoptimizer(db, [plan_a, plan_b])
        result = reoptimizer.reoptimize(query)
        assert result.converged
        assert result.rounds == 2
        assert result.report.rounds[-1].new_gamma_entries == 0
