"""The workload driver on the shared morsel scheduler.

PR-2's driver parallelised only *across* queries (one thread per query);
the morsel-driven driver submits every query's kernel work as morsel tasks
into one shared :class:`~repro.relalg.TaskScheduler`, so the worker pool is
a single parallelism budget with per-query accounting, and the driver's
plan-cache hit/miss counters plus the scheduler queue depth surface in the
round records.
"""

from __future__ import annotations

import pytest

import repro.relalg.joins as joins_module
from repro.plans.join_tree import plans_identical
from repro.relalg import TaskScheduler
from repro.reopt.algorithm import Reoptimizer
from repro.reopt.driver import DriverSettings, WorkloadDriver
from repro.workloads.ott import generate_ott_database, make_ott_query, make_ott_workload


@pytest.fixture(autouse=True)
def multicore_host(monkeypatch):
    """The driver sizes its pool from the host, and schedulers built without
    an explicit backend degrade to inline serial on single-core hosts — this
    file tests the pool itself, so pretend the host has cores to use."""
    monkeypatch.setattr("repro.relalg.scheduler.os.cpu_count", lambda: 8)


@pytest.fixture
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=1200, rows_per_value=30, seed=17, sampling_ratio=0.3
    )


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setattr(joins_module, "_MIN_PARALLEL_JOIN_ROWS", 0)


class TestSharedScheduler:
    def test_driver_owns_a_scheduler_sized_by_max_workers(self, db):
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=3))
        assert driver.scheduler.workers == 3
        driver.shutdown()

    def test_single_query_uses_the_pool(self, db, force_parallel):
        """A lone heavy query fans its morsel tasks across the shared pool —
        the configuration thread-per-query concurrency left on one core."""
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=4))
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        [result] = driver.run([query])
        stats = driver.scheduler_stats()
        assert stats.tasks_submitted > 0, "no morsel tasks reached the shared pool"
        per_query = driver.query_task_stats(query.name)
        assert per_query.tasks > 0
        assert per_query.busy_seconds >= 0.0
        # Serial reference: bit-identical plans.
        serial = Reoptimizer(db).reoptimize(query)
        assert plans_identical(result.final_plan, serial.final_plan)
        driver.shutdown()

    def test_per_query_accounting_covers_the_batch(self, db, force_parallel):
        driver = WorkloadDriver(
            db, settings=DriverSettings(max_workers=2, use_plan_cache=False, share_gamma=False)
        )
        queries = make_ott_workload(db, num_tables=5, num_queries=3, num_matching=4, seed=2)
        driver.run(queries)
        accounted = [name for name in {q.name for q in queries}
                     if driver.query_task_stats(name).tasks > 0]
        assert accounted, "expected morsel tasks attributed to at least one query"
        driver.shutdown()

    def test_external_scheduler_is_shared_not_replaced(self, db):
        with TaskScheduler(workers=2, name="external") as scheduler:
            driver = WorkloadDriver(
                db, settings=DriverSettings(max_workers=4), scheduler=scheduler
            )
            assert driver.scheduler is scheduler


class TestRoundRecordCounters:
    def test_plan_cache_counters_in_round_records(self, db):
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=1))
        query = make_ott_query(db, [0, 0, 0, 0, 0], name="dup")
        first, second = driver.run([query, query])
        assert driver.stats.plan_cache_misses >= 1
        assert driver.stats.plan_cache_hits >= 1
        for record in first.report.rounds:
            assert record.plan_cache_misses is not None
        # The duplicate's records carry the counters at *its* completion,
        # without mutating the cached result's own records.
        hits_on_dup = {record.plan_cache_hits for record in second.report.rounds}
        assert hits_on_dup == {driver.stats.plan_cache_hits}
        hits_on_first = {record.plan_cache_hits for record in first.report.rounds}
        assert hits_on_first == {0}
        assert "plan_cache_hits" in second.report.summary()
        driver.shutdown()

    def test_scheduler_queue_depth_recorded_with_parallel_scheduler(self, db, force_parallel):
        driver = WorkloadDriver(db, settings=DriverSettings(max_workers=4))
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        [result] = driver.run([query])
        validated_rounds = [
            record for record in result.report.rounds if record.sampling_seconds > 0
        ]
        assert validated_rounds
        for record in validated_rounds:
            assert record.scheduler_queue_depth is not None
            assert record.scheduler_queue_depth >= 0
        assert result.report.max_scheduler_queue_depth() is not None
        driver.shutdown()

    def test_serial_reoptimizer_leaves_counters_none(self, db):
        result = Reoptimizer(db).reoptimize(make_ott_query(db, [0, 0, 0, 0, 0]))
        for record in result.report.rounds:
            assert record.scheduler_queue_depth is None
            assert record.plan_cache_hits is None
        assert result.report.max_scheduler_queue_depth() is None


class TestParallelSerialEquivalence:
    def test_batch_results_identical_to_serial(self, db, force_parallel):
        queries = make_ott_workload(db, num_tables=5, num_queries=4, num_matching=4, seed=5)
        serial_reopt = Reoptimizer(db)
        serial = [serial_reopt.reoptimize(query) for query in queries]
        driver = WorkloadDriver(
            db, settings=DriverSettings(max_workers=4, use_plan_cache=False, share_gamma=False)
        )
        batched = driver.run(queries)
        for serial_result, batched_result in zip(serial, batched):
            assert plans_identical(serial_result.final_plan, batched_result.final_plan)
            assert serial_result.rounds == batched_result.rounds
        driver.shutdown()
