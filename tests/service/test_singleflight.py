"""Singleflight coalescing: leaders, followers, and crashed leaders.

The coalescing layer (``QueryService._serve_coalesced``) keeps a thundering
herd of identical requests at one execution.  These tests pin the contract:
exactly one leader executes, followers ride its flight, and a leader that
*fails* — planning bug, execution error, shed by admission — must release
its followers to retry rather than strand them on a dead event or poison
them with its error.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import BackpressureError, QueryService
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database


@pytest.fixture(scope="module")
def singleflight_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=2000, rows_per_value=40, seed=11, sampling_ratio=0.25
    )


def ott_template(name="sf_tpl"):
    return (
        QueryBuilder(name)
        .table("r1").table("r2").table("r3")
        .filter_param("r1", "a", "=")
        .filter_param("r2", "a", "=")
        .filter_param("r3", "a", "=")
        .join("r1", "b", "r2", "b")
        .join("r2", "b", "r3", "b")
        .aggregate("count", output_name="n")
        .build()
    )


def _run_concurrently(service, prepared, count, results, errors, barrier=None):
    """Start ``count`` identical executions; return the (started) threads."""

    def run():
        if barrier is not None:
            barrier.wait(timeout=10)
        try:
            results.append(service.execute(prepared, [0, 0, 0]))
        except Exception as error:  # noqa: BLE001 - collected for assertions
            errors.append(error)

    threads = [threading.Thread(target=run) for _ in range(count)]
    for thread in threads:
        thread.start()
    return threads


class TestCoalescing:
    def test_followers_ride_the_leaders_flight(self, singleflight_db):
        with QueryService(singleflight_db) as service:
            prepared = service.prepare(ott_template())
            leader_entered = threading.Event()
            release_leader = threading.Event()
            original_serve = service._serve

            def slow_serve(*args, **kwargs):
                leader_entered.set()
                assert release_leader.wait(timeout=10)
                return original_serve(*args, **kwargs)

            service._serve = slow_serve
            results, errors = [], []
            leader_thread = _run_concurrently(service, prepared, 1, results, errors)
            assert leader_entered.wait(timeout=10)
            follower_threads = _run_concurrently(service, prepared, 3, results, errors)
            # Give the followers time to park on the in-flight event before
            # the leader publishes; a follower that arrives late would be a
            # plain result-cache hit, which the source tally below rejects.
            deadline = threading.Event()
            deadline.wait(timeout=0.25)
            release_leader.set()
            for thread in leader_thread + follower_threads:
                thread.join(timeout=10)

            assert not errors
            assert len(results) == 4
            sources = sorted(result.source for result in results)
            assert sources == ["coalesced", "coalesced", "coalesced", "fresh"]
            assert service.stats.fresh_plans == 1
            assert service.stats.coalesced == 3
            rows = {int(result.execution.columns["n"][0]) for result in results}
            assert len(rows) == 1  # all four read the same published rows
            # Every coalesced response still carries a trace with its wait.
            for result in results:
                assert result.trace is not None
                if result.source == "coalesced":
                    assert result.trace.queue_wait_s > 0.0

    def test_crashed_leader_releases_followers_to_rerun(self, singleflight_db):
        """A leader that raises mid-serve must not strand or poison followers.

        The followers wake from the dead flight, find no published result,
        and retry from the top — one becomes the next leader and serves the
        rest.  Only the crashed leader sees the error."""
        with QueryService(singleflight_db) as service:
            prepared = service.prepare(ott_template())
            leader_entered = threading.Event()
            crash_leader = threading.Event()
            original_serve = service._serve
            crashes = []

            def crashing_serve(*args, **kwargs):
                if not crashes:
                    crashes.append(True)
                    leader_entered.set()
                    assert crash_leader.wait(timeout=10)
                    raise RuntimeError("leader died mid-execution")
                return original_serve(*args, **kwargs)

            service._serve = crashing_serve
            results, errors = [], []
            leader_thread = _run_concurrently(service, prepared, 1, results, errors)
            assert leader_entered.wait(timeout=10)
            follower_threads = _run_concurrently(service, prepared, 3, results, errors)
            parked = threading.Event()
            parked.wait(timeout=0.25)
            crash_leader.set()
            for thread in leader_thread + follower_threads:
                thread.join(timeout=10)
                assert not thread.is_alive()  # nobody stranded on the event

            # Exactly the leader failed, with its own error — not a
            # BackpressureError, and not propagated to any follower.
            assert len(errors) == 1
            assert isinstance(errors[0], RuntimeError)
            assert "leader died" in str(errors[0])
            assert len(results) == 3
            rows = {int(result.execution.columns["n"][0]) for result in results}
            assert len(rows) == 1
            # The flight table is clean: no dead event left registered.
            assert service._in_flight == {}

    def test_leader_shed_by_admission_releases_followers(self, singleflight_db):
        """Backpressure on the leader is a leader failure like any other."""
        with QueryService(singleflight_db) as service:
            prepared = service.prepare(ott_template())
            leader_entered = threading.Event()
            shed_leader = threading.Event()
            sheds = []
            original_acquire = service.admission.acquire

            def shedding_acquire(client="default", timeout=None):
                if not sheds:
                    sheds.append(True)
                    leader_entered.set()
                    assert shed_leader.wait(timeout=10)
                    raise BackpressureError("synthetic shed", kind="shed")
                return original_acquire(client, timeout=timeout)

            service.admission.acquire = shedding_acquire
            results, errors = [], []
            leader_thread = _run_concurrently(service, prepared, 1, results, errors)
            assert leader_entered.wait(timeout=10)
            follower_threads = _run_concurrently(service, prepared, 2, results, errors)
            parked = threading.Event()
            parked.wait(timeout=0.25)
            shed_leader.set()
            for thread in leader_thread + follower_threads:
                thread.join(timeout=10)
                assert not thread.is_alive()

            assert len(errors) == 1
            assert isinstance(errors[0], BackpressureError)
            assert errors[0].kind == "shed"
            assert len(results) == 2
            assert service._in_flight == {}
            # The shed leader's trace-side accounting happened in execute():
            # the service counted exactly one rejection.
            assert service.stats.rejected == 1

    def test_sequential_requests_do_not_coalesce(self, singleflight_db):
        """Coalescing only merges *concurrent* identical requests."""
        with QueryService(singleflight_db) as service:
            prepared = service.prepare(ott_template())
            first = service.execute(prepared, [0, 0, 0])
            second = service.execute(prepared, [0, 0, 0])
            assert first.source == "fresh"
            assert second.source == "result_cache"
            assert service.stats.coalesced == 0
            assert np.array_equal(
                first.execution.columns["n"], second.execution.columns["n"]
            )
