"""QueryService: serving layers, drift guard, epochs, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plans.join_tree import plans_identical
from repro.relalg import TaskScheduler
from repro.service import BackpressureError, QueryService, ServiceSettings
from repro.sql.builder import QueryBuilder
from repro.storage.table import Column, Table, TableSchema
from repro.workloads.ott import generate_ott_database


@pytest.fixture(scope="module")
def service_ott_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=2000, rows_per_value=40, seed=11, sampling_ratio=0.25
    )


def ott_template(name="ott_tpl"):
    return (
        QueryBuilder(name)
        .table("r1").table("r2").table("r3")
        .filter_param("r1", "a", "=")
        .filter_param("r2", "a", "=")
        .filter_param("r3", "a", "=")
        .join("r1", "b", "r2", "b")
        .join("r2", "b", "r3", "b")
        .aggregate("count", output_name="n")
        .build()
    )


class TestServingLayers:
    def test_source_lifecycle(self, service_ott_db):
        with QueryService(service_ott_db) as service:
            prepared = service.prepare(ott_template())
            first = service.execute(prepared, [0, 0, 0])
            assert first.source == "fresh"
            repeat = service.execute(prepared, [0, 0, 0])
            assert repeat.source == "result_cache"
            assert repeat.num_rows == first.num_rows
            same_template = service.execute(prepared, [2, 2, 2])
            assert same_template.source in ("validated_reuse", "replan")
            assert service.stats.queries == 3
            assert service.stats.fresh_plans == 1
            assert service.stats.result_cache_hits == 1

    def test_result_cache_distinguishes_bindings(self, service_ott_db):
        with QueryService(service_ott_db) as service:
            prepared = service.prepare(ott_template())
            equal = service.execute(prepared, [0, 0, 0])
            different = service.execute(prepared, [0, 0, 3])
            assert equal.execution.columns["n"][0] > 0
            assert different.execution.columns["n"][0] == 0

    def test_raw_sql_and_builder_share_plan_cache(self, service_ott_db):
        with QueryService(service_ott_db) as service:
            service.execute(ott_template(), [0, 0, 0])
            sql = (
                "SELECT count(*) AS n FROM r1, r2, r3 "
                "WHERE r1.a = ? AND r2.a = ? AND r3.a = ? "
                "AND r1.b = r2.b AND r2.b = r3.b"
            )
            result = service.execute(sql, [0, 0, 0])
            assert result.source == "result_cache"
            assert service.plan_cache_size() == 1

    def test_plan_cache_disabled_plans_every_time(self, service_ott_db):
        settings = ServiceSettings(use_plan_cache=False, use_result_cache=False)
        with QueryService(service_ott_db, settings=settings) as service:
            prepared = service.prepare(ott_template())
            assert service.execute(prepared, [0, 0, 0]).source == "fresh"
            assert service.execute(prepared, [0, 0, 0]).source == "fresh"
            assert service.stats.fresh_plans == 2


class TestDriftGuard:
    def test_drift_injection_rejects_stale_plan(self, service_ott_db):
        """The paper's validator as a plan-cache guard: a binding whose
        sampled cardinalities collapse must evict the cached plan, while the
        unguarded cache would have executed it blindly."""
        guarded = QueryService(service_ott_db)
        prepared = guarded.prepare(ott_template())
        warm = guarded.execute(prepared, [0, 0, 0])
        assert warm.source == "fresh"
        cached_plan = guarded._plan_cache[prepared.fingerprint].plan

        # Drift injection: same template, but the third constant differs, so
        # the join result is empty — orders of magnitude off the cached
        # plan's Γ expectations.
        drifted = guarded.execute(prepared, [0, 0, 1])
        assert drifted.source == "replan"
        assert drifted.drift is not None and drifted.drift > guarded.settings.drift_threshold
        assert guarded.stats.drift_replans == 1
        guarded.close()

        # The unguarded cache executes the stale plan without noticing.
        unguarded = QueryService(
            service_ott_db,
            settings=ServiceSettings(validate_cached_plans=False, use_result_cache=False),
        )
        unguarded.execute(prepared, [0, 0, 0])
        stale = unguarded.execute(prepared, [0, 0, 1])
        assert stale.source == "reuse"
        cached = unguarded._plan_cache[prepared.fingerprint].plan
        # Unguarded reuse keeps the stale join structure (rebound constants).
        assert [n.relations for n in stale.plan.join_nodes()] == [
            n.relations for n in cached.join_nodes()
        ]
        assert unguarded.stats.unguarded_reuses == 1
        unguarded.close()

        # Both answer correctly (any plan is correct); the guard is about
        # not *executing through* a plan whose cardinality assumptions broke.
        assert drifted.execution.columns["n"][0] == stale.execution.columns["n"][0] == 0
        assert not plans_identical(drifted.plan, cached_plan) or drifted.source == "replan"

    def test_validated_reuse_skips_planning(self, service_ott_db):
        service = QueryService(
            service_ott_db, settings=ServiceSettings(drift_threshold=1e9)
        )
        prepared = service.prepare(ott_template())
        service.execute(prepared, [0, 0, 0])
        reused = service.execute(prepared, [4, 4, 4])
        assert reused.source == "validated_reuse"
        assert reused.planning_seconds == 0.0
        assert reused.validation_seconds >= 0.0
        entry = service._plan_cache[prepared.fingerprint]
        assert entry.validations == 1 and entry.reuses == 1
        service.close()


class TestEpochInvalidation:
    def _tiny_db(self):
        db = generate_ott_database(
            num_tables=3, rows_per_table=600, rows_per_value=30, seed=3, sampling_ratio=0.3
        )
        return db

    def test_epoch_bump_invalidates_result_cache(self):
        db = self._tiny_db()
        with QueryService(db) as service:
            template = (
                QueryBuilder("single")
                .table("r1")
                .filter_param("r1", "a", "=")
                .aggregate("count", output_name="n")
                .build()
            )
            first = service.execute(template, [0])
            assert service.execute(template, [0]).source == "result_cache"

            # Replace r1 with a table holding twice the rows for value 0.
            old = db.table("r1")
            doubled = np.concatenate([old.column("a"), np.zeros(50, dtype=np.int64)])
            db.create_table(
                Table(
                    TableSchema("r1", (Column("a", "int"), Column("b", "int"))),
                    {"a": doubled, "b": doubled.copy()},
                ),
                replace=True,
            )
            db.create_index("r1", "a")
            db.analyze(["r1"])
            db.create_samples(ratio=0.3, seed=9)

            refreshed = service.execute(template, [0])
            assert refreshed.source != "result_cache"
            assert refreshed.execution.columns["n"][0] == first.execution.columns["n"][0] + 50

    def test_invalidate_table_sweeps_and_bumps(self):
        db = self._tiny_db()
        with QueryService(db) as service:
            template = (
                QueryBuilder("single")
                .table("r1")
                .filter_param("r1", "a", "=")
                .aggregate("count", output_name="n")
                .build()
            )
            service.execute(template, [0])
            service.execute(template, [1])
            assert len(service.result_cache) == 2
            swept = service.invalidate_table("r1")
            assert swept == 2
            assert len(service.result_cache) == 0
            assert service.execute(template, [0]).source != "result_cache"

    def test_cached_template_survives_table_replace(self):
        """Replacing a table drops db.samples; the next execution of a cached
        template must recreate them (and see the new data), not raise
        SamplingError."""
        db = self._tiny_db()
        with QueryService(db) as service:
            template = (
                QueryBuilder("joined")
                .table("r1").table("r2")
                .filter_param("r1", "a", "=")
                .filter_param("r2", "a", "=")
                .join("r1", "b", "r2", "b")
                .aggregate("count", output_name="n")
                .build()
            )
            before = service.execute(template, [0, 0])
            old = db.table("r1")
            extra = np.zeros(40, dtype=np.int64)
            grown = np.concatenate([old.column("a"), extra])
            db.create_table(
                Table(
                    TableSchema("r1", (Column("a", "int"), Column("b", "int"))),
                    {"a": grown, "b": grown.copy()},
                ),
                replace=True,
            )
            db.create_index("r1", "a")
            db.analyze(["r1"])
            assert db.samples is None
            after = service.execute(template, [0, 0])
            assert after.source != "result_cache"
            assert db.samples is not None
            assert after.execution.columns["n"][0] > before.execution.columns["n"][0]

    def test_plan_cache_is_lru_bounded(self):
        db = self._tiny_db()
        settings = ServiceSettings(plan_cache_entries=2, use_result_cache=False)
        with QueryService(db, settings=settings) as service:
            for value in range(4):
                query = (
                    QueryBuilder(f"adhoc{value}")
                    .table("r1")
                    .filter("r1", "a", "=", value)  # constant-only: one template each
                    .aggregate("count", output_name="n")
                    .build()
                )
                service.execute(query)
            assert service.plan_cache_size() == 2
            assert len(service._template_locks) == 2

    def test_epoch_snapshot_tracks_changes(self):
        db = self._tiny_db()
        before = db.epoch_snapshot(["r1", "r2"])
        db.bump_table_epoch("r1")
        after = db.epoch_snapshot(["r1", "r2"])
        assert before != after
        assert db.epoch_snapshot(["r2"]) == tuple(
            (name, epoch) for name, epoch in after if name == "r2"
        )


class TestBackpressureAndLifecycle:
    def test_backpressure_counts_rejections(self, service_ott_db):
        settings = ServiceSettings(max_concurrent=1, max_queued=0)
        with QueryService(service_ott_db, settings=settings) as service:
            service.admission.acquire("hog")  # occupy the only slot
            with pytest.raises(BackpressureError):
                service.execute(ott_template(), [0, 0, 0], client="victim")
            service.admission.release()
            assert service.stats.rejected == 1
            assert service.admission_stats().rejected == 1
            ok = service.execute(ott_template(), [0, 0, 0], client="victim")
            assert ok.source == "fresh"

    def test_service_closes_owned_scheduler(self, service_ott_db):
        service = QueryService(
            service_ott_db, settings=ServiceSettings(workers=2)
        )
        service.execute(ott_template(), [0, 0, 0])
        service.close()
        assert service.scheduler.closed

    def test_execute_after_close_raises(self, service_ott_db):
        service = QueryService(service_ott_db)
        service.execute(ott_template(), [0, 0, 0])
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.execute(ott_template(), [0, 0, 0])

    def test_shared_scheduler_survives_service_close(self, service_ott_db):
        with TaskScheduler(workers=2, name="shared") as scheduler:
            service = QueryService(service_ott_db, scheduler=scheduler)
            service.execute(ott_template(), [0, 0, 0])
            service.close()
            assert not scheduler.closed
            assert scheduler.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
