"""Per-request traces: stage accounting across every serving path."""

from __future__ import annotations

import pytest

from repro.service import (
    BackpressureError,
    QueryService,
    RequestTrace,
    STAGE_FIELDS,
    ServiceSettings,
    ShardedQueryService,
    ShardingSpec,
)
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database


@pytest.fixture(scope="module")
def tracing_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=2000, rows_per_value=40, seed=11, sampling_ratio=0.25
    )


def ott_template(name="trace_tpl"):
    return (
        QueryBuilder(name)
        .table("r1").table("r2").table("r3")
        .filter_param("r1", "a", "=")
        .filter_param("r2", "a", "=")
        .filter_param("r3", "a", "=")
        .join("r1", "b", "r2", "b")
        .join("r2", "b", "r3", "b")
        .aggregate("count", output_name="n")
        .build()
    )


class TestRequestTrace:
    def test_stage_seconds_covers_every_stage_field(self):
        trace = RequestTrace(
            queue_wait_s=0.1, validation_s=0.2, planning_s=0.3,
            execution_s=0.4, merge_s=0.5, total_s=2.0,
        )
        stages = trace.stage_seconds()
        assert set(stages) == set(STAGE_FIELDS)
        assert stages["execution_s"] == pytest.approx(0.4)
        assert trace.accounted_s == pytest.approx(1.5)
        assert trace.overhead_s == pytest.approx(0.5)

    def test_overhead_never_negative(self):
        trace = RequestTrace(execution_s=1.0, total_s=0.5)
        assert trace.overhead_s == 0.0


class TestServiceTracing:
    def test_fresh_request_accounts_planning_and_execution(self, tracing_db):
        with QueryService(tracing_db) as service:
            result = service.execute(ott_template(), [0, 0, 0], client="alice")
            trace = result.trace
            assert trace is not None
            assert trace.client == "alice"
            assert trace.template == "trace_tpl"
            assert trace.source == "fresh"
            assert trace.outcome == "ok"
            assert trace.planning_s > 0.0
            assert trace.execution_s > 0.0
            assert trace.total_s >= trace.execution_s
            assert trace.total_s == pytest.approx(result.wall_seconds)

    def test_result_cache_hit_skips_planning_and_execution(self, tracing_db):
        with QueryService(tracing_db) as service:
            prepared = service.prepare(ott_template())
            service.execute(prepared, [0, 0, 0])
            hit = service.execute(prepared, [0, 0, 0]).trace
            assert hit is not None
            assert hit.source == "result_cache"
            assert hit.planning_s == 0.0
            assert hit.execution_s == 0.0
            assert hit.total_s > 0.0

    def test_caller_supplied_trace_survives_shedding(self, tracing_db):
        settings = ServiceSettings(max_concurrent=1, max_queued=0)
        with QueryService(tracing_db, settings=settings) as service:
            prepared = service.prepare(ott_template())
            service.execute(prepared, [0, 0, 0])  # warm the plan cache
            service.admission.acquire("holder")  # occupy the only slot
            trace = RequestTrace()
            with pytest.raises(BackpressureError):
                service.execute(prepared, [1, 1, 1], client="bob", trace=trace)
            service.admission.release()
            assert trace.outcome == "shed"
            assert trace.client == "bob"
            assert trace.template == "trace_tpl"
            assert trace.total_s > 0.0
            assert trace.execution_s == 0.0

    def test_sharded_scatter_trace_accounts_execution_and_merge(self, tracing_db):
        spec = ShardingSpec(partitioned={"r1": "b", "r2": "b", "r3": "b"})
        with ShardedQueryService(tracing_db, num_shards=2, spec=spec) as service:
            result = service.execute(ott_template(), [0, 0, 0], client="carol")
            trace = result.trace
            assert trace is not None
            assert trace.client == "carol"
            assert trace.source.startswith("scatter")
            assert trace.execution_s > 0.0
            assert trace.merge_s > 0.0
            assert trace.total_s >= trace.execution_s + trace.merge_s
            hit = service.execute(ott_template(), [0, 0, 0]).trace
            assert hit is not None
            assert hit.source == "result_cache"
            assert hit.execution_s == 0.0
