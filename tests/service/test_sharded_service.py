"""The sharded scatter-gather coordinator.

Bit-identity against the single-node service on every route, deterministic
hash partitioning and co-partitioning, routing decisions, the missing-
registry inline fallback, the coordinator's result cache, and cross-shard
exact-Γ gossip.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.service.coordinator as coordinator_module
from repro.service import (
    QueryService,
    ShardedQueryService,
    ShardingSpec,
    hash_partition,
    route_query,
    shard_database,
)
from repro.workloads.tpch import generate_tpch_database

SQL_PARTIAL = (
    "SELECT o.o_orderpriority, COUNT(*) AS cnt, SUM(l.l_quantity) AS qty, "
    "AVG(l.l_quantity) AS avg_qty, MIN(o.o_totalprice) AS floor_price "
    "FROM orders o, lineitem l "
    "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity < ? "
    "GROUP BY o.o_orderpriority"
)
SQL_GATHER = (
    "SELECT o.o_orderpriority, SUM(l.l_extendedprice) AS revenue, COUNT(*) AS cnt "
    "FROM customer c, orders o, lineitem l "
    "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
    "AND l.l_quantity < ? GROUP BY o.o_orderpriority"
)
SQL_PROJECTION = (
    "SELECT o.o_orderpriority, l.l_quantity FROM orders o, lineitem l "
    "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity < ?"
)
SQL_REPLICATED = (
    "SELECT p.p_type, COUNT(*) AS cnt FROM part p WHERE p.p_size < ? "
    "GROUP BY p.p_type"
)
SQL_OFF_KEY = (
    "SELECT COUNT(*) AS cnt FROM orders o, lineitem l "
    "WHERE o.o_custkey = l.l_suppkey AND l.l_quantity < ?"
)


@pytest.fixture(scope="module")
def db():
    return generate_tpch_database(scale_factor=0.01, seed=17, sampling_ratio=0.3)


@pytest.fixture(scope="module")
def single(db):
    with QueryService(db) as service:
        yield service


@pytest.fixture(scope="module")
def sharded(db):
    with ShardedQueryService(db, num_shards=4) as service:
        yield service


def assert_bit_identical(expected, actual) -> None:
    assert list(expected.columns) == list(actual.columns)
    assert expected.num_rows == actual.num_rows
    for name in expected.columns:
        left = np.asarray(expected.columns[name])
        right = np.asarray(actual.columns[name])
        assert left.dtype == right.dtype, name
        if left.dtype.kind == "f":
            assert np.array_equal(left.view(np.int64), right.view(np.int64)), name
        else:
            assert np.array_equal(left, right), name


class TestHashPartition:
    def test_deterministic_across_calls(self, db):
        column = db.table("orders").data_column("o_orderkey")
        first = hash_partition(column, 4)
        second = hash_partition(column, 4)
        assert np.array_equal(first, second)

    def test_spreads_sequential_keys(self, db):
        column = db.table("orders").data_column("o_orderkey")
        shards = hash_partition(column, 4)
        counts = np.bincount(shards, minlength=4)
        assert (counts > 0).all(), "a shard got no rows from a uniform keyspace"
        assert counts.max() < 2 * counts.min(), "mixer left sequential-key runs"

    def test_string_columns_partition_by_value(self, db):
        column = db.table("orders").data_column("o_orderpriority")
        shards = hash_partition(column, 4)
        decoded = db.table("orders").column("o_orderpriority")
        by_value = {}
        for value, shard in zip(decoded, shards):
            by_value.setdefault(value, set()).add(int(shard))
        assert all(len(s) == 1 for s in by_value.values())

    def test_float_partition_column_rejected(self, db):
        with pytest.raises(ValueError, match="int or str"):
            hash_partition(db.table("orders").data_column("o_totalprice"), 4)


class TestShardDatabase:
    def test_co_partitioning_holds(self, db):
        shard_dbs = shard_database(
            db, 4, ShardingSpec.tpch(), sampling_ratio=0.3, sampling_seed=17
        )
        total = sum(s.table("lineitem").num_rows for s in shard_dbs)
        assert total == db.table("lineitem").num_rows
        for shard_db in shard_dbs:
            orderkeys = set(shard_db.table("orders").column("o_orderkey").tolist())
            line_orderkeys = set(
                shard_db.table("lineitem").column("l_orderkey").tolist()
            )
            assert line_orderkeys <= orderkeys, "join matches would cross shards"

    def test_replicated_tables_share_the_object(self, db):
        shard_dbs = shard_database(
            db, 3, ShardingSpec.tpch(), sampling_ratio=0.3, sampling_seed=17
        )
        for shard_db in shard_dbs:
            assert shard_db.table("customer") is db.table("customer")

    def test_each_shard_has_statistics_and_samples(self, db):
        shard_dbs = shard_database(
            db, 2, ShardingSpec.tpch(), sampling_ratio=0.3, sampling_seed=17
        )
        for shard_db in shard_dbs:
            assert shard_db.samples is not None
            assert shard_db.table_statistics("lineitem") is not None

    def test_unknown_partition_column_rejected(self, db):
        with pytest.raises(Exception):
            shard_database(
                db,
                2,
                ShardingSpec(partitioned={"orders": "nope"}),
                sampling_ratio=0.3,
                sampling_seed=17,
            )


class TestRouting:
    def test_partition_key_join_scatters(self, sharded):
        bound = sharded.prepare(SQL_PARTIAL).bind([30])
        assert route_query(bound, sharded.spec).mode == "scatter"

    def test_replicated_only_routes_single(self, sharded):
        bound = sharded.prepare(SQL_REPLICATED).bind([20])
        assert route_query(bound, sharded.spec).mode == "single"

    def test_off_key_join_falls_back(self, sharded):
        bound = sharded.prepare(SQL_OFF_KEY).bind([30])
        assert route_query(bound, sharded.spec).mode == "fallback"

    def test_single_partitioned_table_scatters(self, sharded):
        bound = sharded.prepare(
            "SELECT COUNT(*) AS cnt FROM lineitem l WHERE l.l_quantity < ?"
        ).bind([10])
        assert route_query(bound, sharded.spec).mode == "scatter"


class TestBitIdentity:
    @pytest.mark.parametrize(
        "sql,params",
        [
            (SQL_PARTIAL, [30]),
            (SQL_PARTIAL, [12]),
            (SQL_GATHER, [30]),
            (SQL_PROJECTION, [4]),
            (SQL_REPLICATED, [20]),
            (SQL_OFF_KEY, [25]),
        ],
    )
    def test_sharded_matches_single_node(self, single, sharded, sql, params):
        expected = single.execute(sql, params).execution
        actual = sharded.execute(sql, params).execution
        assert_bit_identical(expected, actual)

    def test_sources_reflect_the_route(self, sharded):
        assert sharded.execute(SQL_PARTIAL, [29]).source == "scatter_partial"
        assert sharded.execute(SQL_GATHER, [29]).source == "scatter_gather"
        stats = sharded.stats
        assert stats.partial_merges >= 1
        assert stats.gather_merges >= 1


class TestServingLayers:
    def test_repeat_hits_the_merged_result_cache(self, sharded):
        first = sharded.execute(SQL_PARTIAL, [27])
        again = sharded.execute(SQL_PARTIAL, [27])
        assert again.source == "result_cache"
        assert_bit_identical(first.execution, again.execution)

    def test_replicated_route_uses_shard_zero_stack(self, db):
        with ShardedQueryService(db, num_shards=2) as service:
            service.execute(SQL_REPLICATED, [20])
            service.execute(SQL_REPLICATED, [20])
            assert service.stats.single_shard_queries == 2
            assert service.shards[0].stats.queries == 2
            assert service.shards[0].stats.result_cache_hits == 1
            assert service.shards[1].stats.queries == 0

    def test_missing_registry_reruns_inline(self, db, monkeypatch):
        monkeypatch.setattr(
            coordinator_module, "lookup_shard", lambda token, shard_id: None
        )
        with QueryService(db) as single, ShardedQueryService(db, num_shards=2) as service:
            expected = single.execute(SQL_PARTIAL, [30]).execution
            actual = service.execute(SQL_PARTIAL, [30]).execution
            assert service.stats.inline_shard_reruns == 2
            assert_bit_identical(expected, actual)

    def test_closed_coordinator_raises(self, db):
        service = ShardedQueryService(db, num_shards=2)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.execute(SQL_PARTIAL, [30])


class TestGammaGossip:
    def test_scatter_broadcasts_exact_entries_to_siblings(self, db):
        with ShardedQueryService(db, num_shards=3) as service:
            result = service.execute(SQL_PARTIAL, [30])
            assert result.source == "scatter_partial"
            assert service.stats.gossip_entries > 0
            prepared = service.prepare(SQL_PARTIAL)
            for shard in service.shards:
                assert shard.stats.gossip_entries > 0
                entry = shard._plan_cache_get(prepared.fingerprint)
                assert entry is not None
                exact = entry.gossip.exact_join_sets()
                assert exact, "no exact Γ entries reached the sibling's cache"
                for join_set in sorted(exact, key=sorted):
                    assert entry.expectations[join_set] == entry.gossip.get(join_set)

    def test_gossip_seeds_the_replan_warm_start(self, db):
        """A replan after gossip starts from a Γ that already contains the
        siblings' exact entries — merged ahead of the fresh sampled Δ."""
        with ShardedQueryService(db, num_shards=2) as service:
            service.execute(SQL_PARTIAL, [30])
            prepared = service.prepare(SQL_PARTIAL)
            shard = service.shards[0]
            entry = shard._plan_cache_get(prepared.fingerprint)
            gossiped = dict(entry.gossip.items())
            assert gossiped
            # Force a drift rejection on the next execution of the template.
            shard.settings = dataclasses.replace(shard.settings, drift_threshold=0.0)
            result = shard.execute(SQL_PARTIAL, [18])
            assert result.source == "replan"
            refreshed = shard._plan_cache_get(prepared.fingerprint)
            for join_set in sorted(gossiped, key=sorted):
                assert join_set in refreshed.gossip.exact_join_sets()
