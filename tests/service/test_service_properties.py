"""Property: served results are bit-identical to one-shot executions.

For every workload (TPC-H, TPC-DS, OTT) and every serving path — result-cache
hit, sampling-validated plan reuse, forced drift replan — the service must
return exactly the rows a from-scratch pipeline (Algorithm 1 plan + executor)
produces for the same bound query.  Plans may differ between the paths (that
is the point of the plan cache); outputs may not, down to the float bits:
order-sensitive outputs are produced from a canonical pre-aggregation row
order on both sides, so even ``SUM``/``AVG`` accumulation order is pinned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import QueryService, ServiceSettings
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database
from repro.workloads.tpcds import generate_tpcds_database
from repro.workloads.tpch import generate_tpch_database


def _relations_equal(left, right) -> bool:
    if sorted(left) != sorted(right):
        return False
    if left.num_rows != right.num_rows:
        return False
    for name in left:
        a, b = np.asarray(left[name]), np.asarray(right[name])
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            # equal_nan: an empty float SUM/AVG is NaN on both sides — that
            # *is* the identical result (NaN != NaN would reject it).
            if not np.array_equal(
                a.astype(np.float64), b.astype(np.float64), equal_nan=True
            ):
                return False
        elif not np.array_equal(a, b):
            return False
    return True


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch_database(scale_factor=0.002, seed=21, sampling_ratio=0.5)


@pytest.fixture(scope="module")
def tpcds_db():
    return generate_tpcds_database(scale=0.02, seed=22, sampling_ratio=0.5)


@pytest.fixture(scope="module")
def ott_prop_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=1600, rows_per_value=40, seed=23, sampling_ratio=0.25
    )


def tpch_revenue_template():
    """Parameterized TPC-H Q3-style join with float SUM (order-sensitive)."""
    return (
        QueryBuilder("tpch_revenue")
        .table("customer", "c").table("orders", "o").table("lineitem", "l")
        .filter_param("c", "c_mktsegment", "=")
        .filter_param("o", "o_orderdate", "<")
        .join("c", "c_custkey", "o", "o_custkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("o", "o_orderpriority")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .aggregate("count", output_name="n")
        .build()
    )


def tpch_projection_template():
    """Bare projection (row order exposed -> canonical order contract)."""
    return (
        QueryBuilder("tpch_proj")
        .table("orders", "o").table("lineitem", "l")
        .filter_param("o", "o_orderpriority", "=")
        .filter_param("l", "l_shipmode", "=")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .select("o", "o_orderkey").select("l", "l_extendedprice")
        .build()
    )


def tpcds_template():
    return (
        QueryBuilder("tpcds_sales")
        .table("date_dim", "d").table("item", "i").table("store_sales", "ss")
        .filter_param("d", "d_moy", "=")
        .filter_param("i", "i_category", "=")
        .join("d", "d_date_sk", "ss", "ss_sold_date_sk")
        .join("i", "i_item_sk", "ss", "ss_item_sk")
        .aggregate("sum", "ss", "ss_sales_price", "sales")
        .aggregate("count", output_name="n")
        .build()
    )


def ott_template():
    return (
        QueryBuilder("ott_prop")
        .table("r1").table("r2").table("r3")
        .filter_param("r1", "a", "=")
        .filter_param("r2", "a", "=")
        .filter_param("r3", "a", "=")
        .join("r1", "b", "r2", "b").join("r2", "b", "r3", "b")
        .aggregate("count", output_name="n")
        .build()
    )


def _reference(db, template, bindings):
    """From-scratch serving: no caches, fresh service — one-shot pipeline."""
    with QueryService(
        db,
        settings=ServiceSettings(use_plan_cache=False, use_result_cache=False),
    ) as one_shot:
        return one_shot.execute(template, bindings)


def _assert_served_matches_reference(db, template, binding_sets, service_settings):
    service = QueryService(db, settings=service_settings)
    try:
        seen_sources = set()
        for bindings in binding_sets:
            served = service.execute(template, bindings)
            seen_sources.add(served.source)
            reference = _reference(db, template, bindings)
            assert _relations_equal(served.execution.columns, reference.execution.columns), (
                f"bindings {bindings}: served ({served.source}) differs from one-shot"
            )
    finally:
        service.close()
    return seen_sources


WORKLOADS = [
    ("tpch_revenue", "tpch_db", tpch_revenue_template,
     [["BUILDING", 900], ["BUILDING", 900], ["MACHINERY", 1400], ["AUTOMOBILE", 400]]),
    ("tpch_projection", "tpch_db", tpch_projection_template,
     [["1-URGENT", "AIR"], ["1-URGENT", "AIR"], ["5-LOW", "RAIL"]]),
    ("tpcds", "tpcds_db", tpcds_template,
     [[1, "Books"], [1, "Books"], [6, "Music"]]),
    ("ott", "ott_prop_db", ott_template,
     [[0, 0, 0], [0, 0, 0], [1, 1, 1], [0, 0, 2]]),
]


@pytest.mark.parametrize(
    "label,db_fixture,template_factory,binding_sets",
    WORKLOADS,
    ids=[w[0] for w in WORKLOADS],
)
class TestBitIdentity:
    def test_default_serving(
        self, label, db_fixture, template_factory, binding_sets, request
    ):
        """Cache hits and validated reuses return one-shot results."""
        db = request.getfixturevalue(db_fixture)
        sources = _assert_served_matches_reference(
            db, template_factory(), binding_sets, ServiceSettings()
        )
        assert "fresh" in sources
        assert "result_cache" in sources  # repeated bindings in every set

    def test_forced_replans(
        self, label, db_fixture, template_factory, binding_sets, request
    ):
        """drift_threshold=1.0 forces a replan on every non-identical Δ —
        the replanned plans must still return one-shot results."""
        db = request.getfixturevalue(db_fixture)
        settings = ServiceSettings(drift_threshold=1.0, use_result_cache=False)
        _assert_served_matches_reference(db, template_factory(), binding_sets, settings)

    def test_unguarded_reuse(
        self, label, db_fixture, template_factory, binding_sets, request
    ):
        """Even the unguarded cache (stale plan, rebound constants) is
        result-correct — the guard is about performance, not correctness."""
        db = request.getfixturevalue(db_fixture)
        settings = ServiceSettings(validate_cached_plans=False, use_result_cache=False)
        _assert_served_matches_reference(db, template_factory(), binding_sets, settings)
