"""Result-cache LRU/eviction behavior and the drift metric."""

from __future__ import annotations

from repro.executor.executor import ExecutionResult
from repro.relalg import Relation
from repro.service.cache import ResultCache, max_drift


def _result(rows: int = 1) -> ExecutionResult:
    return ExecutionResult(columns=Relation(), num_rows=rows)


def _key(i: int, table: str = "t", epoch: int = 0):
    return ResultCache.key(("tpl",), (("0", ("num", float(i))),), ((table, epoch),))


class TestResultCache:
    def test_lru_eviction_beyond_bound(self):
        cache = ResultCache(max_entries=2)
        cache.put(_key(1), _result(1))
        cache.put(_key(2), _result(2))
        assert cache.get(_key(1)) is not None  # 1 becomes most recent
        cache.put(_key(3), _result(3))         # evicts 2 (least recent)
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) is not None
        assert cache.get(_key(3)) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_zero_entries_disables_the_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put(_key(1), _result())
        assert cache.get(_key(1)) is None
        assert len(cache) == 0

    def test_invalidate_table_only_sweeps_matching_lines(self):
        cache = ResultCache(max_entries=8)
        cache.put(_key(1, table="a"), _result())
        cache.put(_key(2, table="b"), _result())
        assert cache.invalidate_table("a") == 1
        assert cache.get(_key(1, table="a")) is None
        assert cache.get(_key(2, table="b")) is not None
        assert cache.stats.invalidations == 1

    def test_epoch_is_part_of_the_key(self):
        cache = ResultCache(max_entries=8)
        cache.put(_key(1, epoch=0), _result())
        assert cache.get(_key(1, epoch=1)) is None


class TestMaxDrift:
    def test_perfect_match_is_one(self):
        expectations = {frozenset({"a", "b"}): 100.0}
        assert max_drift(expectations, {frozenset({"a", "b"}): 100.0}) == 1.0

    def test_symmetric_ratio(self):
        expectations = {frozenset({"a"}): 10.0}
        assert max_drift(expectations, {frozenset({"a"}): 40.0}) == 4.0
        assert max_drift({frozenset({"a"}): 40.0}, {frozenset({"a"}): 10.0}) == 4.0

    def test_unknown_join_sets_are_skipped(self):
        expectations = {frozenset({"a"}): 10.0}
        observed = {frozenset({"b"}): 1e9}
        assert max_drift(expectations, observed) == 1.0

    def test_sub_row_values_are_floored(self):
        expectations = {frozenset({"a"}): 0.0}
        assert max_drift(expectations, {frozenset({"a"}): 0.5}) == 1.0
