"""Prepared-statement templates and the statement registry."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.service.templates import StatementRegistry, prepare_statement
from repro.sql.builder import QueryBuilder
from repro.sql.parser import parse_query


def _builder_template(name="tpl"):
    return (
        QueryBuilder(name)
        .table("orders", "o")
        .table("items", "i")
        .join("o", "o_id", "i", "i_order")
        .filter_param("o", "o_priority", "=")
        .aggregate("count", output_name="n")
        .build()
    )


class TestPreparedStatement:
    def test_prepare_from_sql(self):
        prepared = prepare_statement(
            "SELECT count(*) AS n FROM orders o, items i "
            "WHERE o.o_id = i.i_order AND o.o_priority = ?",
            name="by_priority",
        )
        assert prepared.name == "by_priority"
        assert prepared.num_parameters == 1
        assert prepared.tables == ["items", "orders"]

    def test_bind_produces_executable_query(self):
        prepared = prepare_statement(_builder_template())
        bound = prepared.bind(["HIGH"])
        assert not bound.is_parameterized
        bound.ensure_bound()

    def test_bind_missing_parameter_raises(self):
        prepared = prepare_statement(_builder_template())
        with pytest.raises(ParseError):
            prepared.bind([])

    def test_binding_key_distinguishes_bindings(self):
        prepared = prepare_statement(_builder_template())
        assert prepared.binding_key(["HIGH"]) != prepared.binding_key(["LOW"])
        assert prepared.binding_key(["HIGH"]) == prepared.binding_key(["HIGH"])


class TestStatementRegistry:
    def test_registry_deduplicates_by_fingerprint(self):
        registry = StatementRegistry()
        first = registry.register(_builder_template("a"))
        second = registry.register(_builder_template("b"))
        assert first is second
        assert len(registry) == 1

    def test_sql_and_builder_share_a_line(self):
        registry = StatementRegistry()
        built = registry.register(_builder_template())
        parsed = registry.register(
            parse_query(
                "SELECT count(*) AS n FROM orders o, items i "
                "WHERE o.o_id = i.i_order AND o.o_priority = ?"
            )
        )
        assert built is parsed

    def test_distinct_templates_get_distinct_lines(self):
        registry = StatementRegistry()
        registry.register(_builder_template())
        other = (
            QueryBuilder("other")
            .table("orders", "o")
            .filter_param("o", "o_priority", "=")
            .aggregate("count", output_name="n")
            .build()
        )
        registry.register(other)
        assert len(registry) == 2
