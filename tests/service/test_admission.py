"""Admission control: bounds, backpressure, per-client fairness."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.admission import AdmissionController, BackpressureError


class TestBounds:
    def test_fast_path_admits_up_to_capacity(self):
        controller = AdmissionController(max_concurrent=2, max_queued=0)
        controller.acquire("a")
        controller.acquire("b")
        assert controller.in_flight == 2
        with pytest.raises(BackpressureError):
            controller.acquire("c")
        controller.release()
        controller.acquire("c")
        assert controller.in_flight == 2

    def test_queue_full_rejection_and_stats(self):
        controller = AdmissionController(max_concurrent=1, max_queued=1)
        controller.acquire("a")

        entered = threading.Event()
        released = threading.Event()

        def waiter():
            with controller.admit("b"):
                entered.set()
                released.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        # Wait until the waiter occupies the single queue slot.
        while controller.queued < 1 and not entered.is_set():
            time.sleep(0.001)
        with pytest.raises(BackpressureError):
            controller.acquire("c")
        assert controller.stats.rejected == 1
        assert controller.stats.shed == 1
        assert controller.stats.timed_out == 0
        assert controller.stats.per_client_rejected["c"] == 1
        controller.release()  # waiter takes the slot
        assert entered.wait(timeout=5)
        released.set()
        thread.join(timeout=5)
        assert controller.stats.admitted == 2
        assert controller.stats.max_queue_depth == 1

    def test_timeout_sheds_the_waiter(self):
        controller = AdmissionController(max_concurrent=1, max_queued=4)
        controller.acquire("a")
        with pytest.raises(BackpressureError, match="timed out") as excinfo:
            controller.acquire("b", timeout=0.02)
        assert excinfo.value.kind == "timeout"
        assert excinfo.value.waited_s >= 0.02
        assert controller.stats.timed_out == 1
        assert controller.stats.shed == 0
        assert controller.stats.rejected == 1
        controller.release()
        # The withdrawn ticket must not block later admissions.
        controller.acquire("b")
        assert controller.in_flight == 1

    def test_rejected_is_the_sum_of_shed_and_timed_out(self):
        """Backward compat: ``rejected`` totals both rejection classes."""
        controller = AdmissionController(max_concurrent=1, max_queued=0)
        controller.acquire("holder")
        with pytest.raises(BackpressureError) as excinfo:
            controller.acquire("full")  # queue full -> shed
        assert excinfo.value.kind == "shed"
        bigger = AdmissionController(max_concurrent=1, max_queued=4)
        bigger.acquire("holder")
        with pytest.raises(BackpressureError):
            bigger.acquire("slow", timeout=0.01)  # deadline -> timed out
        assert controller.stats.shed == 1 and controller.stats.timed_out == 0
        assert bigger.stats.shed == 0 and bigger.stats.timed_out == 1
        for stats in (controller.stats, bigger.stats):
            assert stats.rejected == stats.shed + stats.timed_out == 1
        snapshot = bigger.stats_snapshot()
        assert (snapshot.shed, snapshot.timed_out, snapshot.rejected) == (0, 1, 1)

    def test_acquire_reports_queue_wait_on_the_shared_clock(self):
        controller = AdmissionController(max_concurrent=1, max_queued=4)
        assert controller.acquire("fast") == 0.0  # uncontended fast path
        waited = []
        done = threading.Event()

        def waiter():
            waited.append(controller.acquire("queued"))
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queued < 1:
            time.sleep(0.001)
        time.sleep(0.02)
        controller.release()
        assert done.wait(timeout=5)
        thread.join(timeout=5)
        assert waited[0] >= 0.015  # the waiter really waited
        controller.release()

    def test_idle_clients_are_pruned_from_scheduling_state(self):
        """Per-request client ids must not accumulate in the rotation."""
        controller = AdmissionController(max_concurrent=2, max_queued=4)
        for index in range(50):
            with controller.admit(f"req-{index}"):
                pass
        assert len(controller._queues) == 0
        assert len(controller._rotation) == 0
        # Fast-path admissions never register; force a queued one and drain.
        controller.acquire("a")
        controller.acquire("b")
        done = threading.Event()

        def waiter():
            with controller.admit("queued-client"):
                done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queued < 1:
            time.sleep(0.001)
        controller.release()
        assert done.wait(timeout=5)
        thread.join(timeout=5)
        assert len(controller._queues) == 0
        assert len(controller._rotation) == 0
        controller.release()

    def test_context_manager_releases_on_error(self):
        controller = AdmissionController(max_concurrent=1, max_queued=0)
        with pytest.raises(RuntimeError, match="boom"):
            with controller.admit("a"):
                raise RuntimeError("boom")
        assert controller.in_flight == 0
        controller.acquire("a")  # slot is free again


class TestFairness:
    def test_round_robin_across_clients(self):
        """With one slot and clients A (many waiters) and B (one), B must be
        granted ahead of A's backlog — round-robin, not FIFO."""
        controller = AdmissionController(max_concurrent=1, max_queued=10)
        controller.acquire("holder")

        order = []
        order_lock = threading.Lock()
        threads = []

        def run(client):
            with controller.admit(client):
                with order_lock:
                    order.append(client)

        # Three A-waiters enqueue first, then one B-waiter.
        for index in range(3):
            thread = threading.Thread(target=run, args=("a",))
            thread.start()
            threads.append(thread)
            while controller.queued < index + 1:
                time.sleep(0.001)
        thread_b = threading.Thread(target=run, args=("b",))
        thread_b.start()
        threads.append(thread_b)
        while controller.queued < 4:
            time.sleep(0.001)

        controller.release()  # free the held slot; waiters drain one by one
        for thread in threads:
            thread.join(timeout=5)
        assert len(order) == 4
        # B is granted second (after one A), not last behind A's whole backlog.
        assert order[1] == "b" or order[0] == "b"
        assert controller.stats.admitted == 5
        assert controller.in_flight == 0


class TestWakeupBound:
    def test_draining_n_waiters_costs_n_wakeups(self):
        """Thundering-herd regression: each grant wakes exactly one waiter.

        The original implementation broadcast ``notify_all`` on a shared
        condition for every release, waking every queued waiter per grant —
        O(n^2) wakeups to drain n waiters.  With per-ticket events, draining
        n waiters must cost exactly n wakeups."""
        n = 8
        controller = AdmissionController(max_concurrent=1, max_queued=n)
        controller.acquire("holder")

        threads = []

        def run(client):
            with controller.admit(client):
                time.sleep(0.002)

        for index in range(n):
            thread = threading.Thread(target=run, args=(f"c{index}",))
            thread.start()
            threads.append(thread)
            while controller.queued < index + 1:
                time.sleep(0.001)

        assert controller.stats.wakeups == 0  # nothing granted yet
        controller.release()  # waiters drain one release at a time
        for thread in threads:
            thread.join(timeout=5)
        assert controller.in_flight == 0
        assert controller.stats.admitted == n + 1
        # One wakeup per queued grant — not O(n) per release.
        assert controller.stats.wakeups == n
