"""Admission control: bounds, backpressure, per-client fairness."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.admission import AdmissionController, BackpressureError


class TestBounds:
    def test_fast_path_admits_up_to_capacity(self):
        controller = AdmissionController(max_concurrent=2, max_queued=0)
        controller.acquire("a")
        controller.acquire("b")
        assert controller.in_flight == 2
        with pytest.raises(BackpressureError):
            controller.acquire("c")
        controller.release()
        controller.acquire("c")
        assert controller.in_flight == 2

    def test_queue_full_rejection_and_stats(self):
        controller = AdmissionController(max_concurrent=1, max_queued=1)
        controller.acquire("a")

        entered = threading.Event()
        released = threading.Event()

        def waiter():
            with controller.admit("b"):
                entered.set()
                released.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        # Wait until the waiter occupies the single queue slot.
        while controller.queued < 1 and not entered.is_set():
            time.sleep(0.001)
        with pytest.raises(BackpressureError):
            controller.acquire("c")
        assert controller.stats.rejected == 1
        assert controller.stats.per_client_rejected["c"] == 1
        controller.release()  # waiter takes the slot
        assert entered.wait(timeout=5)
        released.set()
        thread.join(timeout=5)
        assert controller.stats.admitted == 2
        assert controller.stats.max_queue_depth == 1

    def test_timeout_sheds_the_waiter(self):
        controller = AdmissionController(max_concurrent=1, max_queued=4)
        controller.acquire("a")
        with pytest.raises(BackpressureError, match="timed out"):
            controller.acquire("b", timeout=0.02)
        controller.release()
        # The withdrawn ticket must not block later admissions.
        controller.acquire("b")
        assert controller.in_flight == 1

    def test_timeout_is_a_deadline_not_per_wakeup(self):
        """Repeated passed-over wakeups must not restart the timeout clock."""
        controller = AdmissionController(max_concurrent=1, max_queued=8)
        controller.acquire("holder")
        churn_stop = threading.Event()

        def churn():
            # Keep notifying the condition without ever freeing the slot for
            # the timed waiter (grant + immediate re-acquire by this thread).
            while not churn_stop.is_set():
                with controller._lock:
                    controller._slots_available.notify_all()
                time.sleep(0.01)

        churner = threading.Thread(target=churn)
        churner.start()
        started = time.monotonic()
        try:
            with pytest.raises(BackpressureError, match="timed out"):
                controller.acquire("victim", timeout=0.1)
        finally:
            churn_stop.set()
            churner.join(timeout=5)
        assert time.monotonic() - started < 2.0
        controller.release()

    def test_idle_clients_are_pruned_from_scheduling_state(self):
        """Per-request client ids must not accumulate in the rotation."""
        controller = AdmissionController(max_concurrent=2, max_queued=4)
        for index in range(50):
            with controller.admit(f"req-{index}"):
                pass
        assert len(controller._queues) == 0
        assert len(controller._rotation) == 0
        # Fast-path admissions never register; force a queued one and drain.
        controller.acquire("a")
        controller.acquire("b")
        done = threading.Event()

        def waiter():
            with controller.admit("queued-client"):
                done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queued < 1:
            time.sleep(0.001)
        controller.release()
        assert done.wait(timeout=5)
        thread.join(timeout=5)
        assert len(controller._queues) == 0
        assert len(controller._rotation) == 0
        controller.release()

    def test_context_manager_releases_on_error(self):
        controller = AdmissionController(max_concurrent=1, max_queued=0)
        with pytest.raises(RuntimeError, match="boom"):
            with controller.admit("a"):
                raise RuntimeError("boom")
        assert controller.in_flight == 0
        controller.acquire("a")  # slot is free again


class TestFairness:
    def test_round_robin_across_clients(self):
        """With one slot and clients A (many waiters) and B (one), B must be
        granted ahead of A's backlog — round-robin, not FIFO."""
        controller = AdmissionController(max_concurrent=1, max_queued=10)
        controller.acquire("holder")

        order = []
        order_lock = threading.Lock()
        threads = []

        def run(client):
            with controller.admit(client):
                with order_lock:
                    order.append(client)

        # Three A-waiters enqueue first, then one B-waiter.
        for index in range(3):
            thread = threading.Thread(target=run, args=("a",))
            thread.start()
            threads.append(thread)
            while controller.queued < index + 1:
                time.sleep(0.001)
        thread_b = threading.Thread(target=run, args=("b",))
        thread_b.start()
        threads.append(thread_b)
        while controller.queued < 4:
            time.sleep(0.001)

        controller.release()  # free the held slot; waiters drain one by one
        for thread in threads:
            thread.join(timeout=5)
        assert len(order) == 4
        # B is granted second (after one A), not last behind A's whole backlog.
        assert order[1] == "b" or order[0] == "b"
        assert controller.stats.admitted == 5
        assert controller.in_flight == 0
