"""Residual planning with materialized-intermediate leaves pinned in the DP."""

import pytest

from repro.cardinality.gamma import Gamma
from repro.optimizer.optimizer import Optimizer
from repro.plans.join_tree import subtree_for
from repro.plans.nodes import MaterializedNode
from repro.workloads.ott import make_ott_query


def reuse_leaf(join_set, rows):
    return MaterializedNode(
        relations=frozenset(join_set), estimated_rows=float(rows), estimated_cost=0.0
    )


class TestMaterializedPlanning:
    def test_pinned_subset_appears_when_cheap(self, ott_db):
        """A cheap materialized pair is routed through as a reuse leaf."""
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="pin_cheap")
        session = Optimizer(ott_db).planning_session(query)
        gamma = Gamma()
        session.optimize(gamma)

        gamma.record_exact({"r1", "r2"}, 5.0)
        plan = session.optimize(
            gamma, materialized={frozenset({"r1", "r2"}): reuse_leaf({"r1", "r2"}, 5)}
        )
        spliced = subtree_for(plan, {"r1", "r2"})
        assert isinstance(spliced, MaterializedNode)

    def test_exploded_intermediate_is_abandoned(self, ott_db):
        """A huge materialized pair is planned around, not reused: with the
        exact cardinality extrapolated, any plan stacking joins on the
        explosion prices them at the observed size."""
        query = make_ott_query(ott_db, [0, 0, 0, 1], name="pin_explosion")
        session = Optimizer(ott_db).planning_session(query)
        gamma = Gamma()
        session.optimize(gamma)

        gamma.record_exact({"r1", "r2"}, 10_000_000.0)
        plan = session.optimize(
            gamma,
            materialized={
                frozenset({"r1", "r2"}): reuse_leaf({"r1", "r2"}, 10_000_000)
            },
        )
        # The new plan must not put another join on top of the explosion
        # before the (cheap) mismatching pair has pruned the rows: the
        # sub-plan {r1, r2, r3} would carry the observed 10M rows.
        assert subtree_for(plan, {"r1", "r2", "r3"}) is None

    def test_pinned_masks_survive_later_dirty_rounds(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="pin_sticky")
        session = Optimizer(ott_db).planning_session(query)
        gamma = Gamma()
        session.optimize(gamma)
        gamma.record_exact({"r1", "r2"}, 5.0)
        session.optimize(
            gamma, materialized={frozenset({"r1", "r2"}): reuse_leaf({"r1", "r2"}, 5)}
        )
        # A later round dirties an overlapping set; the pinned leaf must not
        # be overwritten by a re-derived join over its members.
        gamma.record_exact({"r2", "r3"}, 4.0)
        plan = session.optimize(gamma)
        spliced = subtree_for(plan, {"r1", "r2"})
        if spliced is not None:
            assert isinstance(spliced, MaterializedNode)

    def test_first_session_call_accepts_materialized(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="pin_first")
        session = Optimizer(ott_db).planning_session(query)
        gamma = Gamma()
        gamma.record_exact({"r1", "r2"}, 5.0)
        plan = session.optimize(
            gamma, materialized={frozenset({"r1", "r2"}): reuse_leaf({"r1", "r2"}, 5)}
        )
        assert isinstance(subtree_for(plan, {"r1", "r2"}), MaterializedNode)

    def test_foreign_alias_materialized_entries_ignored(self, ott_db):
        query = make_ott_query(ott_db, [0, 0, 0, 0], name="pin_foreign")
        session = Optimizer(ott_db).planning_session(query)
        gamma = Gamma()
        session.optimize(gamma)
        plan = session.optimize(
            gamma, materialized={frozenset({"zz", "yy"}): reuse_leaf({"zz", "yy"}, 5)}
        )
        assert plan is not None
        assert subtree_for(plan, {"zz", "yy"}) is None
