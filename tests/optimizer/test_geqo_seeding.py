"""GEQO seeding: re-optimization rounds refine the incumbent join order.

Above ``geqo_threshold`` the randomized search used to restart from the same
random pool every round, so re-optimization could bounce between unrelated
local optima.  A :class:`PlanningSession` now feeds each round's winning
order back as a seed candidate for the next round.
"""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.optimizer.geqo import GeqoPlanner
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.settings import OptimizerSettings
from repro.reopt.algorithm import Reoptimizer
from repro.workloads.ott import generate_ott_database, make_ott_query


@pytest.fixture
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=800, rows_per_value=20, seed=23, sampling_ratio=0.4
    )


def make_planner(db, query, settings, seed_orders=()):
    estimator = CardinalityEstimator(db, query)
    return GeqoPlanner(
        db, query, estimator, CostModel(units=settings.cost_units), settings,
        seed_orders=seed_orders,
    )


class TestGeqoPlannerSeeding:
    def test_best_order_exposed(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=2, geqo_pool_size=8)
        planner = make_planner(db, query, settings)
        plan = planner.plan_joins()
        assert planner.best_order is not None
        assert set(planner.best_order) == set(query.aliases)
        assert plan.relations == frozenset(query.aliases)

    def test_seed_order_joins_the_candidate_pool(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=2, geqo_pool_size=8)
        baseline = make_planner(db, query, settings)
        baseline.plan_joins()
        # A seed order distinct from the textual order adds one candidate.
        seed = list(reversed(sorted(query.aliases)))
        seeded = make_planner(db, query, settings, seed_orders=[seed])
        seeded.plan_joins()
        assert seeded.num_orders_considered >= baseline.num_orders_considered

    def test_invalid_seed_orders_ignored(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=2, geqo_pool_size=4)
        planner = make_planner(
            db, query, settings,
            seed_orders=[["nope", "nada"], list(sorted(query.aliases))],
        )
        plan = planner.plan_joins()
        assert plan.relations == frozenset(query.aliases)

    def test_seeding_with_winning_order_finds_no_worse_plan(self, db):
        """Seeding the pool with a known-good order can only improve (or tie)
        the search result under the same Γ."""
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=2, geqo_pool_size=6)
        first = make_planner(db, query, settings)
        first_plan = first.plan_joins()
        seeded = make_planner(db, query, settings, seed_orders=[first.best_order])
        seeded_plan = seeded.plan_joins()
        assert seeded_plan.estimated_cost <= first_plan.estimated_cost


class TestPlanningSessionSeeding:
    def test_session_carries_seed_between_rounds(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        optimizer = Optimizer(db, settings=OptimizerSettings(geqo_threshold=2, geqo_pool_size=8))
        session = optimizer.planning_session(query)
        assert session.use_geqo
        session.optimize()
        assert session._geqo_seed_orders, "first round must record its winner as a seed"
        first_seed = [list(order) for order in session._geqo_seed_orders]
        session.optimize()
        assert session._geqo_seed_orders, "later rounds must keep seeding"
        # Same Γ (none) → deterministic search → same winner re-seeded.
        assert session._geqo_seed_orders == first_seed

    def test_geqo_reoptimization_converges(self, db):
        """With seeding, an above-threshold query's re-optimization loop
        terminates (the incumbent order is re-evaluated under the new Γ,
        so a stable winner reproduces itself and triggers convergence)."""
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        reoptimizer = Reoptimizer(
            db,
            optimizer=Optimizer(
                db, settings=OptimizerSettings(geqo_threshold=2, geqo_pool_size=8)
            ),
        )
        result = reoptimizer.reoptimize(query)
        assert result.converged
        assert result.rounds <= 10
