"""Tests for the DP/GEQO optimizer and access-path selection."""

import pytest

from repro.cardinality.gamma import Gamma
from repro.errors import PlanningError
from repro.executor.executor import Executor
from repro.relalg import relation_num_rows
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.profiles import OPTIMIZER_PROFILES, profile_settings
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import JoinTree
from repro.plans.nodes import AggregateNode, JoinNode, ScanMethod, ScanNode
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database, make_ott_query


@pytest.fixture(scope="module")
def db():
    return generate_ott_database(
        num_tables=5, rows_per_table=2000, rows_per_value=50, seed=4, sampling_ratio=0.2
    )


class TestPlanShape:
    def test_single_table_query_is_a_scan(self, db):
        query = QueryBuilder("q").table("r1").filter("r1", "a", "=", 1).build()
        plan = Optimizer(db).optimize(query)
        assert isinstance(plan, ScanNode)

    def test_join_plan_covers_all_relations(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        assert isinstance(plan, AggregateNode)
        assert plan.relations == frozenset({"r1", "r2", "r3", "r4", "r5"})
        assert len(plan.child.join_nodes()) == 4
        assert len(plan.child.scan_nodes()) == 5

    def test_plan_contains_only_query_join_predicates(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        allowed = {p.normalized() for p in query.join_predicates}
        for node in plan.join_nodes():
            for predicate in node.predicates:
                assert predicate.normalized() in allowed

    def test_estimated_cost_is_cumulative(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        plan = Optimizer(db).optimize(query)
        for node in plan.join_nodes():
            for child in node.children():
                assert node.estimated_cost >= child.estimated_cost

    def test_left_deep_only_setting(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(allow_bushy=False)
        plan = Optimizer(db, settings).optimize(query)
        tree = JoinTree.of(plan)
        assert tree.is_left_deep()

    def test_optimizer_report_populated(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        optimizer = Optimizer(db)
        optimizer.optimize(query)
        assert optimizer.last_report is not None
        assert optimizer.last_report.num_join_trees_considered > 0
        assert not optimizer.last_report.used_geqo

    def test_no_tables_rejected(self, db):
        query = QueryBuilder("empty").build()
        with pytest.raises(PlanningError):
            Optimizer(db).optimize(query)


class TestJoinTreeCount:
    """The DP counter must report distinct logical join trees (the paper's N)."""

    @staticmethod
    def _chain_query(db):
        builder = QueryBuilder("chain4")
        for index in range(1, 5):
            builder.table(f"r{index}")
        for index in range(1, 4):
            builder.join(f"r{index}", "b", f"r{index + 1}", "b")
        return builder.build()

    @staticmethod
    def _planner(db, query, settings):
        from repro.cost.model import CostModel
        from repro.optimizer.dp import DynamicProgrammingPlanner

        estimator = Optimizer(db, settings).make_estimator(query)
        return DynamicProgrammingPlanner(
            db, query, estimator, CostModel(units=settings.cost_units), settings
        )

    def test_bushy_chain_of_four_matches_hand_count(self, db):
        """Hand count for the chain r1-r2-r3-r4 (edges 12, 23, 34).

        Connected unordered splits per subset:
          size 2: {1|2}, {2|3}, {3|4}                                →  3
          size 3: {123}: {1|23},{2|13},{3|12}; {234}: likewise       →  6
                  {124}: {1|24},{2|14}; {134}: {3|14},{4|13}         →  4
          size 4: {1|234},{2|134},{3|124},{4|123},
                  {12|34},{13|24},{14|23}                            →  7
        Total: 20.  The old counter reported every ordered split including
        the disconnected ones (50 for this query).
        """
        planner = self._planner(db, self._chain_query(db), OptimizerSettings())
        planner.plan_joins()
        assert planner.num_join_trees_considered == 20

    def test_left_deep_chain_of_four_matches_hand_count(self, db):
        """Left-deep drops the three splits with no single-relation side:
        {12|34}, {13|24}, {14|23} — leaving 17."""
        planner = self._planner(
            db, self._chain_query(db), OptimizerSettings(allow_bushy=False)
        )
        planner.plan_joins()
        assert planner.num_join_trees_considered == 17

    def test_commuted_split_not_double_counted(self, db):
        query = (
            QueryBuilder("pair").table("r1").table("r2")
            .join("r1", "b", "r2", "b").build()
        )
        planner = self._planner(db, query, OptimizerSettings())
        planner.plan_joins()
        # One unordered join {r1, r2}: counted once, not once per orientation.
        assert planner.num_join_trees_considered == 1

    def test_disconnected_split_not_counted(self, db):
        # r1-r2 joined; r3 dangling without any join predicate.  Splits with
        # no cross join predicate — {1|3}, {2|3} and {3|12} — are cartesian
        # fallbacks the search discards, so they must not count towards N.
        # What remains: {1|2}, and the size-3 splits whose cut crosses the
        # 1-2 edge ({1|23} and {2|13}).  Hand count: 3.
        query = QueryBuilder("cross").table("r1").table("r2").table("r3")
        query = query.join("r1", "b", "r2", "b").build()
        planner = self._planner(db, query, OptimizerSettings())
        planner.plan_joins()
        assert planner.num_join_trees_considered == 3
    def test_empty_join_pushed_down_after_validation(self, db):
        """Feeding the validated empty join makes the optimizer evaluate it first."""
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        gamma = Gamma()
        gamma.record({"r4", "r5"}, 0.0)
        gamma.record({"r1", "r2", "r3", "r4", "r5"}, 0.0)
        plan = Optimizer(db).optimize(query, gamma)
        # The empty pair join must appear as a join node of its own (it is the
        # cheapest thing to do first), rather than being delayed to the top.
        join_sets = {frozenset(node.relations) for node in plan.join_nodes()}
        assert frozenset({"r4", "r5"}) in join_sets

    def test_gamma_changes_estimated_rows(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        gamma = Gamma()
        gamma.record({"r1", "r2"}, 123456.0)
        plan = Optimizer(db).optimize(query, gamma)
        estimates = {
            frozenset(node.relations): node.estimated_rows for node in plan.join_nodes()
        }
        if frozenset({"r1", "r2"}) in estimates:
            assert estimates[frozenset({"r1", "r2"})] == pytest.approx(123456.0)

    def test_plans_identical_when_gamma_confirms_estimates(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        optimizer = Optimizer(db)
        baseline = optimizer.optimize(query)
        confirming = Gamma()
        for node in baseline.join_nodes():
            confirming.record(node.relations, node.estimated_rows)
        confirmed_plan = optimizer.optimize(query, confirming)
        assert JoinTree.of(confirmed_plan).join_set == JoinTree.of(baseline).join_set


class TestGeqo:
    def test_geqo_kicks_in_above_threshold(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=3, geqo_pool_size=16)
        optimizer = Optimizer(db, settings)
        plan = optimizer.optimize(query)
        assert optimizer.last_report.used_geqo
        assert plan.relations == frozenset({"r1", "r2", "r3", "r4", "r5"})
        assert JoinTree.of(plan).is_left_deep()

    def test_geqo_plans_execute_correctly(self, db):
        # A three-relation all-matching query keeps the join result small
        # enough to execute while still exercising the GEQO code path.
        query = make_ott_query(db, [0, 0, 0])
        dp_plan = Optimizer(db).optimize(query)
        geqo_plan = Optimizer(db, OptimizerSettings(geqo_threshold=2)).optimize(query)
        executor = Executor(db)
        dp_rows = executor.execute_plan(dp_plan, query).columns["result_rows"][0]
        geqo_rows = executor.execute_plan(geqo_plan, query).columns["result_rows"][0]
        assert dp_rows == geqo_rows

    def test_geqo_deterministic_for_fixed_seed(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 0])
        settings = OptimizerSettings(geqo_threshold=3, geqo_seed=5)
        first = Optimizer(db, settings).optimize(query)
        second = Optimizer(db, settings).optimize(query)
        assert first.signature() == second.signature()


class TestProfiles:
    def test_known_profiles_exist(self):
        assert set(OPTIMIZER_PROFILES) == {"postgresql", "system_a", "system_b"}
        with pytest.raises(KeyError):
            profile_settings("oracle")

    def test_system_a_is_left_deep_without_mcv_refinement(self, db):
        settings = profile_settings("system_a")
        assert not settings.allow_bushy
        assert not settings.use_mcv_join_refinement
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        plan = Optimizer(db, settings).optimize(query)
        assert JoinTree.of(plan).is_left_deep()

    def test_system_b_produces_valid_plans(self, db):
        query = make_ott_query(db, [0, 0, 0, 0, 1])
        plan = Optimizer(db, profile_settings("system_b")).optimize(query)
        assert plan.relations == frozenset({"r1", "r2", "r3", "r4", "r5"})


class TestAccessPaths:
    def test_index_scan_chosen_for_selective_indexed_predicate(self):
        # A dedicated database where the equality predicate matches ~10 of
        # 20,000 rows, so fetching a handful of pages at random beats reading
        # all 200 pages sequentially.
        selective_db = generate_ott_database(
            num_tables=2, rows_per_table=20_000, rows_per_value=10, seed=2,
            create_samples=False,
        )
        query = (
            QueryBuilder("q").table("r1").table("r2")
            .filter("r1", "a", "=", 3)
            .join("r1", "b", "r2", "b").build()
        )
        plan = Optimizer(selective_db).optimize(query)
        scans = {node.alias: node for node in plan.scan_nodes()}
        assert scans["r1"].method is ScanMethod.INDEX_SCAN
        assert scans["r1"].index_column == "a"

    def test_seq_scan_when_no_predicate(self, db):
        query = QueryBuilder("q").table("r1").build()
        plan = Optimizer(db).optimize(query)
        assert plan.method is ScanMethod.SEQ_SCAN

    def test_index_scan_disabled_by_settings(self, db):
        query = QueryBuilder("q").table("r1").filter("r1", "a", "=", 3).build()
        plan = Optimizer(db, OptimizerSettings(enable_index_scan=False)).optimize(query)
        assert plan.method is ScanMethod.SEQ_SCAN
