"""Load generator: schedule reproducibility, aggregation, end-to-end runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.loadgen import (
    LoadgenConfig,
    ScheduledRequest,
    TemplateMix,
    build_schedule,
    run_load,
    zipf_weights,
)
from repro.bench.reporting import stage_breakdown, summarize_latencies
from repro.service import QueryService, ServiceSettings
from repro.service.tracing import RequestTrace
from repro.sql.builder import QueryBuilder
from repro.workloads.ott import generate_ott_database


@pytest.fixture(scope="module")
def loadgen_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=2000, rows_per_value=40, seed=11, sampling_ratio=0.25
    )


@pytest.fixture(scope="module")
def loadgen_mix():
    pairs = (
        QueryBuilder("lg_pairs")
        .table("r1").table("r2")
        .filter_param("r1", "a", "=")
        .join("r1", "b", "r2", "b")
        .aggregate("count", output_name="n")
        .build()
    )
    triples = (
        QueryBuilder("lg_triples")
        .table("r1").table("r3")
        .filter_param("r3", "a", "=")
        .join("r1", "b", "r3", "b")
        .aggregate("count", output_name="n")
        .build()
    )
    return TemplateMix.build(
        [pairs, triples],
        {"lg_pairs": [[0], [1], [2]], "lg_triples": [[0], [1]]},
    )


class TestSchedule:
    def test_schedule_is_bit_reproducible(self, loadgen_mix):
        for mode in ("open", "closed"):
            config = LoadgenConfig(mode=mode, num_requests=64, target_qps=100.0, seed=23)
            assert build_schedule(config, loadgen_mix) == build_schedule(config, loadgen_mix)

    def test_different_seeds_differ(self, loadgen_mix):
        base = LoadgenConfig(mode="open", num_requests=64, seed=1)
        other = LoadgenConfig(mode="open", num_requests=64, seed=2)
        assert build_schedule(base, loadgen_mix) != build_schedule(other, loadgen_mix)

    def test_open_loop_arrivals_are_increasing_at_the_target_rate(self, loadgen_mix):
        config = LoadgenConfig(mode="open", num_requests=400, target_qps=50.0, seed=7)
        schedule = build_schedule(config, loadgen_mix)
        arrivals = [request.arrival_s for request in schedule]
        assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))
        # Mean inter-arrival of an exponential(1/qps) process: 1/50 s +- noise.
        mean_gap = arrivals[-1] / (len(arrivals) - 1)
        assert 0.014 <= mean_gap <= 0.028

    def test_closed_loop_assigns_clients_round_robin(self, loadgen_mix):
        config = LoadgenConfig(mode="closed", num_requests=12, num_clients=3, seed=7)
        schedule = build_schedule(config, loadgen_mix)
        assert [request.client for request in schedule[:3]] == [
            "client0", "client1", "client2"
        ]
        per_client = {}
        for request in schedule:
            per_client[request.client] = per_client.get(request.client, 0) + 1
        assert per_client == {"client0": 4, "client1": 4, "client2": 4}

    def test_zipf_skew_prefers_low_ranks(self, loadgen_mix):
        weights = zipf_weights(5, 1.0)
        assert weights[0] > weights[1] > weights[4]
        assert weights.sum() == pytest.approx(1.0)
        uniform = zipf_weights(5, 0.0)
        assert np.allclose(uniform, 0.2)
        config = LoadgenConfig(mode="open", num_requests=500, zipf_s=1.5, seed=3)
        schedule = build_schedule(config, loadgen_mix)
        counts = np.zeros(len(loadgen_mix.pairs()))
        pair_rank = {pair: rank for rank, pair in enumerate(loadgen_mix.pairs())}
        for request in schedule:
            counts[pair_rank[(request.template_index, request.binding_index)]] += 1
        assert counts[0] > counts[-1]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LoadgenConfig(mode="sideways")
        with pytest.raises(ValueError, match="num_requests"):
            LoadgenConfig(num_requests=0)
        with pytest.raises(ValueError, match="target_qps"):
            LoadgenConfig(mode="open", target_qps=0.0)
        with pytest.raises(ValueError, match="num_clients"):
            LoadgenConfig(mode="closed", num_clients=0)


class TestAggregation:
    def test_summarize_latencies(self):
        summary = summarize_latencies([0.001 * k for k in range(1, 101)])
        assert summary.count == 100
        assert summary.mean_s == pytest.approx(0.0505)
        assert summary.p50_s == pytest.approx(0.0505)
        assert summary.p99_s == pytest.approx(0.09901, rel=1e-3)
        assert summary.max_s == pytest.approx(0.1)
        assert summarize_latencies([]).count == 0
        assert set(summary.as_dict()) == {
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"
        }

    def test_stage_breakdown_means_and_overhead(self):
        traces = [
            RequestTrace(queue_wait_s=0.2, execution_s=0.4, total_s=1.0),
            RequestTrace(queue_wait_s=0.0, execution_s=0.6, total_s=0.8),
        ]
        breakdown = stage_breakdown(traces)
        assert breakdown["queue_wait_s"] == pytest.approx(0.1)
        assert breakdown["execution_s"] == pytest.approx(0.5)
        # (1.0 - 0.6) and (0.8 - 0.6) of unaccounted wall time, averaged.
        assert breakdown["overhead_s"] == pytest.approx(0.3)
        assert stage_breakdown([]) == {
            name: 0.0 for name in breakdown
        }


class TestRunLoad:
    def test_open_and_closed_runs_complete_and_agree(self, loadgen_db, loadgen_mix):
        open_config = LoadgenConfig(
            mode="open", num_requests=30, target_qps=300.0, seed=5
        )
        closed_config = LoadgenConfig(
            mode="closed", num_requests=30, num_clients=3, think_time_s=0.0, seed=5
        )
        with QueryService(loadgen_db) as service:
            open_run = run_load(service, loadgen_mix, open_config)
        with QueryService(loadgen_db) as service:
            closed_run = run_load(service, loadgen_mix, closed_config)
        for run in (open_run, closed_run):
            assert run.offered == 30
            assert run.completed == 30
            assert run.shed == 0 and run.timed_out == 0
            assert run.shed_rate == 0.0
            assert run.achieved_qps > 0
            assert run.latency.count == 30
            assert len(run.traces) == 30
            assert sum(run.sources.values()) == 30
        # The same seed serves the same (template, binding) pairs in both
        # modes, and the query outputs are bit-identical across them.
        assert set(open_run.outputs) == set(closed_run.outputs)
        for key, columns in open_run.outputs.items():
            for name, values in columns.items():
                assert np.array_equal(values, closed_run.outputs[key][name])

    def test_shed_requests_are_counted_not_raised(self, loadgen_db, loadgen_mix):
        settings = ServiceSettings(
            max_concurrent=1, max_queued=0, use_result_cache=False,
            use_plan_cache=True,
        )
        config = LoadgenConfig(
            mode="open", num_requests=40, target_qps=2000.0, seed=5,
            open_loop_workers=8,
        )
        with QueryService(loadgen_db, settings=settings) as service:
            run = run_load(service, loadgen_mix, config)
        assert run.offered == 40
        assert run.completed + run.shed + run.timed_out == 40
        assert run.shed > 0  # the queue-less gate must have shed load
        assert run.shed_rate == pytest.approx((run.shed + run.timed_out) / 40)
        shed_traces = [trace for trace in run.traces if trace.outcome == "shed"]
        assert len(shed_traces) == run.shed
        assert all(trace.total_s > 0 for trace in shed_traces)
