"""Tests for the benchmark harness and reporting (integration level)."""

import pytest

from repro.bench.experiments import (
    appendix_b_bounds,
    example2_multidimensional_histograms,
    figure3_sn_curve,
    figure10_11_ott_running_time,
    figure16_ott_num_plans,
)
from repro.bench.harness import (
    aggregate_by_template,
    calibrated_settings,
    mean,
    run_query_suite,
)
from repro.bench.reporting import ExperimentResult
from repro.workloads.ott import generate_ott_database, make_ott_workload


@pytest.fixture(scope="module")
def small_ott_db():
    return generate_ott_database(
        num_tables=4, rows_per_table=1200, rows_per_value=30, seed=17, sampling_ratio=0.25
    )


class TestReporting:
    def test_table_rendering(self):
        result = ExperimentResult("figX", "demo", columns=["a", "b"])
        result.add_row(a=1, b=0.123456)
        result.add_row(a="text", b=None)
        text = result.to_text()
        assert "figX" in text and "demo" in text
        assert "0.12" in text
        assert result.column_values("a") == [1, "text"]

    def test_max_rows_truncation(self):
        result = ExperimentResult("figX", "demo", columns=["a"])
        for index in range(10):
            result.add_row(a=index)
        text = result.to_text(max_rows=3)
        assert "more rows" in text

    def test_boolean_and_large_float_formatting(self):
        result = ExperimentResult("figX", "demo", columns=["flag", "big"])
        result.add_row(flag=True, big=123456.789)
        assert "yes" in result.to_text()
        assert "1.23e+05" in result.to_text()


class TestHarness:
    def test_run_query_suite_records(self, small_ott_db):
        queries = make_ott_workload(small_ott_db, num_tables=4, num_queries=3, seed=2)
        records = run_query_suite(small_ott_db, queries)
        assert len(records) == 3
        for record in records:
            assert record.plans_generated >= 2
            assert record.original_simulated_cost > 0
            assert record.reoptimized_simulated_cost > 0
            assert record.total_with_reoptimization >= record.reoptimized_wall_seconds

    def test_intermediate_plan_execution(self, small_ott_db):
        queries = make_ott_workload(small_ott_db, num_tables=4, num_queries=1, seed=2)
        records = run_query_suite(small_ott_db, queries, execute_intermediate_plans=True)
        assert records[0].per_round_simulated_cost
        assert records[0].per_round_simulated_cost[0] == pytest.approx(
            records[0].original_simulated_cost, rel=1e-6
        )

    def test_run_query_suite_workers_bit_identical(self, small_ott_db):
        """workers=4 shares one morsel scheduler across the whole pipeline;
        every recorded metric that is not wall clock must match workers=1."""
        queries = make_ott_workload(small_ott_db, num_tables=4, num_queries=2, seed=2)
        serial = run_query_suite(small_ott_db, queries)
        parallel = run_query_suite(small_ott_db, queries, workers=4)
        for record_s, record_p in zip(serial, parallel):
            assert record_s.query_name == record_p.query_name
            assert record_s.original_simulated_cost == record_p.original_simulated_cost
            assert record_s.reoptimized_simulated_cost == record_p.reoptimized_simulated_cost
            assert record_s.plans_generated == record_p.plans_generated
            assert record_s.plan_changed == record_p.plan_changed

    def test_aggregate_by_template_and_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 3.0]) == 2.0

    def test_calibrated_settings_changes_units(self, small_ott_db):
        settings = calibrated_settings(small_ott_db)
        defaults = set()
        calibrated = set(settings.cost_units.as_dict().values())
        from repro.cost.units import DEFAULT_COST_UNITS

        defaults = set(DEFAULT_COST_UNITS.as_dict().values())
        assert calibrated != defaults


class TestExperimentDrivers:
    def test_figure3_driver(self):
        result = figure3_sn_curve(max_n=200, step=50)
        assert result.rows[0]["N"] == 1
        assert result.rows[-1]["N"] == 200

    def test_example2_driver(self):
        result = example2_multidimensional_histograms(rows=2000, distinct_values=50)
        assert len(result.rows) == 2

    def test_ott_driver_small(self):
        result = figure10_11_ott_running_time(
            joins=4, num_queries=2, rows_per_table=1200, sampling_ratio=0.25, seed=3
        )
        assert len(result.rows) == 2

    def test_ott_num_plans_driver_small(self):
        result = figure16_ott_num_plans(
            joins=4, num_queries=2, rows_per_table=1200, sampling_ratio=0.25, seed=3
        )
        assert all(row["plans_generated"] >= 2 for row in result.rows)

    def test_appendix_b_driver_small(self):
        result = appendix_b_bounds(
            num_queries=2, num_tables=4, rows_per_table=1200, sampling_ratio=0.25, seed=3
        )
        assert len(result.rows) == 2
