"""Tests for the 2-D histogram of Example 2 (Section 5.3.1)."""

import numpy as np
import pytest

from repro.stats.multidim import MultiDimHistogram, true_ott_pair_selectivity


@pytest.fixture
def ott_pair(make_rng):
    rng = make_rng(2)
    a1 = rng.integers(0, 100, size=5000)
    a2 = rng.integers(0, 100, size=5000)
    return a1, a1.copy(), a2, a2.copy()


class TestMultiDimHistogram:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MultiDimHistogram.build(np.arange(5), np.arange(6), 4)

    def test_cell_fractions_sum_to_one(self, ott_pair):
        a1, b1, _, _ = ott_pair
        hist = MultiDimHistogram.build(a1, b1, 50)
        assert hist.cell_fractions.sum() == pytest.approx(1.0)

    def test_example2_estimates_identical_for_empty_and_nonempty(self, ott_pair):
        a1, b1, a2, b2 = ott_pair
        hist1 = MultiDimHistogram.build(a1, b1, 50)
        hist2 = MultiDimHistogram.build(a2, b2, 50)
        empty_estimate = hist1.estimate_ott_pair_selectivity(0, 1, hist2)
        nonempty_estimate = hist1.estimate_ott_pair_selectivity(0, 0, hist2)
        # Example 2's point: the histogram cannot tell them apart.
        assert empty_estimate == pytest.approx(nonempty_estimate, rel=0.35)
        assert empty_estimate > 0.0

    def test_true_selectivities_differ(self, ott_pair):
        a1, b1, a2, b2 = ott_pair
        assert true_ott_pair_selectivity(a1, b1, a2, b2, 0, 1) == 0.0
        assert true_ott_pair_selectivity(a1, b1, a2, b2, 0, 0) > 0.0

    def test_selection_fraction_reasonable(self, ott_pair):
        a1, b1, _, _ = ott_pair
        hist = MultiDimHistogram.build(a1, b1, 50)
        # A = 0 selects about 1% of the rows.
        assert 0.0 < hist.selection_fraction(0) < 0.05
