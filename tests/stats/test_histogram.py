"""Direct unit tests for the equi-depth histogram (Section 4.2.1)."""

import numpy as np
import pytest

from repro.stats.histogram import EquiDepthHistogram


class TestConstruction:
    def test_uniform_data_builds_even_buckets(self, make_rng):
        values = make_rng().uniform(0.0, 100.0, size=10_000)
        hist = EquiDepthHistogram.from_values(values, num_buckets=10)
        assert hist is not None
        assert hist.num_buckets == 10
        assert hist.low == pytest.approx(values.min())
        assert hist.high == pytest.approx(values.max())
        # Equal depth: each bucket holds ~10% of the rows.
        for i in range(10):
            inside = np.count_nonzero(
                (values >= hist.bounds[i]) & (values < hist.bounds[i + 1])
            )
            assert inside / len(values) == pytest.approx(0.1, abs=0.02)

    def test_degenerate_inputs_return_none(self):
        assert EquiDepthHistogram.from_values(np.array([])) is None
        assert EquiDepthHistogram.from_values(np.array([5.0])) is None
        assert EquiDepthHistogram.from_values(np.full(100, 7.0)) is None

    def test_nan_values_are_dropped(self):
        values = np.array([1.0, np.nan, 2.0, 3.0, np.nan, 4.0])
        hist = EquiDepthHistogram.from_values(values, num_buckets=2)
        assert hist is not None
        assert hist.low == 1.0
        assert hist.high == 4.0

    def test_buckets_capped_by_value_count(self):
        hist = EquiDepthHistogram.from_values(np.array([1.0, 2.0, 3.0]), num_buckets=100)
        assert hist is not None
        assert hist.num_buckets <= 3


class TestFractionBelow:
    @pytest.fixture
    def uniform_hist(self, make_rng):
        return EquiDepthHistogram.from_values(
            make_rng().uniform(0.0, 1.0, size=50_000), num_buckets=100
        )

    def test_out_of_range(self, uniform_hist):
        assert uniform_hist.fraction_below(-1.0) == 0.0
        assert uniform_hist.fraction_below(2.0) == 1.0
        assert uniform_hist.fraction_below(uniform_hist.high, inclusive=True) == 1.0
        assert uniform_hist.fraction_below(uniform_hist.high) < 1.0

    def test_linear_interpolation_on_uniform_data(self, uniform_hist):
        for point in (0.1, 0.25, 0.5, 0.9):
            assert uniform_hist.fraction_below(point) == pytest.approx(point, abs=0.01)

    def test_monotone(self, uniform_hist):
        points = np.linspace(0.0, 1.0, 50)
        fractions = [uniform_hist.fraction_below(p) for p in points]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))


class TestFractionBetween:
    @pytest.fixture
    def hist(self, make_rng):
        return EquiDepthHistogram.from_values(
            make_rng(1).uniform(0.0, 10.0, size=20_000), num_buckets=50
        )

    def test_range_selectivity(self, hist):
        assert hist.fraction_between(2.0, 7.0) == pytest.approx(0.5, abs=0.02)

    def test_open_ended_ranges(self, hist):
        assert hist.fraction_between(None, None) == 1.0
        assert hist.fraction_between(5.0, None) == pytest.approx(0.5, abs=0.02)
        assert hist.fraction_between(None, 5.0) == pytest.approx(0.5, abs=0.02)

    def test_inverted_range_clamped_to_zero(self, hist):
        assert hist.fraction_between(8.0, 2.0) == 0.0

    def test_skewed_data_equalizes_depth_not_width(self):
        values = np.concatenate([np.zeros(9_000), np.linspace(1, 100, 1_000)])
        hist = EquiDepthHistogram.from_values(values, num_buckets=10)
        # 90% of the mass sits at 0: the estimate must reflect depth.
        assert hist.fraction_between(None, 0.5) == pytest.approx(0.9, abs=0.05)
