"""Unit tests for ANALYZE statistics (MCVs, histograms, distinct counts)."""

import numpy as np
import pytest

from repro.stats.analyze import analyze_column, analyze_table
from repro.stats.histogram import EquiDepthHistogram
from repro.storage.table import Column, Table, TableSchema


class TestAnalyzeColumn:
    def test_empty_column(self):
        stats = analyze_column(np.array([], dtype=np.int64), "a", is_numeric=True)
        assert stats.num_rows == 0
        assert stats.n_distinct == 0

    def test_distinct_count_exact(self):
        values = np.repeat(np.arange(20), 5)
        stats = analyze_column(values, "a", is_numeric=True)
        assert stats.n_distinct == 20
        assert stats.num_rows == 100

    def test_all_values_become_mcvs_for_small_domains(self):
        values = np.repeat(np.arange(10), 10)
        stats = analyze_column(values, "a", is_numeric=True, mcv_target=100)
        assert stats.num_mcvs == 10
        assert stats.mcv_total_fraction == pytest.approx(1.0)
        assert stats.mcv_fraction_for(3) == pytest.approx(0.1)

    def test_mcvs_capture_skewed_values(self, make_rng):
        rng = make_rng()
        skewed = np.concatenate([np.full(900, 7), rng.integers(100, 1000, size=100)])
        stats = analyze_column(skewed, "a", is_numeric=True, mcv_target=10)
        assert stats.mcv_values[0] == 7
        assert stats.mcv_fractions[0] == pytest.approx(0.9)

    def test_mcv_fraction_for_missing_value(self):
        stats = analyze_column(np.arange(1000), "a", is_numeric=True, mcv_target=10)
        assert stats.mcv_fraction_for(123456) is None

    def test_histogram_built_for_numeric_spread(self):
        stats = analyze_column(np.arange(1000), "a", is_numeric=True, mcv_target=0)
        assert stats.histogram is not None
        assert stats.min_value == 0
        assert stats.max_value == 999

    def test_string_column_has_no_histogram(self):
        values = np.array(["x", "y", "z", "x"], dtype=object)
        stats = analyze_column(values, "c", is_numeric=False)
        assert stats.histogram is None
        assert stats.is_numeric is False
        assert stats.n_distinct == 3

    def test_non_mcv_distinct_floor(self):
        stats = analyze_column(np.array([1, 1, 1, 1]), "a", is_numeric=True)
        assert stats.non_mcv_distinct() >= 1


class TestAnalyzeTable:
    def make_table(self, make_rng, rows=1000):
        rng = make_rng(1)
        schema = TableSchema("t", (Column("a", "int"), Column("b", "float"), Column("c", "str")))
        return Table(schema, {
            "a": rng.integers(0, 100, size=rows),
            "b": rng.uniform(0, 1, size=rows),
            "c": rng.choice(["u", "v", "w"], size=rows).astype(object),
        })

    def test_full_scan_statistics(self, make_rng):
        table = self.make_table(make_rng)
        stats = analyze_table(table)
        assert stats.row_count == 1000
        assert set(stats.columns) == {"a", "b", "c"}
        assert stats.column("a").n_distinct == 100
        assert stats.column("c").n_distinct == 3

    def test_sampled_analyze(self, make_rng):
        table = self.make_table(make_rng, rows=5000)
        stats = analyze_table(table, sample_rows=500, seed=3)
        assert stats.row_count == 5000
        # Distinct count observed on the sample never exceeds the table size.
        assert stats.column("a").n_distinct <= 5000

    def test_has_column_and_missing_column(self, make_rng):
        stats = analyze_table(self.make_table(make_rng))
        assert stats.has_column("a")
        assert not stats.has_column("zzz")


class TestEquiDepthHistogram:
    def test_degenerate_inputs_return_none(self):
        assert EquiDepthHistogram.from_values(np.array([1.0])) is None
        assert EquiDepthHistogram.from_values(np.full(100, 3.0)) is None

    def test_fraction_below_monotone(self):
        hist = EquiDepthHistogram.from_values(np.arange(1000, dtype=float), num_buckets=10)
        fractions = [hist.fraction_below(value) for value in (0, 100, 500, 900, 999)]
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.0, abs=0.01)
        assert fractions[-1] == pytest.approx(1.0, abs=0.01)

    def test_fraction_below_out_of_range(self):
        hist = EquiDepthHistogram.from_values(np.arange(100, dtype=float), num_buckets=5)
        assert hist.fraction_below(-10) == 0.0
        assert hist.fraction_below(500) == 1.0

    def test_fraction_between(self):
        hist = EquiDepthHistogram.from_values(np.arange(1000, dtype=float), num_buckets=20)
        assert hist.fraction_between(250, 750) == pytest.approx(0.5, abs=0.05)
        assert hist.fraction_between(None, None) == pytest.approx(1.0, abs=0.01)
        assert hist.fraction_between(900, 100) == 0.0

    def test_uniform_quantiles(self):
        hist = EquiDepthHistogram.from_values(np.arange(10_000, dtype=float), num_buckets=100)
        assert hist.num_buckets == 100
        assert hist.low == pytest.approx(0.0)
        assert hist.high == pytest.approx(9999.0)
