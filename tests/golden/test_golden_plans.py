"""Golden-plan regression suite.

Snapshots the optimizer's choices — plan shape, join order, physical
operators and estimated cardinalities — for every TPC-H, TPC-DS and OTT
workload query at a fixed laptop scale.  Any optimizer drift (a cost-model
tweak, an estimator change, a new access path) fails this suite loudly and
shows exactly which query's plan moved.  After an *intentional* change,
refresh the snapshots with::

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden

Floats are rounded to 8 significant digits before comparison so the
snapshots are stable across platforms while still catching real estimate
drift.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.plans.nodes import AggregateNode, JoinNode, MaterializedNode, PlanNode, ScanNode
from repro.workloads.ott import generate_ott_database, make_ott_workload
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import make_tpch_workload
from repro.workloads.tpcds import generate_tpcds_database, make_tpcds_workload

GOLDEN_DIR = pathlib.Path(__file__).parent


def _round(value: float) -> float:
    return float(f"{float(value):.8g}")


def plan_snapshot(node: PlanNode) -> dict:
    """A JSON-stable description of a plan's shape and estimates."""
    common = {
        "relations": sorted(node.relations),
        "estimated_rows": _round(node.estimated_rows),
    }
    if isinstance(node, ScanNode):
        return {
            "kind": "scan",
            "table": node.table,
            "alias": node.alias,
            "method": node.method.value,
            "index_column": node.index_column,
            "predicates": sorted(str(p) for p in node.predicates),
            **common,
        }
    if isinstance(node, JoinNode):
        return {
            "kind": "join",
            "method": node.method.value,
            "predicates": sorted(str(p.normalized()) for p in node.predicates),
            "left": plan_snapshot(node.left),
            "right": plan_snapshot(node.right),
            **common,
        }
    if isinstance(node, AggregateNode):
        return {
            "kind": "aggregate",
            "group_by": [str(c) for c in node.group_by],
            "aggregates": [a.output_name for a in node.aggregates],
            "child": plan_snapshot(node.child),
            **common,
        }
    if isinstance(node, MaterializedNode):  # pragma: no cover - never golden
        return {"kind": "materialized", **common}
    raise TypeError(f"unknown plan node {type(node).__name__}")


def workload_snapshot(db, queries) -> dict:
    optimizer = Optimizer(db)
    snapshot = {}
    for query in queries:
        plan = optimizer.optimize(query)
        snapshot[query.name] = {
            "estimated_cost": _round(plan.estimated_cost),
            "plan": plan_snapshot(plan),
        }
    return snapshot


def _build_tpch():
    db = generate_tpch_database(
        scale_factor=0.004, zipf_z=0.0, seed=1, create_samples=False
    )
    workload = make_tpch_workload(db, instances_per_query=1, seed=1)
    return db, [instances[0] for instances in workload.values()]


def _build_tpcds():
    db = generate_tpcds_database(scale=0.1, seed=2, create_samples=False)
    return db, make_tpcds_workload(db, seed=2)


def _build_ott():
    db = generate_ott_database(
        num_tables=5, rows_per_table=4000, rows_per_value=50, seed=7,
        create_samples=False,
    )
    return db, make_ott_workload(db, num_tables=5, num_queries=10, seed=7)


WORKLOADS = {
    "tpch": _build_tpch,
    "tpcds": _build_tpcds,
    "ott": _build_ott,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_plans(workload, request):
    db, queries = WORKLOADS[workload]()
    actual = workload_snapshot(db, queries)
    golden_path = GOLDEN_DIR / f"golden_{workload}.json"

    if request.config.getoption("--update-golden"):
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return

    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path.name}; "
        f"create it with: pytest tests/golden --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    assert sorted(actual) == sorted(expected), (
        f"{workload}: query set changed — refresh with --update-golden"
    )
    drifted = [name for name in sorted(expected) if actual[name] != expected[name]]
    assert not drifted, (
        f"{workload}: optimizer output drifted for {drifted}; inspect the diff and, "
        f"if intentional, refresh with: pytest tests/golden --update-golden"
    )
