"""Rule base class and the process-wide rule registry.

Every rule has a stable code (``RPL001`` …) that never changes meaning once
shipped: suppression comments, ``--select``/``--ignore`` filters and the CI
gate all key on it.  New rules take the next free code; retired rules leave
a hole rather than renumbering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Sequence, Type

from repro_lint.diagnostics import Diagnostic


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file.

    ``path`` is the repository-relative POSIX path (or a caller-supplied
    virtual path for in-memory sources — the fixture tests use virtual paths
    to exercise path-scoped rules without touching the real tree).
    """

    path: PurePosixPath
    tree: ast.Module
    source: str
    lines: Sequence[str]


class Rule:
    """One invariant check.  Subclasses set the class metadata and ``check``.

    ``scope_prefixes`` restricts a rule to files under the given
    repository-relative directories (empty means every file); ``scope_skip``
    exempts specific files *inside* the scope — e.g. the shm-lifecycle rules
    exempt ``src/repro/relalg/shm.py`` itself, the one module allowed to
    create and unlink segments.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    #: The contract the rule protects (shown by ``--list-rules``).
    contract: str = ""
    #: Directory prefixes the rule applies to (empty: every file).
    scope_prefixes: Sequence[str] = ()
    #: Paths (exact or suffix) exempt from the rule.
    scope_skip: Sequence[str] = ()

    def applies_to(self, path: PurePosixPath) -> bool:
        text = path.as_posix()
        if any(text == skip or text.endswith("/" + skip) for skip in self.scope_skip):
            return False
        if not self.scope_prefixes:
            return True
        return any(
            text.startswith(prefix + "/") or ("/" + prefix + "/") in text
            for prefix in self.scope_prefixes
        )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        return f"{cls.code} [{cls.name}] {cls.summary}"


#: code -> rule class.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (codes are unique)."""
    if not rule.code or not rule.code.startswith("RPL"):
        raise ValueError(f"rule {rule.__name__} has no RPL code")
    if rule.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    REGISTRY[rule.code] = rule
    return rule


def all_rules() -> List[Type[Rule]]:
    """Every registered rule, sorted by code (rule modules must be imported
    first — importing :mod:`repro_lint.rules` does that)."""
    import repro_lint.rules  # noqa: F401  (registers on import)

    return [REGISTRY[code] for code in sorted(REGISTRY)]


def rule_for_code(code: str) -> Type[Rule]:
    import repro_lint.rules  # noqa: F401

    return REGISTRY[code]
