"""Determinism rules: RPL001 (unseeded RNG), RPL002 (unordered iteration),
RPL003 (wall-clock in kernel task bodies), RPL011 (unordered shard/merge
iteration in the scatter-gather coordinator and merge kernels).

The paper's Algorithm-1 guarantee — re-optimization converges to a stable
plan, and serial/parallel execution is bit-identical — only holds if every
run of the pipeline is a pure function of database, query and seed.  These
rules ban the three ways nondeterminism has historically leaked in.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from repro_lint.astutils import (
    import_aliases,
    iteration_targets,
    qualified_name,
)
from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register

#: Legacy global-state NumPy RNG entry points (unseeded by construction —
#: they mutate a hidden process-wide state no test can pin).
_NUMPY_GLOBAL_RNG = frozenset(
    f"numpy.random.{name}"
    for name in (
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "seed",
        "bytes",
    )
)

#: Module-level ``random.*`` functions (same hidden global state).
_STDLIB_GLOBAL_RNG = frozenset(
    f"random.{name}"
    for name in (
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "seed",
    )
)


@register
class UnseededRngRule(Rule):
    code = "RPL001"
    name = "unseeded-rng"
    summary = (
        "RNG must be seeded: no bare default_rng()/random.Random() and no "
        "global-state numpy.random.* / random.* calls"
    )
    contract = (
        "determinism — every sample, shuffled workload and GEQO population "
        "must be a pure function of an explicit seed, or re-running a query "
        "can silently produce a different Γ and a different plan "
        "(runtime guard: the bit-identity property suites and the seeded "
        "make_rng test fixture)"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = qualified_name(node.func, aliases)
            if target is None:
                continue
            message = None
            if target == "numpy.random.default_rng":
                if not node.args and not any(
                    keyword.arg == "seed" for keyword in node.keywords
                ):
                    message = (
                        "np.random.default_rng() without a seed is entropy-"
                        "seeded; pass an explicit seed"
                    )
            elif target == "random.Random":
                if not node.args:
                    message = (
                        "random.Random() without a seed is entropy-seeded; "
                        "pass an explicit seed"
                    )
            elif target in _NUMPY_GLOBAL_RNG:
                message = (
                    f"{target} draws from the hidden global NumPy RNG; use a "
                    "seeded np.random.default_rng(seed) generator"
                )
            elif target in _STDLIB_GLOBAL_RNG:
                message = (
                    f"{target} draws from the hidden global stdlib RNG; use "
                    "a seeded random.Random(seed) instance"
                )
            if message is not None:
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    message,
                )


def _unwrap_order_transparent(node: ast.expr) -> ast.expr:
    """Strip wrappers that forward their argument's iteration order."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "enumerate", "reversed", "iter")
        and node.args
    ):
        node = node.args[0]
    return node


def _is_set_producing(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@register
class UnorderedIterationRule(Rule):
    code = "RPL002"
    name = "unordered-iteration"
    summary = (
        "no iteration over set-producing expressions in plan-enumeration / "
        "merge modules without an explicit sorted(...)"
    )
    contract = (
        "determinism — plan enumeration (DP subset expansion, GEQO pools) "
        "and result merges must visit candidates in a content-defined order; "
        "set iteration order depends on insertion history and PYTHONHASHSEED "
        "for strings, so an unsorted loop can pick a different tie-breaking "
        "plan between runs (runtime guard: golden-plan suite and plan-"
        "stability property tests)"
    )
    scope_prefixes = (
        "src/repro/plans",
        "src/repro/optimizer",
        "src/repro/relalg",
        "src/repro/reopt",
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for target in iteration_targets(context.tree):
            candidate = _unwrap_order_transparent(target)
            if _is_set_producing(candidate):
                yield Diagnostic(
                    context.path.as_posix(),
                    candidate.lineno,
                    candidate.col_offset,
                    self.code,
                    "iterating a set-producing expression has hash-dependent "
                    "order; wrap it in sorted(...) before feeding plan "
                    "enumeration or a result merge",
                )


def _is_dict_view(node: ast.expr) -> bool:
    """An argless ``.keys()`` / ``.values()`` / ``.items()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


@register
class UnorderedShardIterationRule(Rule):
    code = "RPL011"
    name = "unordered-shard-iteration"
    summary = (
        "shard/merge loops in the scatter-gather coordinator and merge "
        "kernels must iterate in canonical sorted order — no bare dict-view "
        "or set iteration"
    )
    contract = (
        "determinism — the sharded coordinator's bit-identity guarantee "
        "rests on visiting shards and merging partials in canonical sorted "
        "shard-id order; a loop over a dict view reflects insertion (i.e. "
        "arrival) history and a set loop is hash-dependent, so either can "
        "reorder a merge or a Γ-gossip broadcast between runs (runtime "
        "guard: the sharded-vs-single-node bit-identity suites)"
    )
    #: File-scoped, not directory-scoped: exactly the modules whose loop
    #: order the merge-determinism proof depends on.
    scope_files = (
        "src/repro/service/coordinator.py",
        "src/repro/service/sharding.py",
        "src/repro/relalg/aggregate.py",
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        text = path.as_posix()
        return any(
            text == scoped or text.endswith("/" + scoped)
            for scoped in self.scope_files
        )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for target in iteration_targets(context.tree):
            candidate = _unwrap_order_transparent(target)
            if _is_set_producing(candidate) or _is_dict_view(candidate):
                what = (
                    "a dict view (insertion-order)"
                    if _is_dict_view(candidate)
                    else "a set-producing expression (hash-order)"
                )
                yield Diagnostic(
                    context.path.as_posix(),
                    candidate.lineno,
                    candidate.col_offset,
                    self.code,
                    f"iterating {what} in a shard/merge module; visit shards "
                    "and merge inputs in canonical sorted order "
                    "(sorted(...), or an explicitly ordered list)",
                )


#: Wall-clock entry points banned inside kernel task bodies.
_WALL_CLOCK = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )
)


@register
class WallClockInKernelRule(Rule):
    code = "RPL003"
    name = "wallclock-in-kernel"
    summary = "no wall-clock reads inside *_task kernel bodies"
    contract = (
        "determinism — kernel task bodies run on worker processes and their "
        "return values are merged into query results; a wall-clock read "
        "inside one makes the result (or a control-flow decision) depend on "
        "scheduling, breaking serial/parallel bit-identity.  Timing belongs "
        "to the scheduler, which already stamps every task (runtime guard: "
        "serial-vs-parallel equivalence suites)"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or not node.name.endswith("_task"):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                target = qualified_name(inner.func, aliases)
                if target in _WALL_CLOCK:
                    yield Diagnostic(
                        context.path.as_posix(),
                        inner.lineno,
                        inner.col_offset,
                        self.code,
                        f"{target} inside kernel task body {node.name!r}; "
                        "task results must not depend on when or where the "
                        "task ran — time on the scheduler side instead",
                    )
