"""Shared-memory lifecycle rules: RPL006 (segment creation outside the
registry) and RPL007 (raw ``.unlink()`` outside the registry).

``src/repro/relalg/shm.py`` is the single module allowed to create or
unlink ``multiprocessing.shared_memory`` segments: every segment goes
through the refcounting :class:`~repro.relalg.shm.SegmentRegistry` so that
``TaskScheduler.close()`` can enumerate and force-unlink whatever is still
alive, and the leak tests can audit the ledger against ``/dev/shm``.  A
segment created (or unlinked) anywhere else is invisible to that ledger —
the exact class of leak the lifecycle tests only catch after the fact.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.astutils import call_keyword, import_aliases, is_constant, qualified_name
from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register

_SHM_MODULE = "src/repro/relalg/shm.py"


def _is_shared_memory_call(node: ast.Call, aliases: dict) -> bool:
    target = qualified_name(node.func, aliases)
    if target is not None:
        return target.endswith("shared_memory.SharedMemory") or target == (
            "multiprocessing.shared_memory.SharedMemory"
        )
    # Unresolvable root but the terminal name is unmistakable.
    func = node.func
    return (
        isinstance(func, ast.Attribute) and func.attr == "SharedMemory"
    ) or (isinstance(func, ast.Name) and func.id == "SharedMemory")


@register
class ShmCreateOutsideRegistryRule(Rule):
    code = "RPL006"
    name = "shm-create-outside-registry"
    summary = (
        "SharedMemory(create=True) only inside relalg/shm.py "
        "(SegmentRegistry.create is the one factory)"
    )
    contract = (
        "shm lifecycle — a segment created outside SegmentRegistry.create "
        "is missing from the refcount ledger, so arenas cannot release it "
        "and TaskScheduler.close() cannot force-unlink it: a guaranteed "
        "/dev/shm leak on any non-happy path (runtime guard: the lifecycle "
        "tests' registry-ledger and /dev/shm audits, which only fire for "
        "code paths the tests happen to execute)"
    )
    scope_skip = (_SHM_MODULE,)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_shared_memory_call(node, aliases):
                continue
            create = call_keyword(node, "create")
            positional_create = node.args[1] if len(node.args) > 1 else None
            if is_constant(create, True) or is_constant(positional_create, True):
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    "SharedMemory(create=True) outside relalg/shm.py "
                    "bypasses the SegmentRegistry ledger; create segments "
                    "through an ShmArena / SegmentRegistry.create",
                )


@register
class RawUnlinkRule(Rule):
    code = "RPL007"
    name = "raw-unlink"
    summary = ".unlink() only inside relalg/shm.py (release via the registry)"
    contract = (
        "shm lifecycle — the registry refcounts attachments; a raw "
        ".unlink() elsewhere either double-unlinks (FileNotFoundError races "
        "in workers) or unlinks a segment another arena still references, "
        "invalidating live zero-copy views (runtime guard: the crash/"
        "exception leak-freedom tests)"
    )
    scope_skip = (_SHM_MODULE,)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
            ):
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    ".unlink() outside relalg/shm.py; release segments "
                    "through SegmentRegistry.release / ShmArena scope exit "
                    "(or Path.unlink via os.remove for regular files)",
                )
