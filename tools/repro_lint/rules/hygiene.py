"""Hygiene rule: RPL010 — no mutable default arguments.

A mutable default is shared across every call of the function: state leaks
between queries, between benchmark repetitions, and — worst for this
codebase — between the serial and parallel runs a bit-identity test
compares, making the second run see the first run's accumulations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "bytearray")
    )


@register
class MutableDefaultRule(Rule):
    code = "RPL010"
    name = "mutable-default"
    summary = "no mutable default arguments (list/dict/set literals or calls)"
    contract = (
        "determinism + isolation — a mutable default is one object shared "
        "by every call, so state from one query/run leaks into the next; "
        "use None and construct inside the body (runtime guard: whichever "
        "property test happens to run the function twice)"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Diagnostic(
                        context.path.as_posix(),
                        default.lineno,
                        default.col_offset,
                        self.code,
                        f"mutable default argument in {name!r} is shared "
                        "across calls; default to None and build the "
                        "container in the body",
                    )
