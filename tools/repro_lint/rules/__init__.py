"""Rule modules — importing this package registers every rule."""

from __future__ import annotations

from repro_lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    float_order,
    hygiene,
    picklability,
    shm_lifecycle,
    typing_gate,
)
