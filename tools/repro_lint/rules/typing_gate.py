"""Typing gate: RPL009 — every function in ``src/repro`` (and repro-lint
itself) carries complete parameter and return annotations.

This is the locally runnable half of the strict-typing contract: CI runs
``mypy --strict src/repro`` (which additionally type-*checks* the
annotations), but mypy is a dev-only dependency — this rule keeps the
"fully annotated" floor enforceable with the stdlib alone, so a module can
never regress to implicit-``Any`` signatures between mypy runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register


def _missing_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> List[str]:
    missing: List[str] = []
    args = node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


@register
class MissingAnnotationsRule(Rule):
    code = "RPL009"
    name = "typing-gate"
    summary = (
        "every function in src/repro and tools/repro_lint must annotate all "
        "parameters and the return type"
    )
    contract = (
        "strict typing — mypy --strict (the CI gate) treats an unannotated "
        "function body as unchecked Any soup; this rule keeps the fully-"
        "annotated floor enforceable locally with the stdlib alone, so "
        "signature regressions are caught even where mypy is not installed"
    )
    scope_prefixes = ("src/repro", "tools/repro_lint", "repro_lint")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(node)
            if missing:
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    f"function {node.name!r} is missing annotations for: "
                    + ", ".join(missing),
                )
