"""Picklability rules: RPL004 (non-top-level kernel callables) and RPL005
(Relation objects in task signatures).

The process tier ships kernel tasks as ``pickle.dumps((fn, payload))``: the
function travels by module reference, the payload by value.  Both halves
have a contract — ``fn`` must be importable by name from a worker process,
and payloads must be descriptor-sized (shm handles plus scalars), never
materialised columns.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register

#: Type names that mark a materialised-relation parameter.
_RELATION_TYPE_NAMES = ("Relation", "ChunkedRelation", "Table")
_RELATION_TYPE_RE = re.compile(
    r"\b(" + "|".join(_RELATION_TYPE_NAMES) + r")\b"
)


def _function_scopes(
    tree: ast.Module,
) -> List[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Every node paired with its chain of enclosing function definitions."""
    out: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = []

    def visit(node: ast.AST, stack: Tuple[ast.AST, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            out.append((child, stack))
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(child, stack + (child,))
            else:
                visit(child, stack)

    visit(tree, ())
    return out


def _locally_defined_functions(scope: ast.AST) -> Set[str]:
    """Names bound to functions *directly inside* one function scope."""
    names: Set[str] = set()
    for child in ast.walk(scope):
        if child is scope:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(child.name)
        elif isinstance(child, ast.Assign) and isinstance(child.value, ast.Lambda):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class NonPicklableKernelRule(Rule):
    code = "RPL004"
    name = "nonpicklable-kernel"
    summary = (
        "callables passed to map_kernel must be top-level module functions "
        "(no lambdas, closures or bound methods)"
    )
    contract = (
        "picklability — the process tier pickles (fn, payload) by module "
        "reference; a lambda, closure or bound method fails pickling and "
        "silently degrades the whole batch to serial inline execution, "
        "erasing the parallel speedup without failing any correctness test "
        "(runtime guard: the scheduler's unpicklable-task fallback plus the "
        "parallel-runtime benchmark gate that would eventually notice)"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node, stack in _function_scopes(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_map_kernel = (
                isinstance(func, ast.Attribute) and func.attr == "map_kernel"
            ) or (isinstance(func, ast.Name) and func.id == "map_kernel")
            if not is_map_kernel or not node.args:
                continue
            kernel = node.args[0]
            reason = None
            if isinstance(kernel, ast.Lambda):
                reason = "a lambda cannot be pickled by module reference"
            elif isinstance(kernel, ast.Attribute):
                reason = (
                    "an attribute reference (bound method / object field) is "
                    "not a top-level module function"
                )
            elif isinstance(kernel, ast.Name):
                enclosing = [
                    scope
                    for scope in stack
                    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                if any(
                    kernel.id in _locally_defined_functions(scope)
                    for scope in enclosing
                ):
                    reason = (
                        f"{kernel.id!r} is defined inside an enclosing "
                        "function (a closure); move it to module top level"
                    )
            if reason is not None:
                yield Diagnostic(
                    context.path.as_posix(),
                    kernel.lineno,
                    kernel.col_offset,
                    self.code,
                    f"map_kernel callable must be a picklable top-level "
                    f"function: {reason}",
                )


def _annotation_names(annotation: ast.expr) -> str:
    """Flatten an annotation expression to searchable text."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    return ast.unparse(annotation)


@register
class RelationInTaskRule(Rule):
    code = "RPL005"
    name = "relation-in-task"
    summary = (
        "*_task kernel bodies must take descriptor payloads, never "
        "Relation/ChunkedRelation/Table parameters"
    )
    contract = (
        "picklability + zero-copy — a Relation parameter in a task signature "
        "means whole columns get pickled through the task queue instead of "
        "crossing once via shared-memory descriptors, reintroducing the "
        "per-task copy cost the shm runtime exists to remove (runtime "
        "guard: the parallel-runtime benchmark gate; the result would be "
        "correct, just quietly slow)"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or not node.name.endswith("_task"):
                continue
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is None:
                    continue
                text = _annotation_names(arg.annotation)
                match = _RELATION_TYPE_RE.search(text)
                if match is not None:
                    yield Diagnostic(
                        context.path.as_posix(),
                        arg.annotation.lineno,
                        arg.annotation.col_offset,
                        self.code,
                        f"kernel task {node.name!r} takes a "
                        f"{match.group(1)} parameter {arg.arg!r}; ship a "
                        "shared-memory descriptor payload and attach inside "
                        "the task instead",
                    )
