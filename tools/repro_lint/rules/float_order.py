"""Float-order rule: RPL008 — float reduction primitives only inside the
canonical aggregation module.

Floating-point addition is not associative: the same values summed in a
different order give a different last bit.  The reproduction's
serial/parallel bit-identity therefore hinges on *one* accumulation order,
implemented once in ``src/repro/relalg/aggregate.py`` (per-group
``reduceat`` over boundary-sorted values; chunk partials merged by
``np.concatenate``, never re-reduced).  A second ``reduceat`` / ``fsum``
call site elsewhere is someone re-implementing grouped float reduction with
its own order — exactly the drift the kernel-equivalence suites exist to
catch at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.astutils import import_aliases, qualified_name
from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, register

#: Order-sensitive (or order-redefining) reduction entry points.
_BANNED_QUALIFIED = frozenset(
    (
        "math.fsum",
        "numpy.nansum",
        "numpy.nanmean",
        "numpy.einsum",
    )
)


@register
class FloatReductionOutsideHelpersRule(Rule):
    code = "RPL008"
    name = "float-order"
    summary = (
        "float reduction primitives (*.reduceat, math.fsum, np.nansum) only "
        "inside relalg/aggregate.py's canonical helpers"
    )
    contract = (
        "float order — cross-chunk float aggregation must go through the "
        "canonical reduceat/merge helpers so accumulation order is a pure "
        "function of the data; an ad-hoc reduction elsewhere picks its own "
        "order and breaks serial/parallel bit-identity in the last ulp "
        "(runtime guard: kernel-equivalence and adaptive-morsel bit-"
        "identity property tests)"
    )
    scope_prefixes = ("src/repro",)
    scope_skip = ("src/repro/relalg/aggregate.py",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "reduceat":
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    "reduceat outside relalg/aggregate.py re-implements "
                    "grouped reduction with its own accumulation order; use "
                    "group_aggregate / the canonical helpers",
                )
                continue
            target = qualified_name(func, aliases)
            if target in _BANNED_QUALIFIED:
                yield Diagnostic(
                    context.path.as_posix(),
                    node.lineno,
                    node.col_offset,
                    self.code,
                    f"{target} uses a different accumulation/rounding order "
                    "than the canonical reduceat helpers; route float "
                    "aggregation through relalg/aggregate.py",
                )
