"""Command-line interface: ``python -m repro_lint <paths>``."""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional, Sequence

from repro_lint.engine import lint_paths
from repro_lint.registry import all_rules


def _parse_codes(value: str) -> List[str]:
    return [code.strip() for code in value.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description=(
            "AST-based invariant checker for the determinism / shared-memory "
            "/ picklability / typing contracts of this reproduction.  Exits "
            "1 when any diagnostic is emitted."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "tests"],
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--select",
        type=_parse_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RPL001,RPL002)",
    )
    parser.add_argument(
        "--ignore",
        type=_parse_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (code, name, contract) and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-code diagnostic count summary",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(rule.describe())
            print(f"    protects: {rule.contract}")
        return 0

    try:
        diagnostics = lint_paths(
            options.paths, select=options.select, ignore=options.ignore
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    for diagnostic in diagnostics:
        print(diagnostic.render())
    if options.statistics and diagnostics:
        print()
        for code, count in sorted(Counter(d.code for d in diagnostics).items()):
            print(f"{code}: {count}")
    if diagnostics:
        print(
            f"\nrepro-lint: {len(diagnostics)} diagnostic"
            f"{'s' if len(diagnostics) != 1 else ''} "
            "(suppress a line with '# repro-lint: ignore[CODE]')",
            file=sys.stderr,
        )
        return 1
    return 0
