"""Diagnostic records emitted by repro-lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a file/line/column location plus a stable rule code.

    Ordering is (path, line, col, code) so reports are deterministic
    regardless of rule registration or visiting order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line report form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
