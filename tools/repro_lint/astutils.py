"""Shared AST helpers: import-alias resolution and small predicates."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import name to its fully qualified origin.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.  Imports anywhere in the
    file (including function-local ones) are collected: alias resolution is
    deliberately flow-insensitive.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                bound = item.asname or item.name.split(".", 1)[0]
                target = item.name if item.asname else item.name.split(".", 1)[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:  # relative imports: opaque
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def qualified_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.default_rng``-style expressions to dotted origins.

    Returns ``None`` when the root is not an imported name (locals, call
    results, subscripts …) — rules treat unresolvable roots as out of scope
    rather than guessing.
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.expr], value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield every function/class definition with its enclosing-scope stack.

    The stack contains the chain of ``Module``/``ClassDef``/``FunctionDef``
    nodes *above* the yielded definition, outermost first.
    """

    def visit(node: ast.AST, stack: Tuple[ast.AST, ...]) -> Iterator[
        Tuple[ast.AST, Tuple[ast.AST, ...]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield child, stack
                yield from visit(child, stack + (child,))
            else:
                yield from visit(child, stack)

    yield from visit(tree, (tree,))


def iteration_targets(tree: ast.Module) -> Iterator[ast.expr]:
    """Every expression some construct *iterates over*: ``for`` loop iters
    and comprehension generator iters."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                yield generator.iter
