"""repro-lint: AST-based invariant checker for the reproduction's contracts.

The runtime property suites (bit-identity, shm leak-freedom, picklability
round-trips) catch contract violations *after* they ship into a hot path;
this package catches them at review time.  Each rule encodes one invariant
the runtime tests otherwise guard dynamically:

* **determinism** — plans and merged results must be pure functions of the
  inputs (no unseeded RNG, no hash-order iteration feeding plan enumeration
  or result merges, no wall-clock reads inside kernel task bodies);
* **picklability** — everything crossing the process boundary must survive
  ``pickle.dumps`` by module reference (top-level task functions, descriptor
  payloads — never :class:`~repro.relalg.relation.Relation` objects);
* **shm lifecycle** — every ``multiprocessing.shared_memory`` segment is
  created through the :class:`~repro.relalg.shm.SegmentRegistry` and only
  the registry ever unlinks;
* **float order** — float aggregation across chunks goes through the
  canonical ``reduceat``/concatenate helpers so accumulation order (and
  therefore every bit of the result) never depends on the worker count;
* **typing** — ``src/repro`` stays fully annotated (the local gate behind
  the CI ``mypy --strict`` sweep).

Run ``python -m repro_lint <paths>`` from the repository root; see
``python -m repro_lint --list-rules`` for the rule catalogue and the README
section *Invariants & static checks* for the contract each code protects.
"""

from __future__ import annotations

from repro_lint.diagnostics import Diagnostic
from repro_lint.engine import lint_paths, lint_source
from repro_lint.registry import REGISTRY, Rule, all_rules, rule_for_code

__version__ = "0.1.0"

__all__ = [
    "Diagnostic",
    "REGISTRY",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule_for_code",
    "__version__",
]
