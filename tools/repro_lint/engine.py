"""File discovery, suppression handling and rule execution."""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path, PurePosixPath
from typing import Iterable, List, Optional, Sequence, Set, Type

from repro_lint.diagnostics import Diagnostic
from repro_lint.registry import FileContext, Rule, all_rules

#: Directories never walked into (fixtures hold *intentional* violations).
DEFAULT_EXCLUDED_DIRS = frozenset(
    ("__pycache__", ".git", ".venv", "build", "dist", ".mypy_cache")
)
DEFAULT_EXCLUDED_SUFFIXES = ("tests/lint/fixtures",)

#: ``# repro-lint: ignore`` or ``# repro-lint: ignore[RPL001,RPL002]``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


def _suppressed_codes(line: str) -> Optional[Set[str]]:
    """Codes suppressed on ``line`` (empty set = all codes), else ``None``."""
    match = _SUPPRESSION_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip() for code in codes.split(",") if code.strip()}


def _is_suppressed(diagnostic: Diagnostic, lines: Sequence[str]) -> bool:
    if not 1 <= diagnostic.line <= len(lines):
        return False
    codes = _suppressed_codes(lines[diagnostic.line - 1])
    if codes is None:
        return False
    return not codes or diagnostic.code in codes


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Type[Rule]]:
    """The rule classes active under ``--select`` / ``--ignore`` filters."""
    rules = all_rules()
    known = {rule.code for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ValueError(f"unknown rule code {requested!r}")
    if select is not None:
        wanted = set(select)
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore is not None:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def lint_source(
    source: str,
    path: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint one in-memory source under a (possibly virtual) path.

    ``path`` drives rule scoping, so the fixture tests can exercise a
    path-scoped rule by passing e.g. ``src/repro/plans/_fixture.py``.
    """
    posix = PurePosixPath(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                posix.as_posix(),
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "RPL000",
                f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    context = FileContext(path=posix, tree=tree, source=source, lines=lines)
    diagnostics: List[Diagnostic] = []
    for rule_class in select_rules(select, ignore):
        rule = rule_class()
        if not rule.applies_to(posix):
            continue
        for diagnostic in rule.check(context):
            if not _is_suppressed(diagnostic, lines):
                diagnostics.append(diagnostic)
    return sorted(diagnostics)


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directory walks skip :data:`DEFAULT_EXCLUDED_DIRS` and anything under a
    :data:`DEFAULT_EXCLUDED_SUFFIXES` directory (the lint fixtures, which
    contain violations on purpose); explicitly passed files are always
    linted, exclusions notwithstanding.
    """
    discovered: Set[str] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            discovered.add(path.as_posix())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for dirpath, dirnames, filenames in os.walk(path):
            posix_dir = PurePosixPath(Path(dirpath).as_posix()).as_posix()
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in DEFAULT_EXCLUDED_DIRS
                and not _excluded_dir(f"{posix_dir}/{name}")
            )
            if _excluded_dir(posix_dir):
                continue
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    discovered.add(f"{posix_dir}/{filename}")
    return sorted(discovered)


def _excluded_dir(posix_dir: str) -> bool:
    normalized = posix_dir.rstrip("/")
    return any(
        normalized.endswith(suffix) or (suffix + "/") in (normalized + "/")
        for suffix in DEFAULT_EXCLUDED_SUFFIXES
    )


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; sorted diagnostics."""
    diagnostics: List[Diagnostic] = []
    for file_path in discover_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        diagnostics.extend(lint_source(text, file_path, select, ignore))
    return sorted(diagnostics)
