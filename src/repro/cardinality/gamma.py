"""Γ — the store of sampling-validated cardinalities (Algorithm 1).

Algorithm 1 maintains a set Γ of cardinality estimates that have been
validated by sampling.  Each entry maps a *join set* — the set of relation
aliases joined together (local predicates of the query applied) — to the
validated number of rows.  Singleton sets record validated base-table
cardinalities after their local selections.

Γ only ever grows during re-optimization (``Γ ← Γ ∪ Δ_i``); when the same
join set is re-validated the newer estimate wins, which is what "merging"
means operationally.

Entries carry a **provenance** rank: *sampled* entries come from validating
plans over the sample tables (the paper's Δ), *exact* entries are true
cardinalities observed by actually executing a (sub-)plan — the adaptive
executor records one for every pipeline it completes.  An exact entry
outranks every sampled entry for the same join set: merging a sampled Δ
never overwrites an exact value, while recording an exact value always
wins (and re-recording a different exact value for the same join set keeps
the newest, which only happens when the underlying data changed).

Γ is also *versioned*: every mutation that actually changes a stored value
bumps a monotone epoch counter and remembers the epoch at which each join set
last changed.  ``changed_since(epoch)`` returns the dirty join sets, which is
what lets the incremental DP planner re-expand only the affected subsets of
the search space instead of re-running the whole System-R enumeration every
re-optimization round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

#: A join set: the relation aliases joined together.
JoinSet = FrozenSet[str]


@dataclass
class Gamma:
    """Validated cardinalities keyed by join set."""

    _cardinalities: Dict[JoinSet, float] = field(default_factory=dict)
    #: Monotone version counter; bumped whenever a stored value changes.
    _epoch: int = 0
    #: Epoch at which each join set last changed (added or re-valued).
    _changed_at: Dict[JoinSet, int] = field(default_factory=dict)
    #: Join sets whose stored value is an exact (executed) cardinality.
    _exact: Set[JoinSet] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Versioning
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Current version; strictly increases whenever an entry changes."""
        return self._epoch

    def changed_since(self, epoch: int) -> FrozenSet[JoinSet]:
        """Join sets whose value changed after ``epoch`` (the dirty set).

        A re-validation that stored the same float does not dirty the entry,
        so a fixed-point round reports an empty dirty set and the incremental
        planner re-expands nothing.
        """
        return frozenset(
            key for key, changed in self._changed_at.items() if changed > epoch
        )

    def _store(self, key: JoinSet, value: float, exact: bool = False) -> None:
        if not exact and key in self._exact:
            # A sampled estimate never downgrades an exact observation.
            return
        if self._cardinalities.get(key) != value:
            self._epoch += 1
            self._changed_at[key] = self._epoch
        self._cardinalities[key] = value
        if exact:
            self._exact.add(key)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def record(self, relations: Iterable[str], cardinality: float, exact: bool = False) -> None:
        """Record (or overwrite) the validated cardinality of one join set.

        ``exact=True`` marks the entry as a true executed cardinality, which
        from then on outranks any sampled re-validation of the same join set.
        """
        key = frozenset(relations)
        if not key:
            raise ValueError("cannot record a cardinality for an empty join set")
        self._store(key, float(cardinality), exact=exact)

    def record_exact(self, relations: Iterable[str], cardinality: float) -> None:
        """Record a true cardinality observed by executing the join set."""
        self.record(relations, cardinality, exact=True)

    def merge(self, delta: Mapping[JoinSet, float] | "Gamma") -> int:
        """Merge ``delta`` into Γ; return how many entries were new.

        The return value drives the coverage argument: a plan whose validation
        adds zero new entries is covered by the earlier plans (Theorem 1).
        Merging a :class:`Gamma` preserves each entry's provenance; merging a
        plain mapping treats every entry as sampled, so existing exact entries
        keep their values.
        """
        if isinstance(delta, Gamma):
            items: Iterable[Tuple[JoinSet, float, bool]] = [
                (key, value, key in delta._exact)
                for key, value in delta._cardinalities.items()
            ]
        else:
            items = [(frozenset(key), value, False) for key, value in delta.items()]
        newly_added = 0
        for key, value, exact in items:
            if key not in self._cardinalities:
                newly_added += 1
            self._store(key, float(value), exact=exact)
        return newly_added

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, relations: Iterable[str]) -> Optional[float]:
        """Return the validated cardinality of a join set, or None if unknown."""
        return self._cardinalities.get(frozenset(relations))

    def is_exact(self, relations: Iterable[str]) -> bool:
        """True when the join set's stored value is an executed cardinality."""
        return frozenset(relations) in self._exact

    def exact_join_sets(self) -> FrozenSet[JoinSet]:
        """All join sets whose stored cardinality is exact."""
        return frozenset(self._exact)

    def __contains__(self, relations: Iterable[str]) -> bool:
        return frozenset(relations) in self._cardinalities

    def __len__(self) -> int:
        return len(self._cardinalities)

    def __iter__(self) -> Iterator[JoinSet]:
        return iter(self._cardinalities)

    def items(self) -> Iterable[Tuple[JoinSet, float]]:
        """Iterate over (join set, cardinality) pairs."""
        return self._cardinalities.items()

    def copy(self) -> "Gamma":
        """Return an independent copy (used by what-if experiments)."""
        clone = Gamma()
        clone._cardinalities = dict(self._cardinalities)
        clone._epoch = self._epoch
        clone._changed_at = dict(self._changed_at)
        clone._exact = set(self._exact)
        return clone

    def covered_join_sets(self) -> FrozenSet[JoinSet]:
        """All join sets with a validated cardinality."""
        return frozenset(self._cardinalities)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(
            f"{{{','.join(sorted(k))}}}={v:.1f}" for k, v in sorted(
                self._cardinalities.items(), key=lambda item: (len(item[0]), sorted(item[0]))
            )
        )
        return f"Gamma({entries})"
