"""The sampling-based cardinality estimator of Haas et al. (Section 2.1).

For a join query ``q = R1 ⋈ ... ⋈ RK`` the estimator runs the join over the
per-table samples ``R1s ... RKs`` and scales the observed cardinality back up:

    |q|_hat = |R1s ⋈ ... ⋈ RKs| * (|R1| / |R1s|) * ... * (|RK| / |RKs|)

which is exactly ``rho_hat * |R1| * ... * |RK|`` with ``rho_hat`` the paper's
selectivity estimator.  The estimator is unbiased and strongly consistent for
Bernoulli samples.  Local predicates of the query are applied to the samples
before joining, so the same machinery also yields validated base-table
(selection) cardinalities.

``validate_plan`` is the entry point Algorithm 1 uses: it computes the
sampling estimate for every join appearing in a plan (plus the scanned base
relations) and returns them as a Δ mapping ready to be merged into Γ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cardinality.gamma import JoinSet
from repro.errors import SamplingError
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.sql.ast import JoinPredicate, LocalPredicate, Query
from repro.storage.catalog import Database
from repro.storage.sampling import SampleSet


def _apply_local_predicates(
    columns: Dict[str, np.ndarray], alias: str, predicates: Sequence[LocalPredicate]
) -> Dict[str, np.ndarray]:
    """Filter a column mapping by the conjunction of local predicates."""
    if not predicates:
        return columns
    num_rows = len(next(iter(columns.values()))) if columns else 0
    mask = np.ones(num_rows, dtype=bool)
    for predicate in predicates:
        values = columns[f"{alias}.{predicate.column}"]
        if predicate.op == "=":
            mask &= values == predicate.value
        elif predicate.op == "<>":
            mask &= values != predicate.value
        elif predicate.op == "<":
            mask &= values < predicate.value
        elif predicate.op == "<=":
            mask &= values <= predicate.value
        elif predicate.op == ">":
            mask &= values > predicate.value
        else:
            mask &= values >= predicate.value
    return {name: array[mask] for name, array in columns.items()}


def _join_columns(
    left: Dict[str, np.ndarray],
    right: Dict[str, np.ndarray],
    predicates: Sequence[JoinPredicate],
    left_aliases: FrozenSet[str],
) -> Dict[str, np.ndarray]:
    """Hash-join two column mappings on the given equi-join predicates."""
    left_rows = len(next(iter(left.values()))) if left else 0
    right_rows = len(next(iter(right.values()))) if right else 0
    if left_rows == 0 or right_rows == 0:
        return {name: array[:0] for name, array in {**left, **right}.items()}
    if not predicates:
        # Cross product (should be rare: only for disconnected join graphs).
        left_index = np.repeat(np.arange(left_rows), right_rows)
        right_index = np.tile(np.arange(right_rows), left_rows)
    else:
        first, *rest = predicates
        if first.left_alias in left_aliases:
            left_key = left[f"{first.left_alias}.{first.left_column}"]
            right_key = right[f"{first.right_alias}.{first.right_column}"]
        else:
            left_key = left[f"{first.right_alias}.{first.right_column}"]
            right_key = right[f"{first.left_alias}.{first.left_column}"]
        order = np.argsort(right_key, kind="stable")
        sorted_right = right_key[order]
        starts = np.searchsorted(sorted_right, left_key, side="left")
        ends = np.searchsorted(sorted_right, left_key, side="right")
        counts = ends - starts
        left_index = np.repeat(np.arange(left_rows), counts)
        if counts.sum() == 0:
            right_index = np.empty(0, dtype=np.int64)
        else:
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            positions = np.arange(counts.sum()) - np.repeat(offsets, counts)
            right_index = order[np.repeat(starts, counts) + positions]
        # Apply remaining predicates as residual filters on the matched pairs.
        for predicate in rest:
            if predicate.left_alias in left_aliases:
                left_values = left[f"{predicate.left_alias}.{predicate.left_column}"][left_index]
                right_values = right[f"{predicate.right_alias}.{predicate.right_column}"][right_index]
            else:
                left_values = left[f"{predicate.right_alias}.{predicate.right_column}"][left_index]
                right_values = right[f"{predicate.left_alias}.{predicate.left_column}"][right_index]
            keep = left_values == right_values
            left_index = left_index[keep]
            right_index = right_index[keep]
    result: Dict[str, np.ndarray] = {}
    for name, array in left.items():
        result[name] = array[left_index]
    for name, array in right.items():
        result[name] = array[right_index]
    return result


@dataclass
class SamplingValidation:
    """The Δ of one validation round: cardinalities plus bookkeeping."""

    cardinalities: Dict[JoinSet, float] = field(default_factory=dict)
    #: Wall-clock seconds spent running plans over samples in this round.
    elapsed_seconds: float = 0.0
    #: Number of distinct join sets evaluated over samples.
    joins_validated: int = 0


class SamplingEstimator:
    """Run (sub-)joins of a query over sample tables and scale the counts up."""

    def __init__(self, db: Database, query: Query, samples: Optional[SampleSet] = None) -> None:
        self.db = db
        self.query = query
        self.samples = samples if samples is not None else db.samples
        if self.samples is None:
            raise SamplingError(
                "no sample tables available; call Database.create_samples() first"
            )
        #: Cache of filtered sample columns per alias.
        self._filtered_cache: Dict[str, Dict[str, np.ndarray]] = {}
        #: Cache of sampling estimates per join set (samples are fixed, so the
        #: estimate for a join set never changes within one re-optimization).
        self._estimate_cache: Dict[JoinSet, float] = {}

    # ------------------------------------------------------------------ #
    # Sample-side evaluation
    # ------------------------------------------------------------------ #
    def _filtered_sample(self, alias: str) -> Dict[str, np.ndarray]:
        """The sample of ``alias`` with the query's local predicates applied."""
        if alias in self._filtered_cache:
            return self._filtered_cache[alias]
        table_name = self.query.table_for_alias(alias)
        sample = self.samples.sample_for(table_name)
        columns = {f"{alias}.{name}": sample.column(name) for name in sample.column_names}
        filtered = _apply_local_predicates(
            columns, alias, self.query.local_predicates_for(alias)
        )
        self._filtered_cache[alias] = filtered
        return filtered

    def _sample_join_count(self, aliases: FrozenSet[str]) -> int:
        """Number of rows the join of ``aliases`` produces over the samples."""
        ordered = self._join_order(aliases)
        current = dict(self._filtered_sample(ordered[0]))
        included = frozenset({ordered[0]})
        for alias in ordered[1:]:
            predicates = self.query.join_predicates_between(included, {alias})
            current = _join_columns(current, self._filtered_sample(alias), predicates, included)
            included = included | {alias}
            if not current or len(next(iter(current.values()))) == 0:
                return 0
        return len(next(iter(current.values()))) if current else 0

    def _join_order(self, aliases: FrozenSet[str]) -> List[str]:
        """Order the aliases so each one (after the first) joins what came before.

        A breadth-first traversal of the query's join graph restricted to the
        requested aliases; relations unreachable through join predicates are
        appended at the end (they contribute a cross product).
        """
        graph = self.query.join_graph().subgraph(aliases)
        remaining = set(aliases)
        ordered: List[str] = []
        while remaining:
            start = sorted(remaining)[0]
            frontier = [start]
            seen = {start}
            while frontier:
                node = frontier.pop(0)
                ordered.append(node)
                remaining.discard(node)
                for neighbor in sorted(graph.neighbors(node)):
                    if neighbor in remaining and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
        return ordered

    # ------------------------------------------------------------------ #
    # Public estimation API
    # ------------------------------------------------------------------ #
    def estimate_cardinality(self, aliases: Iterable[str]) -> float:
        """Sampling-based estimate of the join of ``aliases`` on the full data."""
        key = frozenset(aliases)
        if not key:
            raise ValueError("join set must contain at least one relation")
        if key in self._estimate_cache:
            return self._estimate_cache[key]
        observed = self._sample_join_count(key)
        scale = 1.0
        for alias in key:
            table_name = self.query.table_for_alias(alias)
            scale *= self.samples.scale_factor(table_name)
        estimate = observed * scale
        self._estimate_cache[key] = estimate
        return estimate

    def estimate_selectivity(self, aliases: Iterable[str]) -> float:
        """The paper's rho_hat: sample join size over the product of sample sizes."""
        key = frozenset(aliases)
        observed = self._sample_join_count(key)
        denominator = 1.0
        for alias in key:
            table_name = self.query.table_for_alias(alias)
            denominator *= max(1, self.samples.sample_for(table_name).num_rows)
        return observed / denominator

    def validate_plan(
        self, plan: PlanNode, validate_base_relations: bool = False
    ) -> SamplingValidation:
        """Validate every join of ``plan`` (Algorithm 1, line 9).

        Returns the Δ of Algorithm 1: a mapping from join set to the
        sampling-based cardinality estimate.  Following the paper (Section 2:
        "we focus on using sampling to refine selectivity estimates for join
        predicates"), only join nodes are validated by default; pass
        ``validate_base_relations=True`` to also validate the base-relation
        selections (useful for ablation experiments).
        """
        started = time.perf_counter()
        validation = SamplingValidation()
        join_sets: List[FrozenSet[str]] = []
        for node in plan.walk():
            if isinstance(node, ScanNode) and validate_base_relations:
                join_sets.append(frozenset({node.alias}))
            elif isinstance(node, JoinNode):
                join_sets.append(frozenset(node.relations))
        for join_set in join_sets:
            if join_set in validation.cardinalities:
                continue
            validation.cardinalities[join_set] = self.estimate_cardinality(join_set)
            validation.joins_validated += 1
        validation.elapsed_seconds = time.perf_counter() - started
        return validation
