"""The sampling-based cardinality estimator of Haas et al. (Section 2.1).

For a join query ``q = R1 ⋈ ... ⋈ RK`` the estimator runs the join over the
per-table samples ``R1s ... RKs`` and scales the observed cardinality back up:

    |q|_hat = |R1s ⋈ ... ⋈ RKs| * (|R1| / |R1s|) * ... * (|RK| / |RKs|)

which is exactly ``rho_hat * |R1| * ... * |RK|`` with ``rho_hat`` the paper's
selectivity estimator.  The estimator is unbiased and strongly consistent for
Bernoulli samples.  Local predicates of the query are applied to the samples
before joining, so the same machinery also yields validated base-table
(selection) cardinalities.

``validate_plan`` is the entry point Algorithm 1 uses: it computes the
sampling estimate for every join appearing in a plan (plus the scanned base
relations) and returns them as a Δ mapping ready to be merged into Γ.

All relational kernels come from :mod:`repro.relalg` (shared with the
executor), including the morsel-driven parallel runtime: when constructed
with a :class:`~repro.relalg.TaskScheduler`, sample joins run
partition-parallel on the same worker pool the executor and the workload
driver use (bit-identical to serial, so the estimates never depend on the
worker count).  Two properties of this workload make sample joins much
cheaper than re-running them naively:

* filtered samples are projected down to their *join columns* — counting the
  join result needs no payload columns;
* the join sets Algorithm 1 validates are nested (every join node of a plan
  contains its child's join set), so intermediate sample joins are kept in a
  **join-prefix cache**: validating ``{R1,R2,R3}`` after ``{R1,R2}`` reuses
  the cached two-way join and performs only the third join, both within one
  plan and across re-optimization rounds.

Cache keys are **morsel-set fingerprints**: each alias's filtered sample is
fingerprinted by content (``Relation.fingerprint``, row data plus chunking
grid), and the prefix/count/estimate caches key on frozensets of
``(alias, fingerprint)`` pairs.  Identical sample content therefore hits the
cache across rounds, while a changed sample (e.g. a re-created
:class:`SampleSet`) can never alias a stale entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

from repro.cardinality.gamma import JoinSet
from repro.errors import SamplingError
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.relalg import (
    DEFAULT_MORSEL_ROWS,
    ChunkedRelation,
    Relation,
    TaskScheduler,
    filter_relation,
    parallel_hash_join,
)
from repro.sql.ast import Bindings, Query
from repro.storage.catalog import Database
from repro.storage.sampling import SampleSet

#: A morsel-set cache key: one ``(alias, fingerprint)`` pair per member.
MorselSetKey = FrozenSet[Tuple[str, Tuple]]

#: Intermediate sample joins larger than this are not kept in the prefix
#: cache: a many-to-many (or cross-product) sample join can dwarf the base
#: samples, and pinning such relations for the estimator's lifetime would
#: grow memory without bound.  Their *counts* are still cached.
PREFIX_CACHE_MAX_ROWS = 2_000_000

#: Total rows the prefix cache may hold across all entries; the least
#: recently used entries are evicted beyond this budget.
PREFIX_CACHE_TOTAL_ROWS = 10_000_000


@dataclass
class SamplingValidation:
    """The Δ of one validation round: cardinalities plus bookkeeping."""

    cardinalities: Dict[JoinSet, float] = field(default_factory=dict)
    #: Wall-clock seconds spent running plans over samples in this round.
    elapsed_seconds: float = 0.0
    #: Number of distinct join sets evaluated over samples.
    joins_validated: int = 0
    #: Join sets skipped because some member's filtered sample was empty
    #: while its selection is estimated non-empty: the Haas estimator has no
    #: support there and would "validate" a spurious zero.
    joins_skipped_no_support: int = 0
    #: Sample sub-joins answered from the join-prefix cache in this round.
    prefix_cache_hits: int = 0
    #: Row operations (input + output rows of each executed sample join) this
    #: round actually performed; cache hits keep this low.
    sample_join_row_ops: int = 0


class SamplingEstimator:
    """Run (sub-)joins of a query over sample tables and scale the counts up."""

    def __init__(
        self,
        db: Database,
        query: Query,
        samples: Optional[SampleSet] = None,
        scheduler: Optional[TaskScheduler] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self.db = db
        query.ensure_bound()
        self.query = query
        self.samples = samples if samples is not None else db.samples
        if self.samples is None:
            raise SamplingError(
                "no sample tables available; call Database.create_samples() first"
            )
        #: Shared morsel scheduler; ``None`` runs every sample join serially.
        self.scheduler = scheduler
        self.morsel_rows = morsel_rows
        #: Cache of filtered (and join-column-projected) sample relations.
        self._filtered_cache: Dict[str, Relation] = {}
        #: Morsel-set fingerprint of each alias's filtered sample, memoized
        #: per relation identity (see ``_fingerprint_for``).
        self._fingerprints: Dict[str, Tuple[Relation, Tuple]] = {}
        #: Join-prefix cache: morsel-set key → joined sample relation.
        #: Fingerprints pin the entries to the exact sample content they were
        #: computed from, so cached sub-joins stay valid across
        #: re-optimization rounds for as long as the samples are unchanged.
        self._prefix_cache: Dict[MorselSetKey, Relation] = {}
        #: Cache of observed sample-join counts per morsel-set key (shared by
        #: ``estimate_cardinality`` and ``estimate_selectivity``).
        self._count_cache: Dict[MorselSetKey, int] = {}
        #: Cache of sampling estimates per morsel-set key (samples are fixed,
        #: so the estimate for a join set never changes within one
        #: re-optimization).
        self._estimate_cache: Dict[MorselSetKey, float] = {}
        #: The query's join graph (aliases as nodes), built once.
        self._join_graph = query.join_graph()
        #: Lifetime counters (``validate_plan`` reports per-round deltas).
        self.prefix_cache_hits = 0
        self.sample_join_row_ops = 0

    # ------------------------------------------------------------------ #
    # Sample-side evaluation
    # ------------------------------------------------------------------ #
    def _join_columns_for(self, alias: str) -> List[str]:
        """The columns of ``alias`` that appear in any join predicate."""
        columns = set()
        for predicate in self.query.join_predicates:
            if predicate.left_alias == alias:
                columns.add(predicate.left_column)
            elif predicate.right_alias == alias:
                columns.add(predicate.right_column)
        return sorted(columns)

    def _filtered_sample(self, alias: str) -> Relation:
        """The sample of ``alias`` filtered by the query's local predicates.

        The result is projected down to the alias's join columns: the
        estimator only ever counts rows, so payload columns are dead weight.
        """
        if alias in self._filtered_cache:
            return self._filtered_cache[alias]
        table_name = self.query.table_for_alias(alias)
        sample = self.samples.sample_for(table_name)
        predicate_columns = {
            p.column for p in self.query.local_predicates_for(alias)
        }
        join_columns = self._join_columns_for(alias)
        relation = Relation.from_table(
            sample, alias, sorted(predicate_columns | set(join_columns))
        )
        filtered = filter_relation(
            relation,
            alias,
            self.query.local_predicates_for(alias),
            self.scheduler,
            self.morsel_rows,
            stage="sample_filter",
        )
        filtered = filtered.project(f"{alias}.{name}" for name in join_columns)
        self._filtered_cache[alias] = filtered
        return filtered

    def _fingerprint_for(self, alias: str) -> Tuple:
        """Morsel-set fingerprint of ``alias``'s current filtered sample.

        Memoized per relation *identity*: if the filtered sample is replaced
        (fresh estimator state, test injection), the fingerprint is
        recomputed, so cache keys can never alias content they were not
        computed from.
        """
        relation = self._filtered_sample(alias)
        entry = self._fingerprints.get(alias)
        if entry is None or entry[0] is not relation:
            entry = (relation, ChunkedRelation(relation, self.morsel_rows).fingerprint())
            self._fingerprints[alias] = entry
        return entry[1]

    def _morsel_set_key(self, aliases: Iterable[str]) -> MorselSetKey:
        """The cache key of a join set: its members' morsel-set fingerprints."""
        return frozenset((alias, self._fingerprint_for(alias)) for alias in aliases)

    @staticmethod
    def _key_aliases(key: MorselSetKey) -> FrozenSet[str]:
        """The alias set a morsel-set key covers."""
        return frozenset(alias for alias, _ in key)

    def _join_relation(self, aliases: FrozenSet[str]) -> Relation:
        """The joined sample relation for ``aliases``, reusing cached sub-joins.

        The join result for an alias set does not depend on the join order,
        so *any* cached subset is a valid starting point: the largest one is
        picked and the remaining aliases are joined outward from it (staying
        connected in the join graph where possible).  Every intermediate
        result is cached, so validating the join sets of one plan — and of
        later re-optimization rounds — degenerates to at most one new join
        per join set.  Joins themselves run on the shared morsel scheduler
        (partition-parallel, bit-identical to serial).
        """
        key = self._morsel_set_key(aliases)
        cached = self._prefix_cache.get(key)
        if cached is not None:
            self.prefix_cache_hits += 1
            self._touch_prefix(key)
            return cached
        best: Optional[FrozenSet[str]] = None
        for cached_key in self._prefix_cache:
            subset = self._key_aliases(cached_key)
            if subset < aliases and (best is None or len(subset) > len(best)):
                # A disconnected cached subset is a sample cross product —
                # typically far larger than a freshly built connected join —
                # so it is never worth starting from.
                if len(subset) > 1 and not self._is_connected(subset):
                    continue
                best = subset
        promoted: Optional[Relation] = None
        if best is not None and len(best) > 1:
            # Re-key with the *current* fingerprints: a stale entry (filtered
            # sample replaced since it was stored) has a matching alias set
            # but a different key, and must be a silent miss, not a hit.
            best_key = self._morsel_set_key(best)
            promoted = self._prefix_cache.get(best_key)
        if promoted is not None:
            self.prefix_cache_hits += 1
            self._touch_prefix(best_key)
            current = promoted
            included = best
        else:
            first = min(aliases)
            current = self._filtered_sample(first)
            included = frozenset({first})
            self._store_prefix(self._morsel_set_key(included), current)
        for alias in self._extension_order(included, aliases):
            right = self._filtered_sample(alias)
            predicates = self.query.join_predicates_between(included, {alias})
            joined = parallel_hash_join(
                current, right, predicates, included, scheduler=self.scheduler
            )
            self.sample_join_row_ops += current.num_rows + right.num_rows + joined.num_rows
            current = joined
            included = included | {alias}
            self._store_prefix(self._morsel_set_key(included), current)
        return current

    def _touch_prefix(self, key: MorselSetKey) -> None:
        """Mark a cache entry as recently used (dict order is LRU order)."""
        self._prefix_cache[key] = self._prefix_cache.pop(key)

    def _store_prefix(self, key: MorselSetKey, relation: Relation) -> None:
        """Cache an intermediate sample join, evicting LRU entries beyond the
        per-entry and total row budgets."""
        if relation.num_rows > PREFIX_CACHE_MAX_ROWS:
            return
        self._prefix_cache[key] = relation
        total = sum(entry.num_rows for entry in self._prefix_cache.values())
        for old_key in list(self._prefix_cache):
            if total <= PREFIX_CACHE_TOTAL_ROWS or old_key == key:
                continue
            total -= self._prefix_cache.pop(old_key).num_rows

    def _is_connected(self, aliases: FrozenSet[str]) -> bool:
        """True when ``aliases`` are mutually reachable via join predicates."""
        return nx.is_connected(self._join_graph.subgraph(aliases))

    def _extension_order(
        self, included: FrozenSet[str], aliases: FrozenSet[str]
    ) -> List[str]:
        """Order for joining ``aliases - included`` onto an existing sub-join.

        Each step prefers an alias connected (through a join predicate) to
        what is already included, so cross products only appear for genuinely
        disconnected join graphs.
        """
        graph = self._join_graph.subgraph(aliases)
        done = set(included)
        remaining = set(aliases) - done
        ordered: List[str] = []
        while remaining:
            connected = sorted(
                alias
                for alias in remaining
                if any(neighbor in done for neighbor in graph.neighbors(alias))
            )
            next_alias = connected[0] if connected else sorted(remaining)[0]
            ordered.append(next_alias)
            done.add(next_alias)
            remaining.discard(next_alias)
        return ordered

    def has_sample_support(self, aliases: Iterable[str]) -> bool:
        """True when every member's filtered sample contains at least one row.

        A join-set estimate built on an empty factor sample is degenerate —
        the observed count is 0 whatever the true join size, so scaling it up
        still yields 0 with unbounded relative error.  Validation skips such
        join sets (see :meth:`validate_plan`): a lucky-zero sample of a
        non-empty selection must not poison Γ with false empty joins.
        """
        return all(self._filtered_sample(alias).num_rows > 0 for alias in aliases)

    def _sample_join_count(self, aliases: FrozenSet[str]) -> int:
        """Number of rows the join of ``aliases`` produces over the samples."""
        key = self._morsel_set_key(aliases)
        if key in self._count_cache:
            return self._count_cache[key]
        count = self._join_relation(aliases).num_rows
        self._count_cache[key] = count
        return count

    # ------------------------------------------------------------------ #
    # Public estimation API
    # ------------------------------------------------------------------ #
    def estimate_cardinality(self, aliases: Iterable[str]) -> float:
        """Sampling-based estimate of the join of ``aliases`` on the full data."""
        key = frozenset(aliases)
        if not key:
            raise ValueError("join set must contain at least one relation")
        cache_key = self._morsel_set_key(key)
        if cache_key in self._estimate_cache:
            return self._estimate_cache[cache_key]
        observed = self._sample_join_count(key)
        scale = 1.0
        # Sorted iteration keeps the float product independent of set
        # construction order (and therefore run-to-run reproducible).
        for alias in sorted(key):
            table_name = self.query.table_for_alias(alias)
            scale *= self.samples.scale_factor(table_name)
        estimate = observed * scale
        self._estimate_cache[cache_key] = estimate
        return estimate

    def estimate_selectivity(self, aliases: Iterable[str]) -> float:
        """The paper's rho_hat: sample join size over the product of sample sizes."""
        key = frozenset(aliases)
        if not key:
            raise ValueError("join set must contain at least one relation")
        observed = self._sample_join_count(key)
        denominator = 1.0
        for alias in sorted(key):
            table_name = self.query.table_for_alias(alias)
            denominator *= max(1, self.samples.sample_for(table_name).num_rows)
        return observed / denominator

    def validate_plan(
        self, plan: PlanNode, validate_base_relations: bool = False
    ) -> SamplingValidation:
        """Validate every join of ``plan`` (Algorithm 1, line 9).

        Returns the Δ of Algorithm 1: a mapping from join set to the
        sampling-based cardinality estimate.  Following the paper (Section 2:
        "we focus on using sampling to refine selectivity estimates for join
        predicates"), only join nodes are validated by default; pass
        ``validate_base_relations=True`` to also validate the base-relation
        selections (useful for ablation experiments).

        The returned :class:`SamplingValidation` also reports how much work
        the round performed (``sample_join_row_ops``) and how often the
        join-prefix cache satisfied a sub-join (``prefix_cache_hits``).
        """
        started = time.perf_counter()
        hits_before = self.prefix_cache_hits
        row_ops_before = self.sample_join_row_ops
        validation = SamplingValidation()
        join_sets: List[FrozenSet[str]] = []
        for node in plan.walk():
            if isinstance(node, ScanNode) and validate_base_relations:
                join_sets.append(frozenset({node.alias}))
            elif isinstance(node, JoinNode):
                join_sets.append(frozenset(node.relations))
        # Validate small join sets first so every larger one finds its
        # sub-join already in the prefix cache.
        for join_set in sorted(join_sets, key=len):
            if join_set in validation.cardinalities:
                continue
            if not self.has_sample_support(join_set):
                # No sample support for some member: the estimate would be a
                # spurious zero (see has_sample_support).  Leave the join set
                # unvalidated; the optimizer keeps its histogram estimate.
                # This applies to singletons too — an empty filtered sample
                # of a non-empty selection must not validate the base
                # relation to zero rows.
                validation.joins_skipped_no_support += 1
                continue
            validation.cardinalities[join_set] = self.estimate_cardinality(join_set)
            validation.joins_validated += 1
        validation.elapsed_seconds = time.perf_counter() - started
        validation.prefix_cache_hits = self.prefix_cache_hits - hits_before
        validation.sample_join_row_ops = self.sample_join_row_ops - row_ops_before
        return validation


def validate_plan_for_bindings(
    db: Database,
    template: Query,
    bindings: Bindings,
    plan: PlanNode,
    scheduler: Optional[TaskScheduler] = None,
    samples: Optional[SampleSet] = None,
    validate_base_relations: bool = False,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
) -> Tuple[Query, SamplingValidation]:
    """Validate a cached ``plan`` under *new* parameter ``bindings``.

    This is the paper's sampling validator repurposed as a plan-cache guard
    (the query service's layer 1): the parameterized ``template`` is bound to
    the new constants, a fresh estimator runs the cached plan's join sets
    over the samples *with the new bindings' local predicates applied*, and
    the resulting Δ is returned next to the bound query.  The caller compares
    the Δ against the Γ expectations the plan was originally chosen under
    (see :func:`repro.cardinality.gamma.Gamma` and
    :meth:`repro.service.QueryService.execute`) to decide whether the cached
    plan is still supported or must be re-planned.

    ``bindings`` may be ``None`` when ``template`` is already a bound query.
    """
    query = template.bind(bindings) if bindings is not None else template
    query.ensure_bound()
    estimator = SamplingEstimator(
        db, query, samples=samples, scheduler=scheduler, morsel_rows=morsel_rows
    )
    validation = estimator.validate_plan(
        plan, validate_base_relations=validate_base_relations
    )
    return query, validation
