"""Join selectivity estimation (PostgreSQL / System R style).

For an equi-join predicate ``B1 = B2`` (Section 4.2.1 of the paper):

* without MCV lists on both sides, use the System R reduction factor
  ``1 / max(n_distinct(B1), n_distinct(B2))`` [Selinger et al. 1979];
* with MCV lists on both sides, first "join" the two MCV lists — the matched
  part is exact — then handle the remaining mass with the reduction-factor
  formula over the non-MCV distinct values (PostgreSQL's ``eqjoinsel``).

The selectivity returned is relative to the cross product of the two inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.cardinality.selectivity import MIN_SELECTIVITY, _clamp
from repro.stats.statistics import ColumnStatistics

#: Fallback selectivity when no statistics exist on either side.
DEFAULT_JOIN_SELECTIVITY = 0.005


def equijoin_selectivity(
    left: Optional[ColumnStatistics], right: Optional[ColumnStatistics]
) -> float:
    """Selectivity of ``left_column = right_column`` relative to the cross product."""
    if left is None and right is None:
        return DEFAULT_JOIN_SELECTIVITY
    if left is None or right is None:
        present = left if left is not None else right
        n_distinct = max(1, present.n_distinct)
        return _clamp(1.0 / n_distinct)

    have_both_mcvs = bool(left.mcv_values) and bool(right.mcv_values)
    if not have_both_mcvs:
        return _clamp(1.0 / max(1, left.n_distinct, right.n_distinct))

    # --- PostgreSQL eqjoinsel with MCV matching -------------------------- #
    right_mcv = dict(zip(right.mcv_values, right.mcv_fractions))
    matched = 0.0
    matched_left_fraction = 0.0
    matched_right_fraction = 0.0
    for value, left_fraction in zip(left.mcv_values, left.mcv_fractions):
        right_fraction = right_mcv.get(value)
        if right_fraction is None:
            continue
        matched += left_fraction * right_fraction
        matched_left_fraction += left_fraction
        matched_right_fraction += right_fraction

    # Unmatched MCV mass and non-MCV mass on each side.
    left_unmatched = max(0.0, 1.0 - matched_left_fraction)
    right_unmatched = max(0.0, 1.0 - matched_right_fraction)
    left_other_distinct = max(1, left.n_distinct - left.num_mcvs)
    right_other_distinct = max(1, right.n_distinct - right.num_mcvs)

    if left.num_mcvs >= left.n_distinct and right.num_mcvs >= right.n_distinct:
        # Both MCV lists are complete: the matched part is the whole answer.
        return max(MIN_SELECTIVITY, matched)

    # Remaining mass: assume each unmatched left value joins with the
    # "average" right value outside the matched MCVs (and vice versa), using
    # the larger distinct count as the reduction factor, as PostgreSQL does.
    remainder = (left_unmatched * right_unmatched) / max(
        left_other_distinct, right_other_distinct
    )
    return _clamp(matched + remainder)
