"""Cardinality estimation: histogram/AVI estimates, sampling estimates and Γ."""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.gamma import Gamma
from repro.cardinality.join_estimation import equijoin_selectivity
from repro.cardinality.sampling_estimator import (
    SamplingEstimator,
    SamplingValidation,
    validate_plan_for_bindings,
)
from repro.cardinality.selectivity import local_predicate_selectivity

__all__ = [
    "CardinalityEstimator",
    "Gamma",
    "SamplingEstimator",
    "SamplingValidation",
    "equijoin_selectivity",
    "local_predicate_selectivity",
    "validate_plan_for_bindings",
]
