"""The optimizer's cardinality estimator.

For a given query the estimator answers one question: *how many rows does the
join of a given set of relations produce (with all local predicates of the
query applied)?*  The answer is computed the way PostgreSQL computes it:

* base relations — table row count times the product of the local-predicate
  selectivities (MCV/histogram based, AVI across predicates);
* joins — product of the base cardinalities times the product of the
  selectivities of every join predicate whose two sides fall inside the set.

On top of that sits the paper's mechanism: if the join set has a validated
cardinality in Γ (:class:`repro.cardinality.gamma.Gamma`), that value is used
instead of the histogram estimate.  This is how the refined sampling-based
estimates are "fed back" to the optimizer without changing its search
algorithm.

*Exact* Γ entries (true cardinalities observed by the adaptive executor)
additionally **extrapolate**: the estimate of a superset of an exact join set
is anchored at the observed value and expanded outward (remaining base
cardinalities times the crossing join selectivities) instead of re-deriving
the whole product from single-column statistics.  Without this, an observed
explosion would correct only the one join set that was executed while every
superset kept the original mis-estimate — and the re-planned search would
walk back into the same trap one join later.  Sampled entries deliberately do
not extrapolate: the paper feeds them back only for the exact join sets the
samples validated, and the reproduction keeps Algorithm 1's behavior
bit-identical to that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.cardinality.gamma import Gamma
from repro.cardinality.join_estimation import equijoin_selectivity
from repro.cardinality.selectivity import (
    MIN_SELECTIVITY,
    conjunction_selectivity,
    local_predicate_selectivity,
)
from repro.sql.ast import JoinPredicate, Query
from repro.stats.statistics import ColumnStatistics
from repro.storage.catalog import Database


class CardinalityEstimator:
    """Histogram/AVI cardinality estimation with Γ overrides."""

    def __init__(
        self,
        db: Database,
        query: Query,
        gamma: Optional[Gamma] = None,
        use_mcv_join_refinement: bool = True,
    ) -> None:
        self.db = db
        self.query = query
        self.gamma = gamma if gamma is not None else Gamma()
        #: When False, join selectivities fall back to the plain System R
        #: ``1/max(n_distinct)`` formula without MCV matching — used by the
        #: "commercial system" optimizer profiles.
        self.use_mcv_join_refinement = use_mcv_join_refinement
        self._base_cache: Dict[str, float] = {}
        self._join_cache: Dict[FrozenSet[str], float] = {}
        self._selectivity_cache: Dict[FrozenSet[str], float] = {}

    # ------------------------------------------------------------------ #
    # Statistics lookup helpers
    # ------------------------------------------------------------------ #
    def _column_stats(self, alias: str, column: str) -> Optional[ColumnStatistics]:
        table_name = self.query.table_for_alias(alias)
        if table_name not in self.db.statistics:
            return None
        table_stats = self.db.statistics[table_name]
        if not table_stats.has_column(column):
            return None
        return table_stats.column(column)

    def _table_rows(self, alias: str) -> float:
        table_name = self.query.table_for_alias(alias)
        if table_name in self.db.statistics:
            return float(self.db.statistics[table_name].row_count)
        return float(self.db.table(table_name).num_rows)

    # ------------------------------------------------------------------ #
    # Base relations
    # ------------------------------------------------------------------ #
    def base_selectivity(self, alias: str) -> float:
        """Combined selectivity of all local predicates on ``alias`` (AVI)."""
        predicates = self.query.local_predicates_for(alias)
        if not predicates:
            return 1.0
        selectivities = [
            local_predicate_selectivity(self._column_stats(alias, p.column), p)
            for p in predicates
        ]
        return conjunction_selectivity(selectivities)

    def base_cardinality(self, alias: str) -> float:
        """Estimated rows of ``alias`` after its local predicates.

        A validated singleton entry in Γ takes precedence over the estimate.
        """
        validated = self.gamma.get({alias})
        if validated is not None:
            return max(validated, 0.0)
        if alias in self._base_cache:
            return self._base_cache[alias]
        estimate = self._table_rows(alias) * self.base_selectivity(alias)
        estimate = max(estimate, MIN_SELECTIVITY)
        self._base_cache[alias] = estimate
        return estimate

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def join_predicate_selectivity(self, predicate: JoinPredicate) -> float:
        """Selectivity of a single equi-join predicate (cached per query)."""
        key = frozenset(
            {
                (predicate.left_alias, predicate.left_column),
                (predicate.right_alias, predicate.right_column),
            }
        )
        if key in self._selectivity_cache:
            return self._selectivity_cache[key]
        left_stats = self._column_stats(predicate.left_alias, predicate.left_column)
        right_stats = self._column_stats(predicate.right_alias, predicate.right_column)
        if self.use_mcv_join_refinement:
            selectivity = equijoin_selectivity(left_stats, right_stats)
        else:
            n_left = left_stats.n_distinct if left_stats is not None else 1
            n_right = right_stats.n_distinct if right_stats is not None else 1
            selectivity = 1.0 / max(1, n_left, n_right)
        self._selectivity_cache[key] = selectivity
        return selectivity

    def _largest_exact_subset(self, key: FrozenSet[str]) -> Optional[FrozenSet[str]]:
        """The largest strict subset of ``key`` with an exact Γ entry.

        Only multi-relation subsets anchor an extrapolation (singletons are
        already consulted by ``base_cardinality``).  Ties break on the sorted
        alias tuple so the estimate is deterministic.
        """
        best: Optional[FrozenSet[str]] = None
        for exact in self.gamma.exact_join_sets():
            if len(exact) < 2 or not exact < key:
                continue
            if best is None or (len(exact), sorted(exact)) > (len(best), sorted(best)):
                best = exact
        return best

    def joinset_cardinality(self, aliases: Iterable[str]) -> float:
        """Estimated rows of the join of ``aliases`` (local predicates applied).

        A validated entry for exactly this join set in Γ takes precedence.
        Otherwise, if a subset of the join set has an *exact* Γ entry, the
        estimate is anchored there: observed cardinality times the estimate
        of the remaining relations times the selectivities of the join
        predicates crossing between the two parts (predicates inside the
        anchor are already baked into the observation).
        """
        key = frozenset(aliases)
        if not key:
            raise ValueError("join set must contain at least one relation")
        validated = self.gamma.get(key)
        if validated is not None:
            return max(validated, 0.0)
        if len(key) == 1:
            (alias,) = key
            return self.base_cardinality(alias)
        if key in self._join_cache:
            return self._join_cache[key]

        anchor = self._largest_exact_subset(key)
        if anchor is not None:
            cardinality = max(self.gamma.get(anchor) or 0.0, 0.0)
            rest = key - anchor
            cardinality *= self.joinset_cardinality(rest)
            for predicate in self.query.join_predicates:
                left_in_anchor = predicate.left_alias in anchor
                right_in_anchor = predicate.right_alias in anchor
                if left_in_anchor and right_in_anchor:
                    continue
                if (predicate.left_alias in key and predicate.right_alias in key) and (
                    left_in_anchor or right_in_anchor
                ):
                    cardinality *= self.join_predicate_selectivity(predicate)
        else:
            cardinality = 1.0
            for alias in key:
                cardinality *= self.base_cardinality(alias)
            for predicate in self.query.join_predicates:
                if predicate.left_alias in key and predicate.right_alias in key:
                    cardinality *= self.join_predicate_selectivity(predicate)
        cardinality = max(cardinality, MIN_SELECTIVITY)
        self._join_cache[key] = cardinality
        return cardinality

    def join_cardinality(self, left: Iterable[str], right: Iterable[str]) -> float:
        """Estimated output rows of joining two disjoint relation sets."""
        return self.joinset_cardinality(frozenset(left) | frozenset(right))

    # ------------------------------------------------------------------ #
    # Cache control
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop memoized estimates (call after Γ changes)."""
        self._base_cache.clear()
        self._join_cache.clear()
