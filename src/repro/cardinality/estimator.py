"""The optimizer's cardinality estimator.

For a given query the estimator answers one question: *how many rows does the
join of a given set of relations produce (with all local predicates of the
query applied)?*  The answer is computed the way PostgreSQL computes it:

* base relations — table row count times the product of the local-predicate
  selectivities (MCV/histogram based, AVI across predicates);
* joins — product of the base cardinalities times the product of the
  selectivities of every join predicate whose two sides fall inside the set.

On top of that sits the paper's mechanism: if the join set has a validated
cardinality in Γ (:class:`repro.cardinality.gamma.Gamma`), that value is used
instead of the histogram estimate.  This is how the refined sampling-based
estimates are "fed back" to the optimizer without changing its search
algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.cardinality.gamma import Gamma
from repro.cardinality.join_estimation import equijoin_selectivity
from repro.cardinality.selectivity import (
    MIN_SELECTIVITY,
    conjunction_selectivity,
    local_predicate_selectivity,
)
from repro.sql.ast import Query
from repro.stats.statistics import ColumnStatistics
from repro.storage.catalog import Database


class CardinalityEstimator:
    """Histogram/AVI cardinality estimation with Γ overrides."""

    def __init__(
        self,
        db: Database,
        query: Query,
        gamma: Optional[Gamma] = None,
        use_mcv_join_refinement: bool = True,
    ) -> None:
        self.db = db
        self.query = query
        self.gamma = gamma if gamma is not None else Gamma()
        #: When False, join selectivities fall back to the plain System R
        #: ``1/max(n_distinct)`` formula without MCV matching — used by the
        #: "commercial system" optimizer profiles.
        self.use_mcv_join_refinement = use_mcv_join_refinement
        self._base_cache: Dict[str, float] = {}
        self._join_cache: Dict[FrozenSet[str], float] = {}
        self._selectivity_cache: Dict[FrozenSet[str], float] = {}

    # ------------------------------------------------------------------ #
    # Statistics lookup helpers
    # ------------------------------------------------------------------ #
    def _column_stats(self, alias: str, column: str) -> Optional[ColumnStatistics]:
        table_name = self.query.table_for_alias(alias)
        if table_name not in self.db.statistics:
            return None
        table_stats = self.db.statistics[table_name]
        if not table_stats.has_column(column):
            return None
        return table_stats.column(column)

    def _table_rows(self, alias: str) -> float:
        table_name = self.query.table_for_alias(alias)
        if table_name in self.db.statistics:
            return float(self.db.statistics[table_name].row_count)
        return float(self.db.table(table_name).num_rows)

    # ------------------------------------------------------------------ #
    # Base relations
    # ------------------------------------------------------------------ #
    def base_selectivity(self, alias: str) -> float:
        """Combined selectivity of all local predicates on ``alias`` (AVI)."""
        predicates = self.query.local_predicates_for(alias)
        if not predicates:
            return 1.0
        selectivities = [
            local_predicate_selectivity(self._column_stats(alias, p.column), p)
            for p in predicates
        ]
        return conjunction_selectivity(selectivities)

    def base_cardinality(self, alias: str) -> float:
        """Estimated rows of ``alias`` after its local predicates.

        A validated singleton entry in Γ takes precedence over the estimate.
        """
        validated = self.gamma.get({alias})
        if validated is not None:
            return max(validated, 0.0)
        if alias in self._base_cache:
            return self._base_cache[alias]
        estimate = self._table_rows(alias) * self.base_selectivity(alias)
        estimate = max(estimate, MIN_SELECTIVITY)
        self._base_cache[alias] = estimate
        return estimate

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def join_predicate_selectivity(self, predicate) -> float:
        """Selectivity of a single equi-join predicate (cached per query)."""
        key = frozenset(
            {
                (predicate.left_alias, predicate.left_column),
                (predicate.right_alias, predicate.right_column),
            }
        )
        if key in self._selectivity_cache:
            return self._selectivity_cache[key]
        left_stats = self._column_stats(predicate.left_alias, predicate.left_column)
        right_stats = self._column_stats(predicate.right_alias, predicate.right_column)
        if self.use_mcv_join_refinement:
            selectivity = equijoin_selectivity(left_stats, right_stats)
        else:
            n_left = left_stats.n_distinct if left_stats is not None else 1
            n_right = right_stats.n_distinct if right_stats is not None else 1
            selectivity = 1.0 / max(1, n_left, n_right)
        self._selectivity_cache[key] = selectivity
        return selectivity

    def joinset_cardinality(self, aliases: Iterable[str]) -> float:
        """Estimated rows of the join of ``aliases`` (local predicates applied).

        A validated entry for exactly this join set in Γ takes precedence.
        """
        key = frozenset(aliases)
        if not key:
            raise ValueError("join set must contain at least one relation")
        validated = self.gamma.get(key)
        if validated is not None:
            return max(validated, 0.0)
        if len(key) == 1:
            (alias,) = key
            return self.base_cardinality(alias)
        if key in self._join_cache:
            return self._join_cache[key]

        cardinality = 1.0
        for alias in key:
            cardinality *= self.base_cardinality(alias)
        for predicate in self.query.join_predicates:
            if predicate.left_alias in key and predicate.right_alias in key:
                cardinality *= self.join_predicate_selectivity(predicate)
        cardinality = max(cardinality, MIN_SELECTIVITY)
        self._join_cache[key] = cardinality
        return cardinality

    def join_cardinality(self, left: Iterable[str], right: Iterable[str]) -> float:
        """Estimated output rows of joining two disjoint relation sets."""
        return self.joinset_cardinality(frozenset(left) | frozenset(right))

    # ------------------------------------------------------------------ #
    # Cache control
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop memoized estimates (call after Γ changes)."""
        self._base_cache.clear()
        self._join_cache.clear()
