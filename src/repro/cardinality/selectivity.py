"""Selectivity estimation for local predicates (PostgreSQL-style).

The estimation mirrors what the paper describes in Section 4.2.1 for
PostgreSQL:

* equality ``A = c`` — if ``c`` is in the MCV list, use its recorded (exact)
  frequency; otherwise assume the non-MCV rows are uniformly spread over the
  non-MCV distinct values;
* inequality / range predicates — use the equal-depth histogram (with linear
  interpolation in the boundary bucket), combined with the MCV list;
* conjunctions of predicates on the *same or different* columns — multiply the
  individual selectivities (the attribute-value-independence assumption).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sql.ast import LocalPredicate
from repro.stats.statistics import ColumnStatistics

#: Selectivity assigned when statistics are entirely missing for a column.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: Lower bound so that estimates never become exactly zero (PostgreSQL never
#: estimates zero rows either); keeps costs well-defined.
MIN_SELECTIVITY = 1.0e-9


def _clamp(selectivity: float) -> float:
    """Clamp a selectivity into ``[MIN_SELECTIVITY, 1.0]``."""
    return max(MIN_SELECTIVITY, min(1.0, selectivity))


def equality_selectivity(stats: Optional[ColumnStatistics], value: object) -> float:
    """Selectivity of ``column = value``."""
    if stats is None or stats.num_rows == 0 or stats.n_distinct == 0:
        return DEFAULT_EQ_SELECTIVITY
    mcv_fraction = stats.mcv_fraction_for(value)
    if mcv_fraction is not None:
        return _clamp(mcv_fraction)
    # The value is not an MCV: the remaining mass is spread uniformly over the
    # non-MCV distinct values.
    remaining_fraction = max(0.0, 1.0 - stats.mcv_total_fraction)
    remaining_distinct = stats.non_mcv_distinct()
    if stats.num_mcvs and stats.num_mcvs >= stats.n_distinct:
        # Every distinct value is an MCV, so an unseen constant matches nothing.
        return MIN_SELECTIVITY
    return _clamp(remaining_fraction / remaining_distinct)


def inequality_selectivity(stats: Optional[ColumnStatistics], op: str, value: object) -> float:
    """Selectivity of ``column op value`` for ``op`` in ``<, <=, >, >=``."""
    if stats is None or not stats.is_numeric:
        return DEFAULT_RANGE_SELECTIVITY
    try:
        numeric_value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return DEFAULT_RANGE_SELECTIVITY

    # Fraction contributed by MCVs satisfying the predicate (exact).
    mcv_part = 0.0
    for mcv, fraction in zip(stats.mcv_values, stats.mcv_fractions):
        try:
            mcv_numeric = float(mcv)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
        if _compare(mcv_numeric, op, numeric_value):
            mcv_part += fraction

    non_mcv_fraction = max(0.0, 1.0 - stats.mcv_total_fraction)
    if stats.histogram is not None:
        if op == "<":
            hist_fraction = stats.histogram.fraction_below(numeric_value, inclusive=False)
        elif op == "<=":
            hist_fraction = stats.histogram.fraction_below(numeric_value, inclusive=True)
        elif op == ">":
            hist_fraction = 1.0 - stats.histogram.fraction_below(numeric_value, inclusive=True)
        else:  # ">="
            hist_fraction = 1.0 - stats.histogram.fraction_below(numeric_value, inclusive=False)
    elif stats.min_value is not None and stats.max_value is not None and stats.max_value > stats.min_value:
        # No histogram (e.g. all values are MCVs): interpolate over [min, max].
        position = (numeric_value - stats.min_value) / (stats.max_value - stats.min_value)
        position = min(1.0, max(0.0, position))
        hist_fraction = position if op in ("<", "<=") else 1.0 - position
    else:
        hist_fraction = DEFAULT_RANGE_SELECTIVITY
    return _clamp(mcv_part + non_mcv_fraction * hist_fraction)


def _compare(left: float, op: str, right: float) -> bool:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unsupported operator {op!r}")


def local_predicate_selectivity(stats: Optional[ColumnStatistics], predicate: LocalPredicate) -> float:
    """Selectivity of one local predicate against the column's statistics."""
    if predicate.op == "=":
        return equality_selectivity(stats, predicate.value)
    if predicate.op == "<>":
        return _clamp(1.0 - equality_selectivity(stats, predicate.value))
    if predicate.op == "in":
        # Candidates are disjoint equality predicates: sum their selectivities
        # (deduplicated — execution matches each row at most once; sorted by
        # repr so the float sum is deterministic for mixed-type candidates).
        candidates = sorted(set(predicate.value), key=repr)
        return _clamp(sum(equality_selectivity(stats, v) for v in candidates))
    if predicate.op == "between":
        # P(low <= x <= high) = P(x >= low) + P(x <= high) - 1 for the two
        # one-sided ranges of the same distribution.  The identity only holds
        # when both one-sided estimates come from real statistics — if either
        # side would fall back to a default (non-numeric column or bound,
        # no histogram/min-max), the sum goes negative and would clamp to
        # ~zero, so use the generic range guess instead.
        if stats is None or not stats.is_numeric:
            return DEFAULT_RANGE_SELECTIVITY
        low, high = predicate.value
        try:
            float(low)  # type: ignore[arg-type]
            float(high)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return DEFAULT_RANGE_SELECTIVITY
        has_range_stats = stats.histogram is not None or (
            stats.min_value is not None
            and stats.max_value is not None
            and stats.max_value > stats.min_value
        )
        if not has_range_stats:
            return DEFAULT_RANGE_SELECTIVITY
        return _clamp(
            inequality_selectivity(stats, ">=", low)
            + inequality_selectivity(stats, "<=", high)
            - 1.0
        )
    return inequality_selectivity(stats, predicate.op, predicate.value)


def conjunction_selectivity(selectivities: Iterable[float]) -> float:
    """Combine per-predicate selectivities under attribute-value independence."""
    result = 1.0
    for selectivity in selectivities:
        result *= selectivity
    return _clamp(result)
