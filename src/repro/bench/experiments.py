"""One driver per figure of the paper's evaluation.

Each function builds the workload at a laptop-scale configuration, runs the
shared harness and returns an :class:`repro.bench.reporting.ExperimentResult`
whose rows correspond to the bars/points of the figure.  The benchmark files
under ``benchmarks/`` call these drivers (once each) and print the tables;
EXPERIMENTS.md records a snapshot of the output next to the paper's numbers.

Scale disclaimer (also in DESIGN.md): the databases are MB-scale instead of
10 GB and "running time" is primarily the deterministic simulated cost (cost
model at true cardinalities), with wall-clock seconds reported alongside.
Sampling ratios are raised so that absolute sample sizes are statistically
comparable to 5% of a 10 GB database.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.clock import monotonic_s
from repro.bench.harness import (
    QueryRunRecord,
    aggregate_by_template,
    calibrated_settings,
    mean,
    run_query_suite,
)
from repro.bench.reporting import ExperimentResult
from repro.optimizer.profiles import profile_settings
from repro.relalg import (
    DictEncodedArray,
    Relation,
    TaskScheduler,
    group_aggregate,
    parallel_hash_join,
)
from repro.executor.executor import Executor
from repro.sql.ast import Aggregate, Bindings, ColumnRef, JoinPredicate, Query
from repro.sql.builder import QueryBuilder
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import plans_identical
from repro.reopt.adaptive import AdaptiveExecutor, AdaptiveSettings
from repro.reopt.algorithm import ReoptimizationSettings, Reoptimizer
from repro.reopt.driver import DriverSettings, WorkloadDriver
from repro.storage.table import Column, Table, TableSchema
from repro.storage.catalog import Database
from repro.cardinality.gamma import Gamma
from repro.stats.multidim import MultiDimHistogram, true_ott_pair_selectivity
from repro.theory.ball_queue import expected_steps
from repro.theory.special_cases import (
    overestimation_only_bound,
    underestimation_only_expected_steps,
)
from repro.workloads.ott import generate_ott_database, make_ott_workload
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import make_tpch_workload
from repro.workloads.tpcds import generate_tpcds_database, make_tpcds_workload

#: Default laptop-scale knobs for the TPC-H experiments.
TPCH_SCALE_FACTOR = 0.004
TPCH_SAMPLING_RATIO = 0.5
#: Default laptop-scale knobs for the OTT experiments.
OTT_4JOIN_TABLES = 5
OTT_5JOIN_TABLES = 6
OTT_ROWS_PER_TABLE = 4000
OTT_4JOIN_ROWS_PER_VALUE = 50
OTT_5JOIN_ROWS_PER_VALUE = 25
#: 0.25 keeps the per-value sample count around the same handful of rows the
#: paper's 5% sample of a 10 GB database yields (see DESIGN.md substitutions).
OTT_SAMPLING_RATIO = 0.25
#: Default laptop-scale knobs for the TPC-DS experiments.
TPCDS_SCALE = 0.15
TPCDS_SAMPLING_RATIO = 0.5


# --------------------------------------------------------------------------- #
# Figure 3 — S_N versus N
# --------------------------------------------------------------------------- #
def figure3_sn_curve(max_n: int = 1000, step: int = 50) -> ExperimentResult:
    """Figure 3: the expected number of steps S_N against sqrt(N) and 2*sqrt(N)."""
    result = ExperimentResult(
        experiment="figure3",
        description="S_N versus N (Equation 1) compared with sqrt(N) envelopes",
        columns=["N", "S_N", "sqrt(N)", "2*sqrt(N)"],
    )
    points = list(range(1, max_n + 1, step))
    if points[-1] != max_n:
        points.append(max_n)
    for n in points:
        result.add_row(
            **{
                "N": n,
                "S_N": expected_steps(n),
                "sqrt(N)": float(np.sqrt(n)),
                "2*sqrt(N)": 2.0 * float(np.sqrt(n)),
            }
        )
    return result


# --------------------------------------------------------------------------- #
# TPC-H experiments (Figures 4-9 and 14)
# --------------------------------------------------------------------------- #
def _tpch_records(
    zipf_z: float,
    calibrated: bool,
    scale_factor: float = TPCH_SCALE_FACTOR,
    sampling_ratio: float = TPCH_SAMPLING_RATIO,
    instances_per_query: int = 1,
    seed: int = 1,
    execute_intermediate_plans: bool = False,
    query_numbers: Optional[Sequence[int]] = None,
    concurrency: int = 1,
) -> Dict[str, List[QueryRunRecord]]:
    db = generate_tpch_database(
        scale_factor=scale_factor, zipf_z=zipf_z, seed=seed, sampling_ratio=sampling_ratio
    )
    settings = OptimizerSettings()
    if calibrated:
        settings = calibrated_settings(db, settings)
    workload = make_tpch_workload(
        db, numbers=list(query_numbers) if query_numbers else None,
        instances_per_query=instances_per_query, seed=seed,
    )
    queries = [query for instances in workload.values() for query in instances]
    records = run_query_suite(
        db,
        queries,
        optimizer_settings=settings,
        execute_intermediate_plans=execute_intermediate_plans,
        concurrency=concurrency,
    )
    return aggregate_by_template(records)


def figure4_7_tpch_running_time(
    zipf_z: float = 0.0,
    calibrated: bool = False,
    **kwargs: Any,
) -> ExperimentResult:
    """Figures 4 (z=0) and 7 (z=1): original vs re-optimized running time per query."""
    grouped = _tpch_records(zipf_z=zipf_z, calibrated=calibrated, **kwargs)
    figure = "figure4" if zipf_z == 0.0 else "figure7"
    result = ExperimentResult(
        experiment=f"{figure}{'b' if calibrated else 'a'}",
        description=(
            f"TPC-H z={zipf_z} running time, original vs re-optimized plan "
            f"({'with' if calibrated else 'without'} calibration)"
        ),
        columns=[
            "query", "original_sim_cost", "reoptimized_sim_cost",
            "original_wall_s", "reoptimized_wall_s", "plan_changed",
        ],
    )
    for template in sorted(grouped, key=lambda name: int(name[1:])):
        records = grouped[template]
        result.add_row(
            query=template,
            original_sim_cost=mean(r.original_simulated_cost for r in records),
            reoptimized_sim_cost=mean(r.reoptimized_simulated_cost for r in records),
            original_wall_s=mean(r.original_wall_seconds for r in records),
            reoptimized_wall_s=mean(r.reoptimized_wall_seconds for r in records),
            plan_changed=any(r.plan_changed for r in records),
        )
    return result


def figure5_8_tpch_num_plans(zipf_z: float = 0.0, **kwargs: Any) -> ExperimentResult:
    """Figures 5 (z=0) and 8 (z=1): number of plans generated during re-optimization."""
    figure = "figure5" if zipf_z == 0.0 else "figure8"
    result = ExperimentResult(
        experiment=figure,
        description=f"TPC-H z={zipf_z}: plans generated during re-optimization",
        columns=["query", "plans_without_calibration", "plans_with_calibration"],
    )
    without = _tpch_records(zipf_z=zipf_z, calibrated=False, **kwargs)
    with_cal = _tpch_records(zipf_z=zipf_z, calibrated=True, **kwargs)
    for template in sorted(without, key=lambda name: int(name[1:])):
        result.add_row(
            query=template,
            plans_without_calibration=mean(r.plans_generated for r in without[template]),
            plans_with_calibration=mean(r.plans_generated for r in with_cal.get(template, [])),
        )
    return result


def figure6_9_tpch_overhead(
    zipf_z: float = 0.0, calibrated: bool = False, **kwargs: Any
) -> ExperimentResult:
    """Figures 6 (z=0) and 9 (z=1): running time excluding vs including re-optimization."""
    grouped = _tpch_records(zipf_z=zipf_z, calibrated=calibrated, **kwargs)
    figure = "figure6" if zipf_z == 0.0 else "figure9"
    result = ExperimentResult(
        experiment=f"{figure}{'b' if calibrated else 'a'}",
        description=(
            f"TPC-H z={zipf_z}: execution only vs re-optimization + execution "
            f"({'with' if calibrated else 'without'} calibration)"
        ),
        columns=["query", "execution_only_s", "reopt_plus_execution_s", "reopt_overhead_s"],
    )
    for template in sorted(grouped, key=lambda name: int(name[1:])):
        records = grouped[template]
        execution_only = mean(r.reoptimized_wall_seconds for r in records)
        overhead = mean(r.reoptimization_seconds for r in records)
        result.add_row(
            query=template,
            execution_only_s=execution_only,
            reopt_plus_execution_s=execution_only + overhead,
            reopt_overhead_s=overhead,
        )
    return result


def figure14_tpch_rounds(
    query_numbers: Sequence[int] = (8, 9, 21), zipf_z: float = 0.0, **kwargs: Any
) -> ExperimentResult:
    """Figure 14: running time of the plan produced in each re-optimization round."""
    grouped = _tpch_records(
        zipf_z=zipf_z, calibrated=False, execute_intermediate_plans=True,
        query_numbers=query_numbers, **kwargs,
    )
    result = ExperimentResult(
        experiment="figure14",
        description="TPC-H: per-round plan simulated cost during re-optimization",
        columns=["query", "round", "simulated_cost"],
    )
    for template in sorted(grouped, key=lambda name: int(name[1:])):
        for record in grouped[template]:
            for round_index, cost in enumerate(record.per_round_simulated_cost, start=1):
                result.add_row(query=template, round=round_index, simulated_cost=cost)
    return result


# --------------------------------------------------------------------------- #
# OTT experiments (Figures 10-13 and 15-18)
# --------------------------------------------------------------------------- #
def _ott_records(
    num_tables: int,
    num_queries: int,
    rows_per_value: int,
    calibrated: bool = False,
    profile: str = "postgresql",
    rows_per_table: int = OTT_ROWS_PER_TABLE,
    sampling_ratio: float = OTT_SAMPLING_RATIO,
    seed: int = 7,
    execute_intermediate_plans: bool = False,
    concurrency: int = 1,
) -> List[QueryRunRecord]:
    db = generate_ott_database(
        num_tables=num_tables,
        rows_per_table=rows_per_table,
        rows_per_value=rows_per_value,
        seed=seed,
        sampling_ratio=sampling_ratio,
    )
    settings = profile_settings(profile)
    if calibrated:
        settings = calibrated_settings(db, settings)
    queries = make_ott_workload(
        db, num_tables=num_tables, num_queries=num_queries, num_matching=num_tables - 1, seed=seed
    )
    return run_query_suite(
        db,
        queries,
        optimizer_settings=settings,
        execute_intermediate_plans=execute_intermediate_plans,
        concurrency=concurrency,
    )


def figure10_11_ott_running_time(
    joins: int = 4, calibrated: bool = False, num_queries: int = 10, **kwargs: Any
) -> ExperimentResult:
    """Figures 10 (4-join) and 11 (5-join): OTT original vs re-optimized running time."""
    num_tables = joins + 1
    rows_per_value = OTT_4JOIN_ROWS_PER_VALUE if joins == 4 else OTT_5JOIN_ROWS_PER_VALUE
    records = _ott_records(
        num_tables=num_tables, num_queries=num_queries, rows_per_value=rows_per_value,
        calibrated=calibrated, **kwargs,
    )
    figure = "figure10" if joins == 4 else "figure11"
    result = ExperimentResult(
        experiment=f"{figure}{'b' if calibrated else 'a'}",
        description=(
            f"OTT {joins}-join queries: original vs re-optimized "
            f"({'with' if calibrated else 'without'} calibration)"
        ),
        columns=[
            "query", "original_sim_cost", "reoptimized_sim_cost",
            "original_wall_s", "reoptimized_wall_s", "plans_generated",
        ],
    )
    for record in records:
        result.add_row(
            query=record.query_name,
            original_sim_cost=record.original_simulated_cost,
            reoptimized_sim_cost=record.reoptimized_simulated_cost,
            original_wall_s=record.original_wall_seconds,
            reoptimized_wall_s=record.reoptimized_wall_seconds,
            plans_generated=record.plans_generated,
        )
    return result


def figure12_13_ott_commercial(profile: str = "system_a", joins: int = 4, num_queries: int = 10, **kwargs: Any) -> ExperimentResult:
    """Figures 12/13: OTT original-plan running times under the commercial-system profiles."""
    num_tables = joins + 1
    rows_per_value = OTT_4JOIN_ROWS_PER_VALUE if joins == 4 else OTT_5JOIN_ROWS_PER_VALUE
    records = _ott_records(
        num_tables=num_tables, num_queries=num_queries, rows_per_value=rows_per_value,
        profile=profile, **kwargs,
    )
    figure = "figure12" if profile == "system_a" else "figure13"
    result = ExperimentResult(
        experiment=f"{figure}_{joins}join",
        description=f"OTT {joins}-join original plans under optimizer profile {profile!r}",
        columns=["query", "original_sim_cost", "original_wall_s"],
    )
    for record in records:
        result.add_row(
            query=record.query_name,
            original_sim_cost=record.original_simulated_cost,
            original_wall_s=record.original_wall_seconds,
        )
    return result


def figure15_ott_rounds(joins: int = 4, num_queries: int = 6, **kwargs: Any) -> ExperimentResult:
    """Figure 15: per-round plan cost for OTT queries during re-optimization."""
    num_tables = joins + 1
    rows_per_value = OTT_4JOIN_ROWS_PER_VALUE if joins == 4 else OTT_5JOIN_ROWS_PER_VALUE
    records = _ott_records(
        num_tables=num_tables, num_queries=num_queries, rows_per_value=rows_per_value,
        execute_intermediate_plans=True, **kwargs,
    )
    result = ExperimentResult(
        experiment=f"figure15_{joins}join",
        description=f"OTT {joins}-join: per-round plan simulated cost",
        columns=["query", "round", "simulated_cost"],
    )
    for record in records:
        for round_index, cost in enumerate(record.per_round_simulated_cost, start=1):
            result.add_row(query=record.query_name, round=round_index, simulated_cost=cost)
    return result


def figure16_ott_num_plans(joins: int = 4, num_queries: int = 10, **kwargs: Any) -> ExperimentResult:
    """Figure 16: number of plans generated during re-optimization (OTT)."""
    num_tables = joins + 1
    rows_per_value = OTT_4JOIN_ROWS_PER_VALUE if joins == 4 else OTT_5JOIN_ROWS_PER_VALUE
    without = _ott_records(
        num_tables=num_tables, num_queries=num_queries, rows_per_value=rows_per_value, **kwargs
    )
    result = ExperimentResult(
        experiment=f"figure16_{joins}join",
        description=f"OTT {joins}-join: plans generated during re-optimization",
        columns=["query", "plans_generated", "converged"],
    )
    for record in without:
        result.add_row(
            query=record.query_name,
            plans_generated=record.plans_generated,
            converged=record.converged,
        )
    return result


def figure17_18_ott_overhead(joins: int = 4, num_queries: int = 10, **kwargs: Any) -> ExperimentResult:
    """Figures 17/18: OTT running time excluding vs including re-optimization time."""
    num_tables = joins + 1
    rows_per_value = OTT_4JOIN_ROWS_PER_VALUE if joins == 4 else OTT_5JOIN_ROWS_PER_VALUE
    records = _ott_records(
        num_tables=num_tables, num_queries=num_queries, rows_per_value=rows_per_value, **kwargs
    )
    figure = "figure17" if joins == 4 else "figure18"
    result = ExperimentResult(
        experiment=figure,
        description=f"OTT {joins}-join: execution only vs re-optimization + execution",
        columns=["query", "execution_only_s", "reopt_plus_execution_s", "reopt_overhead_s"],
    )
    for record in records:
        result.add_row(
            query=record.query_name,
            execution_only_s=record.reoptimized_wall_seconds,
            reopt_plus_execution_s=record.total_with_reoptimization,
            reopt_overhead_s=record.reoptimization_seconds,
        )
    return result


# --------------------------------------------------------------------------- #
# TPC-DS experiments (Figures 19-20)
# --------------------------------------------------------------------------- #
def _tpcds_records(
    calibrated: bool = False,
    scale: float = TPCDS_SCALE,
    sampling_ratio: float = TPCDS_SAMPLING_RATIO,
    seed: int = 2,
    concurrency: int = 1,
) -> List[QueryRunRecord]:
    db = generate_tpcds_database(scale=scale, seed=seed, sampling_ratio=sampling_ratio)
    settings = OptimizerSettings()
    if calibrated:
        settings = calibrated_settings(db, settings)
    queries = make_tpcds_workload(db, seed=seed)
    return run_query_suite(db, queries, optimizer_settings=settings, concurrency=concurrency)


def figure19_tpcds_running_time(calibrated: bool = False, **kwargs: Any) -> ExperimentResult:
    """Figure 19: TPC-DS original vs re-optimized running time (including Q50')."""
    records = _tpcds_records(calibrated=calibrated, **kwargs)
    result = ExperimentResult(
        experiment=f"figure19{'b' if calibrated else 'a'}",
        description=(
            f"TPC-DS running time, original vs re-optimized "
            f"({'with' if calibrated else 'without'} calibration)"
        ),
        columns=[
            "query", "original_sim_cost", "reoptimized_sim_cost",
            "original_wall_s", "reoptimized_wall_s", "plan_changed",
        ],
    )
    for record in records:
        result.add_row(
            query=record.query_name,
            original_sim_cost=record.original_simulated_cost,
            reoptimized_sim_cost=record.reoptimized_simulated_cost,
            original_wall_s=record.original_wall_seconds,
            reoptimized_wall_s=record.reoptimized_wall_seconds,
            plan_changed=record.plan_changed,
        )
    return result


def figure20_tpcds_num_plans(**kwargs: Any) -> ExperimentResult:
    """Figure 20: number of plans generated during re-optimization (TPC-DS)."""
    without = _tpcds_records(calibrated=False, **kwargs)
    with_cal = _tpcds_records(calibrated=True, **kwargs)
    by_name_cal = {record.query_name: record for record in with_cal}
    result = ExperimentResult(
        experiment="figure20",
        description="TPC-DS: plans generated during re-optimization",
        columns=["query", "plans_without_calibration", "plans_with_calibration"],
    )
    for record in without:
        calibrated_record = by_name_cal.get(record.query_name)
        result.add_row(
            query=record.query_name,
            plans_without_calibration=record.plans_generated,
            plans_with_calibration=(
                calibrated_record.plans_generated if calibrated_record else None
            ),
        )
    return result


# --------------------------------------------------------------------------- #
# Example 2 (Section 5.3.1) and Appendix B
# --------------------------------------------------------------------------- #
def example2_multidimensional_histograms(
    rows: int = 10_000, distinct_values: int = 100, buckets_per_dim: int = 50, seed: int = 5
) -> ExperimentResult:
    """Example 2: 2-D histograms cannot separate empty from non-empty OTT joins."""
    rng = np.random.default_rng(seed)
    r1_a = rng.integers(0, distinct_values, size=rows)
    r2_a = rng.integers(0, distinct_values, size=rows)
    r1_b, r2_b = r1_a.copy(), r2_a.copy()
    hist1 = MultiDimHistogram.build(r1_a, r1_b, buckets_per_dim)
    hist2 = MultiDimHistogram.build(r2_a, r2_b, buckets_per_dim)

    result = ExperimentResult(
        experiment="example2",
        description="2-D histogram estimate vs truth for the empty (q1) and non-empty (q2) OTT pair",
        columns=["query", "estimated_selectivity", "true_selectivity"],
    )
    estimate_q1 = hist1.estimate_ott_pair_selectivity(0, 1, hist2)
    estimate_q2 = hist1.estimate_ott_pair_selectivity(0, 0, hist2)
    result.add_row(
        query="q1 (A1=0, A2=1, empty)",
        estimated_selectivity=estimate_q1,
        true_selectivity=true_ott_pair_selectivity(r1_a, r1_b, r2_a, r2_b, 0, 1),
    )
    result.add_row(
        query="q2 (A1=0, A2=0, non-empty)",
        estimated_selectivity=estimate_q2,
        true_selectivity=true_ott_pair_selectivity(r1_a, r1_b, r2_a, r2_b, 0, 0),
    )
    return result


def appendix_b_bounds(num_queries: int = 10, num_tables: int = 5, **kwargs: Any) -> ExperimentResult:
    """Appendix B: observed OTT round counts against the theoretical bounds."""
    records = _ott_records(
        num_tables=num_tables, num_queries=num_queries,
        rows_per_value=OTT_4JOIN_ROWS_PER_VALUE, **kwargs,
    )
    num_joins = num_tables - 1
    over_bound = overestimation_only_bound(num_joins)
    under_bound = underestimation_only_expected_steps(
        num_join_trees=2 ** num_tables, num_join_graph_edges=num_joins
    )
    result = ExperimentResult(
        experiment="appendix_b",
        description="Observed re-optimization rounds vs the Appendix B special-case bounds",
        columns=["query", "observed_rounds", "overestimation_bound_m_plus_1", "underestimation_S_N_over_M"],
    )
    for record in records:
        result.add_row(
            query=record.query_name,
            observed_rounds=record.plans_generated,
            overestimation_bound_m_plus_1=over_bound,
            underestimation_S_N_over_M=under_bound,
        )
    return result


# --------------------------------------------------------------------------- #
# Incremental re-optimization engine (beyond the paper's figures)
# --------------------------------------------------------------------------- #
def incremental_planning(
    joins: int = 4,
    num_queries: int = 6,
    rows_per_table: int = OTT_ROWS_PER_TABLE,
    sampling_ratio: float = OTT_SAMPLING_RATIO,
    seed: int = 7,
) -> ExperimentResult:
    """Per-round DP work of the incremental planner on the OTT workload.

    Round 1 must expand every mask (``2^K - 1`` for K relations); rounds 2+
    only the Γ-dirtied ones — the planning-time saving Section 3.3's overhead
    argument relies on.
    """
    records = _ott_records(
        num_tables=joins + 1,
        num_queries=num_queries,
        rows_per_value=OTT_4JOIN_ROWS_PER_VALUE,
        rows_per_table=rows_per_table,
        sampling_ratio=sampling_ratio,
        seed=seed,
    )
    result = ExperimentResult(
        experiment="incremental_planning",
        description="DP masks expanded per re-optimization round (round 1 = full search)",
        columns=[
            "query", "rounds", "round1_masks", "max_later_masks",
            "total_later_masks", "round1_planning_s", "later_planning_s",
        ],
    )
    for record in records:
        masks = [m for m in record.dp_masks_expanded_per_round if m is not None]
        if not masks:
            continue
        later = masks[1:]
        planning = record.planning_seconds_per_round
        result.add_row(
            query=record.query_name,
            rounds=record.plans_generated,
            round1_masks=masks[0],
            max_later_masks=max(later) if later else 0,
            total_later_masks=sum(later),
            round1_planning_s=planning[0] if planning else 0.0,
            later_planning_s=sum(planning[1:]),
        )
    return result


def _relations_equal(left: Relation, right: Relation) -> bool:
    """Byte-level equality of two relations (columns, rows, dtypes, order)."""
    if set(left) != set(right) or left.num_rows != right.num_rows:
        return False
    for name in left:
        a, b = left[name], right[name]
        if isinstance(a, DictEncodedArray) or isinstance(b, DictEncodedArray):
            if not (isinstance(a, DictEncodedArray) and isinstance(b, DictEncodedArray)):
                return False
            if not np.array_equal(a.codes, b.codes):
                return False
            if not np.array_equal(a.dictionary, b.dictionary):
                return False
            continue
        a, b = np.asarray(a), np.asarray(b)
        if a.dtype != b.dtype:
            return False
        # equal_nan on floats: an empty SUM/AVG is NaN on both sides, which
        # is the identical result (plain array_equal treats NaN != NaN).
        if a.dtype.kind == "f":
            if not np.array_equal(a, b, equal_nan=True):
                return False
        elif not np.array_equal(a, b):
            return False
    return True


def parallel_runtime(
    fact_rows: int = 400_000,
    dim_rows: int = 150_000,
    num_joins: int = 4,
    groups: int = 5_000,
    workers: int = 4,
    repeats: int = 3,
    seed: int = 11,
) -> ExperimentResult:
    """Serial vs morsel-parallel runtime on a star-schema 4-join pipeline.

    The workload is the ISSUE's 4-join hash-join benchmark: one fact relation
    joined N:1 against four dimension relations (every probe hits exactly one
    build row, so intermediate sizes stay put), followed by a grouped
    aggregation over the joined result.  Both modes run the same
    :mod:`repro.relalg` kernels; the parallel mode dispatches onto a
    ``workers``-sized :class:`TaskScheduler`.  Besides the timings, every row
    records ``bit_identical`` — the parallel output must equal the serial
    output byte for byte.
    """
    rng = np.random.default_rng(seed)
    fact_columns = {
        f"f.k{i}": rng.integers(0, dim_rows, size=fact_rows) for i in range(num_joins)
    }
    fact_columns["f.v"] = rng.uniform(0.0, 100.0, size=fact_rows)
    fact_columns["f.g"] = rng.integers(0, groups, size=fact_rows)
    fact = Relation(fact_columns)
    dims = []
    for i in range(num_joins):
        keys = rng.permutation(dim_rows)
        dims.append(
            Relation(
                {
                    f"d{i}.k": keys,
                    f"d{i}.payload": rng.integers(0, 1000, size=dim_rows),
                }
            )
        )
    aggregates = [
        Aggregate("sum", "f", "v", "total"),
        Aggregate("avg", "f", "v", "mean"),
        Aggregate("count", None, None, "n"),
    ]

    def run_joins(scheduler: Optional[TaskScheduler]) -> Relation:
        current = fact
        left_aliases = frozenset({"f"})
        for i, dim in enumerate(dims):
            predicates = [JoinPredicate("f", f"k{i}", f"d{i}", "k")]
            current = parallel_hash_join(
                current, dim, predicates, left_aliases, scheduler=scheduler
            )
            left_aliases = left_aliases | {f"d{i}"}
        return current

    def run_aggregate(joined: Relation, scheduler: Optional[TaskScheduler]) -> Relation:
        return group_aggregate(
            joined, [ColumnRef("f", "g")], aggregates, scheduler=scheduler
        )

    def timed_samples(fn: Callable[[], object]) -> List[float]:
        samples = []
        for _ in range(max(1, repeats)):
            started = monotonic_s()
            fn()
            samples.append(monotonic_s() - started)
        return samples

    host_cores = os.cpu_count() or 1

    def timed_parallel(
        fn: Callable[[], object], scheduler: TaskScheduler
    ) -> Tuple[List[float], float]:
        """Per-repeat wall samples plus the stage's per-task overhead fraction.

        Overhead is the share of usable pool capacity — wall-clock times the
        *effective* worker count (a 4-worker pool on a 1-core host can only
        ever use 1 core) — not spent inside task bodies: queueing, descriptor
        pickling and result transport.  The adaptive morsel sizer drives this
        same quantity below its 5% target per stage.
        """
        before = scheduler.stats().busy_seconds
        samples = timed_samples(fn)
        busy = scheduler.stats().busy_seconds - before
        capacity = sum(samples) * max(1, min(workers, host_cores))
        overhead = max(0.0, capacity - busy) / capacity if capacity > 0 else 0.0
        return samples, overhead

    scheduler = TaskScheduler(workers=workers, name="bench")
    serial_joined = run_joins(None)
    parallel_joined = run_joins(scheduler)
    joins_identical = _relations_equal(serial_joined, parallel_joined)
    serial_grouped = run_aggregate(serial_joined, None)
    parallel_grouped = run_aggregate(serial_joined, scheduler)
    agg_identical = _relations_equal(serial_grouped, parallel_grouped)

    join_serial = timed_samples(lambda: run_joins(None))
    join_parallel, join_overhead = timed_parallel(
        lambda: run_joins(scheduler), scheduler
    )
    agg_serial = timed_samples(lambda: run_aggregate(serial_joined, None))
    agg_parallel, agg_overhead = timed_parallel(
        lambda: run_aggregate(serial_joined, scheduler), scheduler
    )
    scheduler_stats = scheduler.stats()
    scheduler.close()

    result = ExperimentResult(
        experiment="parallel_runtime",
        description=(
            f"Serial vs {workers}-worker morsel runtime "
            f"({num_joins}-join star pipeline, {fact_rows} fact rows)"
        ),
        columns=[
            "stage", "workers", "host_cores", "serial_s", "parallel_s",
            "p50_s", "p95_s", "speedup", "overhead_fraction",
            "bit_identical", "rows_out", "max_queue_depth",
        ],
    )

    def add_stage(
        stage: str,
        serial_samples: List[float],
        parallel_samples: List[float],
        overhead: float,
        identical: bool,
        rows_out: int,
    ) -> None:
        serial_s = min(serial_samples)
        parallel_s = min(parallel_samples)
        result.add_row(
            stage=stage,
            workers=workers,
            host_cores=host_cores,
            serial_s=serial_s,
            parallel_s=parallel_s,
            p50_s=float(np.percentile(parallel_samples, 50)),
            p95_s=float(np.percentile(parallel_samples, 95)),
            speedup=serial_s / max(parallel_s, 1e-12),
            overhead_fraction=overhead,
            bit_identical=identical,
            rows_out=rows_out,
            max_queue_depth=scheduler_stats.max_queue_depth,
        )

    add_stage(
        f"{num_joins}join_hash", join_serial, join_parallel, join_overhead,
        joins_identical, serial_joined.num_rows,
    )
    add_stage(
        "group_aggregate", agg_serial, agg_parallel, agg_overhead,
        agg_identical, serial_grouped.num_rows,
    )
    # Total overhead: capacity-weighted combination of the stage fractions.
    join_wall, agg_wall = sum(join_parallel), sum(agg_parallel)
    total_wall = join_wall + agg_wall
    total_overhead = (
        (join_wall * join_overhead + agg_wall * agg_overhead) / total_wall
        if total_wall > 0
        else 0.0
    )
    add_stage(
        "total",
        [j + a for j, a in zip(join_serial, agg_serial)],
        [j + a for j, a in zip(join_parallel, agg_parallel)],
        total_overhead,
        joins_identical and agg_identical,
        serial_joined.num_rows,
    )
    return result


def _adaptive_star_database(
    fact_rows: int,
    num_dims: int,
    dim_rows: int,
    domain: int,
    correlated: bool,
    seed: int,
) -> Database:
    """A star schema whose first dimension join is deliberately mis-estimated.

    ``correlated=True`` plants the paper's OTT-style trap on the fact/first
    dimension pair: the fact's selection column ``a`` *is* its join key
    ``k1``, and ``d1``'s selection column ``b`` *is* its join key ``k`` —
    both uniform over ``domain`` values.  Selecting ``a = 0`` and ``b = 0``
    makes every surviving row pair join, so the true ``f ⋈ d1`` cardinality
    is ``|f_sel| · |d1_sel|`` while the AVI estimate multiplies in another
    ``1/domain`` — a ``domain``-fold underestimate the optimizer walks
    straight into.  The remaining dimensions are uncorrelated unique-key 1:1
    joins the estimator gets right.  ``correlated=False`` builds the same
    shape without the trap (the well-estimated control).
    """
    rng = np.random.default_rng(seed)
    db = Database(name=f"adaptive_star_{'skew' if correlated else 'uniform'}")

    fact_columns = {"a": rng.integers(0, domain, size=fact_rows, dtype=np.int64)}
    schema_columns = [Column("a", "int")]
    for index in range(1, num_dims + 1):
        name = f"k{index}"
        if correlated and index == 1:
            fact_columns[name] = fact_columns["a"].copy()
        else:
            fact_columns[name] = rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64)
        schema_columns.append(Column(name, "int"))
    db.create_table(Table(TableSchema("f", tuple(schema_columns)), fact_columns))

    for index in range(1, num_dims + 1):
        table_name = f"d{index}"
        if correlated and index == 1:
            b_column = rng.integers(0, domain, size=dim_rows, dtype=np.int64)
            columns = {"k": b_column.copy(), "b": b_column}
            schema = TableSchema(table_name, (Column("k", "int"), Column("b", "int")))
        else:
            columns = {
                "k": rng.permutation(dim_rows).astype(np.int64),
                "payload": rng.integers(0, 1000, size=dim_rows, dtype=np.int64),
            }
            schema = TableSchema(table_name, (Column("k", "int"), Column("payload", "int")))
        db.create_table(Table(schema, columns))
    db.analyze()
    return db


def _adaptive_star_query(num_dims: int, correlated: bool) -> Query:
    builder = QueryBuilder("star_skew" if correlated else "star_uniform")
    builder.table("f").filter("f", "a", "=", 0)
    for index in range(1, num_dims + 1):
        builder.table(f"d{index}")
        builder.join("f", f"k{index}", f"d{index}", "k")
    if correlated:
        builder.filter("d1", "b", "=", 0)
    builder.aggregate("count", output_name="result_rows")
    return builder.build()


def adaptive_execution(
    fact_rows: int = 600_000,
    num_dims: int = 5,
    dim_rows: int = 5_000,
    domain: int = 100,
    repeats: int = 3,
    seed: int = 17,
    replan_threshold: float = 2.0,
) -> ExperimentResult:
    """Adaptive (mid-execution re-optimized) vs static plan execution.

    Two scenarios over the same star shape:

    * ``skewed`` — the correlated fact/d1 pair makes the optimizer
      underestimate its join ``domain``-fold, so the static plan joins d1
      first and drags the exploded intermediate through every remaining
      join.  The adaptive executor observes the explosion at the first
      pipeline breaker, feeds the exact cardinality into Γ, re-plans the
      residual query (reusing the materialized scans) and defers d1 to the
      end — the final result is identical, the explosion is paid once
      instead of ``num_dims`` times.
    * ``uniform`` — the well-estimated control: no deviation ever reaches
      the threshold, so adaptive execution degenerates to the static plan
      plus bookkeeping, which is the re-planning overhead the benchmark
      reports (and gates at <10%).
    """
    result = ExperimentResult(
        experiment="adaptive_execution",
        description=(
            f"Static vs adaptive execution, {num_dims}-join star "
            f"({fact_rows} fact rows, mis-estimation factor {domain})"
        ),
        columns=[
            "scenario", "static_wall_s", "adaptive_wall_s", "adaptive_planning_s",
            "speedup", "overhead_fraction", "replans", "plan_switches",
            "intermediates_reused", "bit_identical", "rows_out",
        ],
    )
    for correlated in (True, False):
        db = _adaptive_star_database(
            fact_rows=fact_rows, num_dims=num_dims, dim_rows=dim_rows,
            domain=domain, correlated=correlated, seed=seed,
        )
        query = _adaptive_star_query(num_dims, correlated)
        optimizer = Optimizer(db)
        static_plan = optimizer.optimize(query)
        executor = Executor(db, cost_units=optimizer.settings.cost_units)
        settings = AdaptiveSettings(replan_threshold=replan_threshold)

        static_wall = float("inf")
        static_execution = None
        for _ in range(max(1, repeats)):
            static_execution = executor.execute_plan(static_plan, query)
            static_wall = min(static_wall, static_execution.wall_seconds)

        adaptive_total = float("inf")
        adaptive = None
        for _ in range(max(1, repeats)):
            candidate = AdaptiveExecutor(db, optimizer=optimizer, settings=settings).execute(
                query, plan=static_plan, gamma=Gamma()
            )
            total = candidate.execution.wall_seconds + candidate.planning_seconds
            if total < adaptive_total:
                adaptive_total = total
                adaptive = candidate

        assert static_execution is not None and adaptive is not None
        bit_identical = _relations_equal(
            static_execution.columns, adaptive.execution.columns
        )
        result.add_row(
            scenario="skewed" if correlated else "uniform",
            static_wall_s=static_wall,
            adaptive_wall_s=adaptive.execution.wall_seconds,
            adaptive_planning_s=adaptive.planning_seconds,
            speedup=static_wall / max(adaptive_total, 1e-12),
            overhead_fraction=max(0.0, adaptive_total - static_wall) / max(static_wall, 1e-12),
            replans=adaptive.replans,
            plan_switches=adaptive.plan_switches,
            intermediates_reused=adaptive.intermediates_reused,
            bit_identical=bit_identical,
            rows_out=adaptive.execution.num_rows,
        )
    return result


def batched_driver(
    joins: int = 4,
    num_queries: int = 8,
    max_workers: int = 4,
    rows_per_table: int = OTT_ROWS_PER_TABLE,
    sampling_ratio: float = OTT_SAMPLING_RATIO,
    seed: int = 7,
) -> ExperimentResult:
    """Serial vs concurrent batched re-optimization of one OTT workload.

    Checks the driver's contract — identical final plans — and reports the
    wall-clock saving plus how often the batch-level caches fired.
    """
    db = generate_ott_database(
        num_tables=joins + 1,
        rows_per_table=rows_per_table,
        rows_per_value=OTT_4JOIN_ROWS_PER_VALUE,
        seed=seed,
        sampling_ratio=sampling_ratio,
    )
    queries = make_ott_workload(
        db, num_tables=joins + 1, num_queries=num_queries, num_matching=joins, seed=seed
    )

    serial_started = monotonic_s()
    reoptimizer = Reoptimizer(db)
    serial_results = [reoptimizer.reoptimize(query) for query in queries]
    serial_seconds = monotonic_s() - serial_started

    driver = WorkloadDriver(db, settings=DriverSettings(max_workers=max_workers))
    batched_started = monotonic_s()
    batched_results = driver.run(queries)
    batched_seconds = monotonic_s() - batched_started

    plans_match = all(
        plans_identical(serial.final_plan, batched.final_plan)
        for serial, batched in zip(serial_results, batched_results)
    )
    result = ExperimentResult(
        experiment="batched_driver",
        description=f"Serial vs {max_workers}-worker batched re-optimization ({num_queries} OTT queries)",
        columns=[
            "mode", "queries", "wall_s", "plans_match",
            "plan_cache_hits", "gamma_warm_starts",
        ],
    )
    result.add_row(
        mode="serial", queries=len(queries), wall_s=serial_seconds, plans_match=True,
        plan_cache_hits=0, gamma_warm_starts=0,
    )
    result.add_row(
        mode=f"driver x{max_workers}",
        queries=len(queries),
        wall_s=batched_seconds,
        plans_match=plans_match,
        plan_cache_hits=driver.stats.plan_cache_hits,
        gamma_warm_starts=driver.stats.gamma_warm_starts,
    )
    driver.shutdown()
    return result


def _service_templates() -> Tuple[List[Query], Dict[str, List[Bindings]]]:
    """The parameterized TPC-H template mix the service benchmark serves."""
    revenue = (
        QueryBuilder("svc_revenue")
        .table("customer", "c").table("orders", "o").table("lineitem", "l")
        .filter_param("c", "c_mktsegment", "=")
        .filter_param("o", "o_orderdate", "<")
        .join("c", "c_custkey", "o", "o_custkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("o", "o_orderpriority")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .aggregate("count", output_name="orders")
        .build()
    )
    shipping = (
        QueryBuilder("svc_shipping")
        .table("orders", "o").table("lineitem", "l")
        .filter_param("o", "o_orderpriority", "=")
        .filter_param("l", "l_shipmode", "=")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .aggregate("sum", "l", "l_extendedprice", "value")
        .aggregate("count", output_name="lines")
        .build()
    )
    parts = (
        QueryBuilder("svc_parts")
        .table("part", "p").table("lineitem", "l").table("supplier", "s")
        .filter_param("p", "p_container", "=")
        .filter_param("l", "l_quantity", "<=")
        .join("p", "p_partkey", "l", "l_partkey")
        .join("s", "s_suppkey", "l", "l_suppkey")
        .aggregate("count", output_name="shipped")
        .build()
    )
    from repro.workloads.tpch import CONTAINERS, MARKET_SEGMENTS, ORDER_PRIORITIES, SHIP_MODES

    bindings = {
        "svc_revenue": [
            ["BUILDING", 1400], ["MACHINERY", 900], ["AUTOMOBILE", 1900],
        ],
        "svc_shipping": [
            ["1-URGENT", "AIR"], ["5-LOW", "RAIL"], ["2-HIGH", "SHIP"],
        ],
        "svc_parts": [
            ["SM CASE", 25], ["JUMBO PKG", 40], ["MED BAG", 10],
        ],
    }
    assert all(seg in MARKET_SEGMENTS for seg, _ in bindings["svc_revenue"])
    assert all(p in ORDER_PRIORITIES and m in SHIP_MODES for p, m in bindings["svc_shipping"])
    assert all(c in CONTAINERS for c, _ in bindings["svc_parts"])
    return [revenue, shipping, parts], bindings


def service_throughput(
    scale_factor: float = TPCH_SCALE_FACTOR,
    sampling_ratio: float = TPCH_SAMPLING_RATIO,
    concurrency: int = 8,
    repeats_per_binding: int = 5,
    seed: int = 17,
) -> ExperimentResult:
    """Queries/second: from-scratch planning vs the full query service.

    A parameterized TPC-H template mix (three templates x three binding sets,
    each repeated) is served at ``concurrency`` client threads in two modes
    over the same database and scheduler configuration:

    * **from_scratch** — every execution pays parse-free but full Algorithm 1
      planning plus execution (the service with both caches disabled);
    * **service** — the full stack: epoch-stamped result cache, sampling-
      validated plan cache, admission control.

    The contract asserted here (and gated by the benchmark wrapper) is
    ``>= 3x`` queries/second at concurrency 8 with bit-identical results for
    every (template, binding) pair.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import AdmissionStats, QueryService, ServiceSettings, ServiceStats

    db = generate_tpch_database(
        scale_factor=scale_factor, seed=seed, sampling_ratio=sampling_ratio
    )
    templates, bindings_by_name = _service_templates()
    rng = np.random.default_rng(seed)
    mix = []
    for template in templates:
        for binding_index, binding in enumerate(bindings_by_name[template.name]):
            mix.extend(
                (template, binding_index, binding) for _ in range(repeats_per_binding)
            )
    order = rng.permutation(len(mix))
    mix = [mix[i] for i in order]

    def run_mode(
        settings: ServiceSettings,
    ) -> Tuple[
        float, Dict[Tuple[str, int], Relation], List[str], ServiceStats, AdmissionStats
    ]:
        service = QueryService(db, settings=settings)
        outputs: Dict[Tuple[str, int], Relation] = {}
        outputs_lock = threading.Lock()

        def serve(item: Tuple[int, Tuple[Query, int, Bindings]]) -> str:
            index, (template, binding_index, binding) = item
            result = service.execute(
                template, binding, client=f"client{index % concurrency}"
            )
            with outputs_lock:
                outputs[(template.name, binding_index)] = result.execution.columns
            return result.source

        try:
            started = monotonic_s()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                sources = list(pool.map(serve, enumerate(mix)))
            elapsed = monotonic_s() - started
            stats = service.stats
            admission = service.admission_stats()
        finally:
            service.close()
        return elapsed, outputs, sources, stats, admission

    scratch_settings = ServiceSettings(
        use_plan_cache=False, use_result_cache=False,
        max_concurrent=concurrency, max_queued=len(mix),
    )
    service_settings = ServiceSettings(
        max_concurrent=concurrency, max_queued=len(mix),
    )
    scratch_elapsed, scratch_outputs, _, scratch_stats, _ = run_mode(scratch_settings)
    service_elapsed, service_outputs, service_sources, service_stats, admission = run_mode(
        service_settings
    )

    bit_identical = all(
        _relations_equal(scratch_outputs[key], service_outputs[key])
        for key in scratch_outputs
    )
    scratch_qps = len(mix) / max(scratch_elapsed, 1e-9)
    service_qps = len(mix) / max(service_elapsed, 1e-9)

    result = ExperimentResult(
        experiment="service_throughput",
        description=(
            f"From-scratch planning vs QueryService at concurrency {concurrency} "
            f"({len(mix)} executions over {len(templates)} parameterized TPC-H templates)"
        ),
        columns=[
            "mode", "queries", "wall_s", "qps", "speedup", "bit_identical",
            "fresh_plans", "validated_reuses", "drift_replans",
            "result_cache_hits", "coalesced", "rejected", "max_queue_depth",
        ],
    )
    result.add_row(
        mode="from_scratch", queries=len(mix), wall_s=scratch_elapsed,
        qps=scratch_qps, speedup=1.0, bit_identical=True,
        fresh_plans=scratch_stats.fresh_plans, validated_reuses=0,
        drift_replans=0, result_cache_hits=0, coalesced=0,
        rejected=scratch_stats.rejected, max_queue_depth=0,
    )
    result.add_row(
        mode="service", queries=len(mix), wall_s=service_elapsed,
        qps=service_qps, speedup=service_qps / max(scratch_qps, 1e-9),
        bit_identical=bit_identical,
        fresh_plans=service_stats.fresh_plans,
        validated_reuses=service_stats.validated_reuses,
        drift_replans=service_stats.drift_replans,
        result_cache_hits=service_stats.result_cache_hits,
        coalesced=service_stats.coalesced,
        rejected=service_stats.rejected,
        max_queue_depth=admission.max_queue_depth,
    )
    return result


def sharded_service(
    scale_factor: float = 0.02,
    sampling_ratio: float = 0.25,
    num_shards: int = 4,
    repeats_per_binding: int = 2,
    seed: int = 17,
) -> ExperimentResult:
    """Queries/second: one QueryService vs the sharded scatter-gather service.

    The same parameterized TPC-H template mix as :func:`service_throughput`
    (every template routes ``scatter``: its partitioned tables join on their
    partition columns) is served serially, with result caching disabled in
    both modes so every execution pays real scatter/merge work:

    * **single_node** — one :class:`~repro.service.QueryService` over the
      unsharded database;
    * **sharded** — a :class:`~repro.service.ShardedQueryService` at
      ``num_shards`` hash-partitioned shards, each shard's residual plan
      executing in parallel over the process scheduler, partial aggregates
      merged exactly and float aggregates gathered in canonical order.

    Besides the timings every row records ``bit_identical``: the sharded
    output must equal the single-node output byte for byte for every
    (template, binding) pair — the merge determinism the property suites
    prove at kernel level, asserted here end to end.
    """
    from repro.service import QueryService, ServiceSettings, ShardedQueryService

    db = generate_tpch_database(
        scale_factor=scale_factor, seed=seed, sampling_ratio=sampling_ratio
    )
    templates, bindings_by_name = _service_templates()
    rng = np.random.default_rng(seed)
    mix = []
    for template in templates:
        for binding_index, binding in enumerate(bindings_by_name[template.name]):
            mix.extend(
                (template, binding_index, binding) for _ in range(repeats_per_binding)
            )
    order = rng.permutation(len(mix))
    mix = [mix[i] for i in order]

    settings = ServiceSettings(use_result_cache=False)
    reopt_settings = ReoptimizationSettings(
        sampling_ratio=sampling_ratio, sampling_seed=seed
    )

    def run_mode(make_service: Callable[[], Any]) -> Tuple[float, Dict[Tuple[str, int], Relation], Any]:
        service = make_service()
        outputs: Dict[Tuple[str, int], Relation] = {}
        try:
            started = monotonic_s()
            for template, binding_index, binding in mix:
                result = service.execute(template, binding)
                outputs[(template.name, binding_index)] = result.execution.columns
            elapsed = monotonic_s() - started
            stats = service.stats
        finally:
            service.close()
        return elapsed, outputs, stats

    single_elapsed, single_outputs, single_stats = run_mode(
        lambda: QueryService(db, settings=settings, reopt_settings=reopt_settings)
    )
    sharded_elapsed, sharded_outputs, sharded_stats = run_mode(
        lambda: ShardedQueryService(
            db,
            num_shards=num_shards,
            settings=settings,
            reopt_settings=reopt_settings,
        )
    )

    bit_identical = all(
        _relations_equal(single_outputs[key], sharded_outputs[key])
        for key in single_outputs
    )
    single_qps = len(mix) / max(single_elapsed, 1e-9)
    sharded_qps = len(mix) / max(sharded_elapsed, 1e-9)

    result = ExperimentResult(
        experiment="sharded_service",
        description=(
            f"Single-node QueryService vs {num_shards}-shard scatter-gather "
            f"coordinator ({len(mix)} executions over {len(templates)} "
            f"parameterized TPC-H templates, TPC-H sf={scale_factor})"
        ),
        columns=[
            "mode", "shards", "host_cores", "queries", "wall_s", "qps",
            "speedup", "bit_identical", "scatter_queries", "partial_merges",
            "gather_merges", "gossip_entries", "inline_shard_reruns",
        ],
    )
    result.add_row(
        mode="single_node", shards=1, host_cores=os.cpu_count() or 1,
        queries=len(mix), wall_s=single_elapsed, qps=single_qps, speedup=1.0,
        bit_identical=True, scatter_queries=0, partial_merges=0,
        gather_merges=0, gossip_entries=0, inline_shard_reruns=0,
    )
    result.add_row(
        mode="sharded", shards=num_shards, host_cores=os.cpu_count() or 1,
        queries=len(mix), wall_s=sharded_elapsed, qps=sharded_qps,
        speedup=sharded_qps / max(single_qps, 1e-9),
        bit_identical=bit_identical,
        scatter_queries=sharded_stats.scatter_queries,
        partial_merges=sharded_stats.partial_merges,
        gather_merges=sharded_stats.gather_merges,
        gossip_entries=sharded_stats.gossip_entries,
        inline_shard_reruns=sharded_stats.inline_shard_reruns,
    )
    return result


def service_latency(
    scale_factor: float = 0.02,
    sampling_ratio: float = 0.25,
    num_shards: int = 2,
    num_requests: int = 96,
    sweep_requests: int = 40,
    start_qps: float = 8.0,
    operating_fraction: float = 0.8,
    slo_p99_over_p50: float = 10.0,
    slo_max_shed_rate: float = 0.01,
    num_clients: int = 4,
    think_time_s: float = 0.0,
    seed: int = 17,
) -> ExperimentResult:
    """Latency under load: tail percentiles and per-stage breakdowns.

    The load generator (:mod:`repro.bench.loadgen`) drives the single-node
    service and the ``num_shards``-shard coordinator over the same
    parameterized TPC-H template mix as :func:`service_throughput`, zipf(1)
    skewed, with result caching disabled so every request pays validation,
    planning (cache-hit or replan) and execution — the latency being
    measured is serving work, not cache probes.

    Per mode, a saturation sweep doubles offered open-loop qps until the
    service stops keeping up (completions under 90% of offered, or any
    shedding); the last sustained rate is the measured saturation.  The
    scored runs then execute at ``operating_fraction`` (default 80%) of
    that saturation in open loop (Poisson arrivals), plus a closed loop of
    ``num_clients`` synchronous clients, aggregating every request's
    :class:`~repro.service.tracing.RequestTrace` into p50/p95/p99, shed
    rate and mean seconds per serving stage.

    The SLO gated by the benchmark wrapper: at the operating point,
    ``p99 <= slo_p99_over_p50 x p50`` and shed rate at most
    ``slo_max_shed_rate`` — tail latency bounded relative to the median,
    not in wall-clock terms, so the contract holds on any host speed.
    Every row also asserts the reproducibility contract: the request
    schedule is a pure function of the seed, and query outputs are
    bit-identical to a serial single-node reference.
    """
    from repro.bench.loadgen import (
        LoadgenConfig,
        LoadResult,
        TemplateMix,
        build_schedule,
        find_saturation_qps,
        run_load,
    )
    from repro.service import QueryService, ServiceSettings, ShardedQueryService

    db = generate_tpch_database(
        scale_factor=scale_factor, seed=seed, sampling_ratio=sampling_ratio
    )
    templates, bindings_by_name = _service_templates()
    mix = TemplateMix.build(templates, bindings_by_name)
    settings = ServiceSettings(use_result_cache=False)
    reopt_settings = ReoptimizationSettings(
        sampling_ratio=sampling_ratio, sampling_seed=seed
    )

    factories: Dict[str, Callable[[], Any]] = {
        "single_node": lambda: QueryService(
            db, settings=settings, reopt_settings=reopt_settings
        ),
        "sharded": lambda: ShardedQueryService(
            db, num_shards=num_shards, settings=settings, reopt_settings=reopt_settings
        ),
    }

    # Serial single-node reference outputs for the bit-identity contract.
    reference: Dict[Tuple[str, int], Relation] = {}
    reference_service = factories["single_node"]()
    try:
        for template_index, template in enumerate(mix.templates):
            for binding_index in range(len(mix.bindings[template_index][1])):
                _, binding = mix.lookup(template_index, binding_index)
                executed = reference_service.execute(template, binding)
                reference[(template.name, binding_index)] = executed.execution.columns
    finally:
        reference_service.close()

    def bit_identical(run: LoadResult) -> bool:
        return all(
            key in reference and _relations_equal(reference[key], columns)
            for key, columns in run.outputs.items()
        ) and bool(run.outputs)

    base_config = LoadgenConfig(
        mode="open", num_requests=num_requests, zipf_s=1.0, seed=seed,
        num_clients=num_clients, think_time_s=think_time_s,
    )
    sweep_config = LoadgenConfig(
        mode="open", num_requests=sweep_requests, zipf_s=1.0, seed=seed,
        num_clients=num_clients, think_time_s=think_time_s,
    )
    # The schedule is a pure function of (config, mix): two builds agree.
    reproducible = build_schedule(base_config, mix) == build_schedule(base_config, mix)

    result = ExperimentResult(
        experiment="service_latency",
        description=(
            f"Latency SLO harness: single-node vs {num_shards}-shard service "
            f"under open-loop (Poisson, {operating_fraction:.0%} of measured "
            f"saturation) and closed-loop ({num_clients} clients) load "
            f"({num_requests} requests over {len(templates)} parameterized "
            f"TPC-H templates, zipf(1), TPC-H sf={scale_factor})"
        ),
        columns=[
            "mode", "loop", "shards", "host_cores", "saturation_qps",
            "offered_qps", "achieved_qps", "requests", "completed",
            "shed_rate", "p50_ms", "p95_ms", "p99_ms", "p99_over_p50",
            "queue_ms", "validation_ms", "planning_ms", "execution_ms",
            "merge_ms", "overhead_ms", "slo_ok", "bit_identical",
            "reproducible",
        ],
    )

    def add_run(mode: str, loop: str, saturation: float, run: LoadResult) -> None:
        latency = run.latency
        ratio = latency.p99_s / max(latency.p50_s, 1e-9)
        slo_ok = ratio <= slo_p99_over_p50 and run.shed_rate <= slo_max_shed_rate
        result.add_row(
            mode=mode, loop=loop,
            shards=num_shards if mode == "sharded" else 1,
            host_cores=os.cpu_count() or 1,
            saturation_qps=saturation,
            offered_qps=run.offered / max(run.wall_s, 1e-9),
            achieved_qps=run.achieved_qps,
            requests=run.offered, completed=run.completed,
            shed_rate=run.shed_rate,
            p50_ms=latency.p50_s * 1e3, p95_ms=latency.p95_s * 1e3,
            p99_ms=latency.p99_s * 1e3, p99_over_p50=ratio,
            queue_ms=run.stages.get("queue_wait_s", 0.0) * 1e3,
            validation_ms=run.stages.get("validation_s", 0.0) * 1e3,
            planning_ms=run.stages.get("planning_s", 0.0) * 1e3,
            execution_ms=run.stages.get("execution_s", 0.0) * 1e3,
            merge_ms=run.stages.get("merge_s", 0.0) * 1e3,
            overhead_ms=run.stages.get("overhead_s", 0.0) * 1e3,
            slo_ok=slo_ok, bit_identical=bit_identical(run),
            reproducible=reproducible,
        )

    for mode in ("single_node", "sharded"):
        make_service = factories[mode]
        saturation, _ = find_saturation_qps(
            make_service, mix, sweep_config, start_qps=start_qps
        )
        operating_config = LoadgenConfig(
            mode="open", num_requests=num_requests,
            target_qps=max(operating_fraction * saturation, 1e-3),
            zipf_s=1.0, seed=seed,
            num_clients=num_clients, think_time_s=think_time_s,
        )
        closed_config = LoadgenConfig(
            mode="closed", num_requests=num_requests, zipf_s=1.0, seed=seed,
            num_clients=num_clients, think_time_s=think_time_s,
        )
        for loop, config in (("open", operating_config), ("closed", closed_config)):
            service = make_service()
            try:
                run = run_load(service, mix, config)
            finally:
                service.close()
            add_run(mode, loop, saturation, run)
    return result
