"""The experiment harness shared by all figure benchmarks.

``run_query_suite`` runs every query of a workload through the full paper
pipeline — original optimization, Algorithm 1 re-optimization, execution of
both the original and the final plan — and records the metrics the paper's
figures plot:

* "running time" of the original and the re-optimized plan, both as the
  deterministic simulated cost (cost model at true cardinalities) and as
  measured wall-clock seconds;
* number of plans generated during re-optimization (Figures 5/8/16/20);
* time spent inside re-optimization, so the "excluding vs including
  re-optimization time" figures (6/9/17/18) can be produced;
* per-round execution times of the intermediate plans (Figures 14/15).

``calibrated_settings`` reproduces the "with calibration of the cost units"
configuration by fitting the five cost units against the executor
(Section 5.1.2) and returning optimizer settings that use them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.cardinality.gamma import Gamma
from repro.cost.calibration import calibrate_cost_units
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.settings import OptimizerSettings
from repro.relalg import DEFAULT_MORSEL_ROWS, TaskScheduler
from repro.reopt.adaptive import AdaptiveExecutor, AdaptiveSettings
from repro.reopt.algorithm import ReoptimizationSettings, Reoptimizer
from repro.reopt.driver import DriverSettings, WorkloadDriver
from repro.sql.ast import Query
from repro.storage.catalog import Database


@dataclass
class QueryRunRecord:
    """All metrics collected for one query instance."""

    query_name: str
    original_simulated_cost: float
    reoptimized_simulated_cost: float
    original_wall_seconds: float
    reoptimized_wall_seconds: float
    plans_generated: int
    plan_changed: bool
    reoptimization_seconds: float
    sampling_seconds: float
    converged: bool
    #: Simulated cost of the plan produced in each re-optimization round
    #: (index 0 = original plan) — the data behind Figures 14/15.
    per_round_simulated_cost: List[float] = field(default_factory=list)
    #: Wall-clock seconds spent inside the optimizer per round; with the
    #: incremental planner, round 2+ entries shrink towards zero.
    planning_seconds_per_round: List[float] = field(default_factory=list)
    #: DP masks (re-)expanded per round (None entries for GEQO rounds).
    dp_masks_expanded_per_round: List[Optional[int]] = field(default_factory=list)
    #: Adaptive-execution metrics (None unless ``run_query_suite`` ran with
    #: ``adaptive_execution=True``): the original plan executed through the
    #: adaptive executor, re-planning on observed mis-estimates.
    adaptive_wall_seconds: Optional[float] = None
    adaptive_planning_seconds: Optional[float] = None
    adaptive_simulated_cost: Optional[float] = None
    adaptive_replans: Optional[int] = None
    adaptive_plan_switches: Optional[int] = None
    adaptive_intermediates_reused: Optional[int] = None

    @property
    def total_with_reoptimization(self) -> float:
        """Re-optimized running time including the re-optimization overhead.

        Overhead is charged in wall-clock seconds on top of the re-optimized
        plan's wall-clock time (the paper's Figures 6/9/17/18 use the same
        accounting).
        """
        return self.reoptimized_wall_seconds + self.reoptimization_seconds


def run_query_suite(
    db: Database,
    queries: Sequence[Query],
    optimizer_settings: Optional[OptimizerSettings] = None,
    reopt_settings: Optional[ReoptimizationSettings] = None,
    execute_intermediate_plans: bool = False,
    execute_plans: bool = True,
    concurrency: int = 1,
    driver_settings: Optional[DriverSettings] = None,
    workers: Union[int, str] = 1,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    adaptive_execution: bool = False,
    adaptive_settings: Optional[AdaptiveSettings] = None,
) -> List[QueryRunRecord]:
    """Run the full pipeline for every query and collect per-query records.

    With ``concurrency > 1`` (or explicit ``driver_settings``) the
    re-optimization phase runs in batched mode through the concurrent
    :class:`~repro.reopt.driver.WorkloadDriver`.

    ``workers > 1`` attaches one shared morsel scheduler to the *whole*
    pipeline — plan execution, sampling validation and the driver all
    dispatch morsel tasks into the same ``workers``-sized pool of worker
    processes.  ``workers="auto"`` sizes the pool by the host (``min(cores
    - 2, RAM / 4GB)``, floor 1).  Results are bit-identical to
    ``workers=1``; only wall-clock changes.

    ``adaptive_execution=True`` additionally executes each query's
    *original* (static) plan through the :class:`AdaptiveExecutor` — true
    cardinalities observed at pipeline breakers feed Γ and may re-plan the
    residual query mid-flight — and records the adaptive metrics on the
    per-query record.
    """
    optimizer = Optimizer(db, settings=optimizer_settings)
    scheduler = (
        TaskScheduler(workers=workers, name="suite")
        if workers == "auto" or (isinstance(workers, int) and workers > 1)
        else None
    )
    executor = Executor(
        db,
        cost_units=optimizer.settings.cost_units,
        scheduler=scheduler,
        morsel_rows=morsel_rows,
        nested_loop_block_elements=optimizer.settings.nested_loop_block_elements,
    )
    if concurrency > 1 or driver_settings is not None:
        settings = driver_settings if driver_settings is not None else DriverSettings()
        if concurrency > 1 and settings.max_workers != concurrency:
            settings = replace(settings, max_workers=concurrency)
        driver = WorkloadDriver(
            db,
            optimizer_settings=optimizer_settings,
            reopt_settings=reopt_settings,
            settings=settings,
            scheduler=scheduler,
        )
        results = driver.run(queries)
        if scheduler is None:
            # The driver created (and therefore owns) its scheduler.
            driver.shutdown()
    else:
        reoptimizer = Reoptimizer(
            db, optimizer=optimizer, settings=reopt_settings, scheduler=scheduler
        )
        results = [reoptimizer.reoptimize(query) for query in queries]
    adaptive_executor = (
        AdaptiveExecutor(
            db,
            optimizer=optimizer,
            settings=adaptive_settings,
            scheduler=scheduler,
            morsel_rows=morsel_rows,
        )
        if adaptive_execution
        else None
    )
    records: List[QueryRunRecord] = []
    for query, result in zip(queries, results):
        if execute_plans:
            original_execution = executor.execute_plan(result.original_plan, query)
            if result.plan_changed:
                final_execution = executor.execute_plan(result.final_plan, query)
            else:
                final_execution = original_execution
        else:
            original_execution = None
            final_execution = None

        per_round_costs: List[float] = []
        if execute_intermediate_plans:
            seen_signatures = set()
            for record in result.report.rounds:
                signature = record.plan.signature()
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                execution = executor.execute_plan(record.plan, query)
                per_round_costs.append(execution.simulated_cost)

        adaptive_result = None
        if adaptive_executor is not None:
            adaptive_result = adaptive_executor.execute(
                query, plan=result.original_plan, gamma=Gamma()
            )

        records.append(
            QueryRunRecord(
                query_name=query.name,
                original_simulated_cost=(
                    original_execution.simulated_cost if original_execution else 0.0
                ),
                reoptimized_simulated_cost=(
                    final_execution.simulated_cost if final_execution else 0.0
                ),
                original_wall_seconds=(
                    original_execution.wall_seconds if original_execution else 0.0
                ),
                reoptimized_wall_seconds=(
                    final_execution.wall_seconds if final_execution else 0.0
                ),
                plans_generated=result.report.num_plans_generated,
                plan_changed=result.plan_changed,
                reoptimization_seconds=result.reoptimization_seconds,
                sampling_seconds=result.report.total_sampling_seconds,
                converged=result.converged,
                per_round_simulated_cost=per_round_costs,
                planning_seconds_per_round=[
                    record.planning_seconds for record in result.report.rounds
                ],
                dp_masks_expanded_per_round=result.report.dp_masks_per_round(),
                adaptive_wall_seconds=(
                    adaptive_result.execution.wall_seconds if adaptive_result else None
                ),
                adaptive_planning_seconds=(
                    adaptive_result.planning_seconds if adaptive_result else None
                ),
                adaptive_simulated_cost=(
                    adaptive_result.execution.simulated_cost if adaptive_result else None
                ),
                adaptive_replans=adaptive_result.replans if adaptive_result else None,
                adaptive_plan_switches=(
                    adaptive_result.plan_switches if adaptive_result else None
                ),
                adaptive_intermediates_reused=(
                    adaptive_result.intermediates_reused if adaptive_result else None
                ),
            )
        )
    if scheduler is not None:
        scheduler.close()
    return records


def calibrated_settings(
    db: Database,
    base_settings: Optional[OptimizerSettings] = None,
    calibration_queries: Optional[Sequence[Query]] = None,
    scheduler: Optional[TaskScheduler] = None,
) -> OptimizerSettings:
    """Return optimizer settings whose cost units were calibrated on ``db``.

    This is the paper's "with calibration" configuration: the five cost units
    are replaced by values fitted so that estimated costs are commensurate
    with observed execution effort on this machine.  Pass the deployment's
    shared morsel ``scheduler`` to calibrate against the parallel runtime's
    wall clock instead of the serial one.
    """
    base = base_settings if base_settings is not None else OptimizerSettings()
    calibration = calibrate_cost_units(db, queries=calibration_queries, scheduler=scheduler)
    return base.with_units(calibration.units)


def aggregate_by_template(records: Sequence[QueryRunRecord]) -> Dict[str, List[QueryRunRecord]]:
    """Group instance records (named ``q3_i0``, ``q3_i1``, ...) by template name."""
    grouped: Dict[str, List[QueryRunRecord]] = {}
    for record in records:
        template = record.query_name.split("_i")[0]
        grouped.setdefault(template, []).append(record)
    return grouped


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
