"""Experiment drivers regenerating every figure of the paper's evaluation."""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.harness import QueryRunRecord, run_query_suite, calibrated_settings
from repro.bench import experiments

__all__ = [
    "ExperimentResult",
    "QueryRunRecord",
    "calibrated_settings",
    "experiments",
    "run_query_suite",
]
