"""Plain-text reporting of experiment results and latency aggregation.

Every experiment driver returns an :class:`ExperimentResult`: a titled list of
row dictionaries plus the column order to print.  ``to_text()`` renders the
same rows/series the corresponding figure of the paper plots, so running a
bench with ``-s`` shows a table that can be compared side by side with the
paper (and is what EXPERIMENTS.md records).

The latency helpers (:class:`LatencySummary`, :func:`summarize_latencies`,
:func:`stage_breakdown`) turn the per-request traces the load generator
collects (:mod:`repro.bench.loadgen`) into the tail percentiles and
per-stage means the SLO gate reads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.tracing import RequestTrace


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one row (missing columns render as blanks)."""
        self.rows.append(values)

    def column_values(self, column: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(column) for row in self.rows]

    def to_text(self, max_rows: Optional[int] = None) -> str:
        """Render the result as an aligned plain-text table."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        formatted: List[List[str]] = []
        for row in rows:
            formatted.append([_format_value(row.get(column)) for column in self.columns])
        widths = [len(column) for column in self.columns]
        for line in formatted:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(self.columns))
        separator = "  ".join("-" * widths[i] for i in range(len(self.columns)))
        body = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in formatted
        ]
        lines = [f"== {self.experiment}: {self.description} ==", header, separator, *body]
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


@dataclass
class LatencySummary:
    """Order statistics of one latency population (seconds).

    Percentiles use ``numpy.percentile`` with linear interpolation, so two
    runs over identical samples summarize bit-identically."""

    count: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """The summary as plain floats (JSON-artifact friendly)."""
        return {
            "count": float(self.count),
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """Aggregate a latency population into count/mean/p50/p95/p99/max."""
    if not values:
        return LatencySummary()
    array = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(array, [50.0, 95.0, 99.0])
    return LatencySummary(
        count=int(array.size),
        mean_s=float(array.mean()),
        p50_s=float(p50),
        p95_s=float(p95),
        p99_s=float(p99),
        max_s=float(array.max()),
    )


def stage_breakdown(traces: Iterable["RequestTrace"]) -> Dict[str, float]:
    """Mean seconds spent per serving stage across ``traces``.

    Keys are :data:`repro.service.tracing.STAGE_FIELDS` plus ``overhead_s``
    (wall time no stage accounts for: statement prep, cache probes, trace
    bookkeeping).  Empty input yields all-zero means rather than NaN."""
    from repro.service.tracing import STAGE_FIELDS

    sums: Dict[str, float] = {name: 0.0 for name in STAGE_FIELDS}
    sums["overhead_s"] = 0.0
    count = 0
    for trace in traces:
        for name, seconds in trace.stage_seconds().items():
            sums[name] += seconds
        sums["overhead_s"] += trace.overhead_s
        count += 1
    if count == 0:
        return sums
    return {name: total / count for name, total in sums.items()}


def _format_value(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
