"""Plain-text reporting of experiment results.

Every experiment driver returns an :class:`ExperimentResult`: a titled list of
row dictionaries plus the column order to print.  ``to_text()`` renders the
same rows/series the corresponding figure of the paper plots, so running a
bench with ``-s`` shows a table that can be compared side by side with the
paper (and is what EXPERIMENTS.md records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one row (missing columns render as blanks)."""
        self.rows.append(values)

    def column_values(self, column: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(column) for row in self.rows]

    def to_text(self, max_rows: Optional[int] = None) -> str:
        """Render the result as an aligned plain-text table."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        formatted: List[List[str]] = []
        for row in rows:
            formatted.append([_format_value(row.get(column)) for column in self.columns])
        widths = [len(column) for column in self.columns]
        for line in formatted:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(self.columns))
        separator = "  ".join("-" * widths[i] for i in range(len(self.columns)))
        body = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in formatted
        ]
        lines = [f"== {self.experiment}: {self.description} ==", header, separator, *body]
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _format_value(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
