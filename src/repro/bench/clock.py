"""The one monotonic clock every latency number in the repo is read from.

Before this module existed the serving stack mixed two clocks: admission
deadlines were computed with ``time.monotonic`` while every latency/trace
measurement used ``time.perf_counter``.  Both are monotonic, but they are
*different* clocks (different epochs, potentially different resolution), so
an admission deadline and a request trace were not directly comparable —
"how much of this request's latency budget went to queueing" could not be
answered by subtracting stamps.

``monotonic_s`` standardizes on ``time.perf_counter``: it is the
highest-resolution monotonic clock CPython offers and it is the clock the
scheduler, executor and sampling estimator already stamp their wall-clock
accounting with, so every deadline, queue wait and per-stage trace duration
lives on one time axis.

Rules of use:

* every deadline (``deadline = monotonic_s() + timeout``) and every duration
  (``monotonic_s() - started``) in the service/bench layers goes through this
  helper — never ``time.monotonic`` or a bare ``time.perf_counter``;
* kernel ``*_task`` bodies still must not read any clock at all (repro-lint
  RPL003): timing belongs to the scheduler side of the queue.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s"]


def monotonic_s() -> float:
    """Seconds on the shared monotonic clock (``time.perf_counter``).

    Only differences and deadlines derived from this value are meaningful;
    the epoch is arbitrary (typically process start).
    """
    return time.perf_counter()
