"""Config-driven load generator for the query service.

Drives a :class:`~repro.service.QueryService` (or the sharded coordinator —
anything with the service ``execute`` signature) with a reproducible request
stream over a zipf-skewed mix of prepared templates, and collects the
per-request traces (:class:`~repro.service.tracing.RequestTrace`) the
latency harness aggregates into p50/p95/p99, shed rate and per-stage
breakdowns.

Two arrival processes are supported:

* **open loop** (``mode="open"``) — request arrivals follow a Poisson
  process at ``target_qps``: inter-arrival gaps are exponential draws, and
  a slow server does *not* slow the arrivals down.  This is the process
  that exposes queueing collapse: offered load keeps arriving while the
  queue backs up, so shed rate and tail latency are measured under honest
  pressure (closed-loop generators famously hide both by self-throttling —
  the "coordinated omission" failure).
* **closed loop** (``mode="closed"``) — ``num_clients`` synchronous
  clients each issue a request, wait for the response, think for
  ``think_time_s`` and repeat.  Offered load adapts to service speed; this
  is the process that models interactive sessions and measures latency at
  a sustainable operating point.

Reproducibility contract: :func:`build_schedule` is a pure function of the
config — every random draw (template choice via zipf weights, exponential
inter-arrival gaps, client assignment) comes from one
``numpy.random.default_rng(seed)`` consumed in a single thread, so the same
config always yields the bit-identical schedule.  Execution timing is of
course wall-clock, but the *work* (which template, which binding, which
client, in which order per client) is seed-determined, and query outputs
are bit-identical across runs and modes.

This module intentionally is **not** re-exported from
``repro.bench.__init__``: the service layer imports
:mod:`repro.bench.clock`, so pulling loadgen (which imports the service
layer at module scope) into the package ``__init__`` would create an import
cycle.  Import it as ``from repro.bench import loadgen`` /
``from repro.bench.loadgen import run_load`` instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.bench.clock import monotonic_s
from repro.bench.reporting import LatencySummary, stage_breakdown, summarize_latencies
from repro.relalg import Relation
from repro.service.admission import BackpressureError
from repro.service.tracing import RequestTrace
from repro.sql.ast import Bindings, Query


class _ExecutesStatements(Protocol):
    """Structural type of the services loadgen can drive."""

    def execute(
        self,
        statement: Query,
        params: Optional[Bindings] = None,
        client: str = "default",
        trace: Optional[RequestTrace] = None,
    ) -> object: ...


@dataclass(frozen=True)
class TemplateMix:
    """The prepared statements and binding sets a load run draws from.

    ``weights`` ranks the flattened (template, binding) pairs for the zipf
    skew: pair ``k`` (0-based, in the deterministic order ``pairs()``
    returns) is drawn with probability proportional to ``1 / (k+1)**s``.
    """

    templates: Tuple[Query, ...]
    bindings: Tuple[Tuple[str, Tuple[Bindings, ...]], ...]

    @classmethod
    def build(
        cls, templates: Sequence[Query], bindings: Dict[str, Sequence[Bindings]]
    ) -> "TemplateMix":
        """Normalize the experiments-module mix shape into a frozen mix."""
        ordered = tuple(templates)
        named = tuple(
            (template.name, tuple(bindings[template.name])) for template in ordered
        )
        return cls(templates=ordered, bindings=named)

    def pairs(self) -> List[Tuple[int, int]]:
        """All (template_index, binding_index) pairs, deterministic order."""
        out: List[Tuple[int, int]] = []
        for template_index, (_, binding_set) in enumerate(self.bindings):
            for binding_index in range(len(binding_set)):
                out.append((template_index, binding_index))
        return out

    def lookup(self, template_index: int, binding_index: int) -> Tuple[Query, Bindings]:
        template = self.templates[template_index]
        return template, self.bindings[template_index][1][binding_index]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: arrival process, mix skew, scale, seed."""

    #: ``"open"`` (Poisson arrivals at ``target_qps``) or ``"closed"``
    #: (``num_clients`` clients with ``think_time_s`` between requests).
    mode: str = "open"
    #: Total requests in the schedule (both modes).
    num_requests: int = 100
    #: Open loop: offered arrival rate (requests/second).
    target_qps: float = 50.0
    #: Closed loop: number of synchronous clients.
    num_clients: int = 4
    #: Closed loop: seconds each client thinks between its requests.
    think_time_s: float = 0.0
    #: Zipf skew exponent over the (template, binding) pairs; ``0`` is
    #: uniform, ``1`` is the classic web-workload skew.
    zipf_s: float = 1.0
    #: Seed of the one RNG every schedule draw comes from.
    seed: int = 17
    #: Open loop: worker threads standing by to issue arrivals.  Size it
    #: above the service's ``max_concurrent + max_queued`` so admission
    #: control — not the generator's own pool — is what sheds load.
    open_loop_workers: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown loadgen mode {self.mode!r}")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.mode == "open" and self.target_qps <= 0:
            raise ValueError("target_qps must be positive in open-loop mode")
        if self.mode == "closed" and self.num_clients <= 0:
            raise ValueError("num_clients must be positive in closed-loop mode")


@dataclass(frozen=True)
class ScheduledRequest:
    """One request of the schedule (pure data, no timing state)."""

    index: int
    #: Seconds after run start this request arrives (open loop; ``0.0`` in
    #: closed loop, where think time and service time set the pace).
    arrival_s: float
    client: str
    template_index: int
    binding_index: int


@dataclass
class LoadResult:
    """Everything one load run measured."""

    config: LoadgenConfig
    #: Wall seconds from first arrival to last response.
    wall_s: float = 0.0
    #: Open loop: seconds the schedule's arrivals span (the last arrival
    #: offset).  ``wall_s - schedule_span_s`` is the drain time — how long
    #: the server kept working after offered load stopped, the direct
    #: measure of whether it kept up.
    schedule_span_s: float = 0.0
    #: Requests offered / completed / rejected.
    offered: int = 0
    completed: int = 0
    shed: int = 0
    timed_out: int = 0
    #: Completed requests per wall second.
    achieved_qps: float = 0.0
    #: Rejected (shed + timed out) fraction of offered requests.
    shed_rate: float = 0.0
    #: Latency summary over *completed* requests only.
    latency: LatencySummary = field(default_factory=LatencySummary)
    #: Mean seconds per serving stage over completed requests.
    stages: Dict[str, float] = field(default_factory=dict)
    #: Completed-request count per serving source (fresh/result_cache/...).
    sources: Dict[str, int] = field(default_factory=dict)
    #: Every request's trace, completed and rejected alike.
    traces: List[RequestTrace] = field(default_factory=list)
    #: (template name, binding index) → output columns, for bit-identity
    #: checks across runs and modes.
    outputs: Dict[Tuple[str, int], Relation] = field(default_factory=dict)


def zipf_weights(count: int, s: float) -> np.ndarray:
    """Normalized zipf(s) probabilities over ``count`` ranks."""
    if count <= 0:
        raise ValueError("count must be positive")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, float(s))
    return weights / weights.sum()


def build_schedule(config: LoadgenConfig, mix: TemplateMix) -> List[ScheduledRequest]:
    """The full request schedule — a pure function of ``config`` and ``mix``.

    All draws come from one seeded generator consumed sequentially in this
    single-threaded function, so the schedule is bit-reproducible: same
    config and mix, same schedule, always.
    """
    rng = np.random.default_rng(config.seed)
    pairs = mix.pairs()
    weights = zipf_weights(len(pairs), config.zipf_s)
    choices = rng.choice(len(pairs), size=config.num_requests, p=weights)
    if config.mode == "open":
        gaps = rng.exponential(scale=1.0 / config.target_qps, size=config.num_requests)
        arrivals = np.cumsum(gaps)
        clients = [
            f"open{index % max(1, config.open_loop_workers)}"
            for index in range(config.num_requests)
        ]
    else:
        arrivals = np.zeros(config.num_requests, dtype=np.float64)
        clients = [f"client{index % config.num_clients}" for index in range(config.num_requests)]
    schedule: List[ScheduledRequest] = []
    for index in range(config.num_requests):
        template_index, binding_index = pairs[int(choices[index])]
        schedule.append(
            ScheduledRequest(
                index=index,
                arrival_s=float(arrivals[index]),
                client=clients[index],
                template_index=template_index,
                binding_index=binding_index,
            )
        )
    return schedule


class _RunCollector:
    """Thread-safe accumulation of traces and outputs during a run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.traces: List[RequestTrace] = []
        self.outputs: Dict[Tuple[str, int], Relation] = {}

    def record(
        self,
        trace: RequestTrace,
        key: Optional[Tuple[str, int]] = None,
        columns: Optional[Relation] = None,
    ) -> None:
        with self.lock:
            self.traces.append(trace)
            if key is not None and columns is not None:
                self.outputs[key] = columns


def _issue(
    service: _ExecutesStatements,
    mix: TemplateMix,
    request: ScheduledRequest,
    collector: _RunCollector,
) -> None:
    """Issue one scheduled request and record its trace (never raises)."""
    template, binding = mix.lookup(request.template_index, request.binding_index)
    trace = RequestTrace(client=request.client)
    try:
        result = service.execute(template, binding, client=request.client, trace=trace)
    except BackpressureError:
        collector.record(trace)  # outcome/waited stamped by the service
        return
    columns = getattr(getattr(result, "execution", None), "columns", None)
    key = (template.name, request.binding_index)
    collector.record(trace, key=key, columns=columns)


def _run_open_loop(
    service: _ExecutesStatements,
    mix: TemplateMix,
    schedule: Sequence[ScheduledRequest],
    config: LoadgenConfig,
    collector: _RunCollector,
) -> float:
    """Poisson arrivals: workers fire each request at its scheduled time.

    Returns wall seconds.  Worker threads pull requests in schedule order
    and sleep until each arrival; with ``open_loop_workers`` sized above
    the service's admission bound, the admission gate — not this pool —
    is what limits concurrency.
    """
    cursor_lock = threading.Lock()
    cursor = [0]
    started = monotonic_s()

    def worker() -> None:
        while True:
            with cursor_lock:
                position = cursor[0]
                if position >= len(schedule):
                    return
                cursor[0] = position + 1
            request = schedule[position]
            delay = (started + request.arrival_s) - monotonic_s()
            if delay > 0:
                waiter = threading.Event()
                waiter.wait(timeout=delay)
            _issue(service, mix, request, collector)

    threads = [
        threading.Thread(target=worker)
        for _ in range(min(config.open_loop_workers, len(schedule)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return monotonic_s() - started


def _run_closed_loop(
    service: _ExecutesStatements,
    mix: TemplateMix,
    schedule: Sequence[ScheduledRequest],
    config: LoadgenConfig,
    collector: _RunCollector,
) -> float:
    """N synchronous clients, each request → response → think → repeat."""
    by_client: Dict[str, List[ScheduledRequest]] = {}
    for request in schedule:
        by_client.setdefault(request.client, []).append(request)
    started = monotonic_s()

    def client_session(requests: List[ScheduledRequest]) -> None:
        for position, request in enumerate(requests):
            _issue(service, mix, request, collector)
            if config.think_time_s > 0 and position + 1 < len(requests):
                pause = threading.Event()
                pause.wait(timeout=config.think_time_s)

    threads = [
        threading.Thread(target=client_session, args=(requests,))
        for _, requests in sorted(by_client.items())
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return monotonic_s() - started


def run_load(
    service: _ExecutesStatements, mix: TemplateMix, config: LoadgenConfig
) -> LoadResult:
    """Run one configured load against ``service`` and aggregate the traces."""
    schedule = build_schedule(config, mix)
    collector = _RunCollector()
    if config.mode == "open":
        wall_s = _run_open_loop(service, mix, schedule, config, collector)
    else:
        wall_s = _run_closed_loop(service, mix, schedule, config, collector)

    traces = collector.traces
    ok = [trace for trace in traces if trace.outcome == "ok"]
    shed = sum(1 for trace in traces if trace.outcome == "shed")
    timed_out = sum(1 for trace in traces if trace.outcome == "timeout")
    sources: Dict[str, int] = {}
    for trace in ok:
        sources[trace.source] = sources.get(trace.source, 0) + 1
    result = LoadResult(
        config=config,
        wall_s=wall_s,
        schedule_span_s=max((request.arrival_s for request in schedule), default=0.0),
        offered=len(traces),
        completed=len(ok),
        shed=shed,
        timed_out=timed_out,
        achieved_qps=len(ok) / max(wall_s, 1e-9),
        shed_rate=(shed + timed_out) / max(len(traces), 1),
        latency=summarize_latencies([trace.total_s for trace in ok]),
        stages=stage_breakdown(ok),
        sources=dict(sorted(sources.items())),
        traces=traces,
        outputs=collector.outputs,
    )
    return result


def find_saturation_qps(
    make_service: Callable[[], _ExecutesStatements],
    mix: TemplateMix,
    base_config: LoadgenConfig,
    start_qps: float = 8.0,
    max_doublings: int = 8,
    efficiency_floor: float = 0.9,
) -> Tuple[float, List[LoadResult]]:
    """Find the saturation point by doubling offered open-loop qps.

    Offered load starts at ``start_qps`` and doubles until the service
    completes less than ``efficiency_floor`` of what was offered (or sheds
    requests), i.e. until the open-loop arrivals outrun service capacity.
    Returns the last offered rate the service kept up with, plus every
    step's :class:`LoadResult`.  Each step drives a *fresh* service from
    ``make_service`` so result caches warmed at one rate don't flatter the
    next.
    """
    steps: List[LoadResult] = []
    sustained = start_qps
    qps = start_qps
    for _ in range(max_doublings):
        config = LoadgenConfig(
            mode="open",
            num_requests=base_config.num_requests,
            target_qps=qps,
            num_clients=base_config.num_clients,
            think_time_s=base_config.think_time_s,
            zipf_s=base_config.zipf_s,
            seed=base_config.seed,
            open_loop_workers=base_config.open_loop_workers,
        )
        service = make_service()
        try:
            step = run_load(service, mix, config)
        finally:
            close = getattr(service, "close", None)
            if close is not None:
                close()
        steps.append(step)
        # Keeping up means draining on the arrivals' own schedule: when the
        # server falls behind, requests still arrive on time but the run's
        # wall clock stretches past the last arrival (nothing is shed while
        # the admission queue holds, so completed counts can't tell).  The
        # bound is relative to the *realized* schedule span, which for a
        # finite Poisson draw fluctuates around num_requests/target_qps.
        kept_up = (
            step.shed_rate == 0.0
            and step.wall_s <= step.schedule_span_s / efficiency_floor
        )
        if not kept_up:
            break
        sustained = qps
        qps *= 2.0
    return sustained, steps
