"""A small SQL parser for the query class the engine supports.

The grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM table_list [WHERE conjunction]
                  [GROUP BY column_list]
    select_list:= '*' | item (',' item)*
    item       := column | agg '(' (column | '*') ')' [AS name]
    table_list := table [AS? alias] (',' table [AS? alias])*
    conjunction:= condition (AND condition)*
    condition  := column op (value | column)
                | column IN '(' value (',' value)* ')'
                | column BETWEEN value AND value
    column     := [alias '.'] name
    value      := literal | '?' | ':' name
    op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='

A condition comparing two columns of different relations becomes a join
predicate; a condition against a literal becomes a local predicate.  This is
exactly the "selection + equi-join conjunction" shape of Equation (2)/(4) in
the paper, plus the aggregates needed for the TPC-H-style templates.

``?`` and ``:name`` placeholders parse to :class:`repro.sql.ast.Parameter`
markers wherever a literal may stand — the prepared-statement templates the
query service (:mod:`repro.service`) binds per execution.  Positional ``?``
parameters are numbered left to right; every occurrence of one ``:name``
shares a single binding.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    JoinPredicate,
    LocalPredicate,
    Parameter,
    Query,
    TableRef,
)

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        <=|>=|<>|!=|=|<|>         # operators
      | \(|\)|,|\*|\.|\?          # punctuation / positional placeholder
      | :[A-Za-z_][A-Za-z_0-9]*   # named placeholder
      | '(?:[^']*)'               # single-quoted string
      | -?\d+\.\d+                # float literal
      | -?\d+                     # int literal
      | [A-Za-z_][A-Za-z_0-9]*    # identifier / keyword
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "group", "by", "as", "in", "between"}
_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_PATTERN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input near {remainder[:20]!r}")
        token = match.group(1)
        tokens.append(token)
        pos = match.end()
    return tokens


class _TokenStream:
    """Cursor over the token list with small lookahead helpers."""

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._pos += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token.lower() != expected.lower():
            raise ParseError(f"expected {expected!r}, found {token!r}")
        return token

    def accept(self, expected: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == expected.lower():
            self._pos += 1
            return True
        return False

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() in keywords

    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


class _ParameterCounter:
    """Assigns positional indexes to ``?`` placeholders, left to right."""

    def __init__(self) -> None:
        self.next_index = 0

    def positional(self) -> Parameter:
        parameter = Parameter.positional(self.next_index)
        self.next_index += 1
        return parameter


def _parse_literal(token: str, parameters: Optional[_ParameterCounter] = None) -> object:
    if token == "?":
        if parameters is None:
            raise ParseError("positional parameter '?' not allowed here")
        return parameters.positional()
    if token.startswith(":") and len(token) > 1:
        return Parameter.named(token[1:])
    if token.startswith("'") and token.endswith("'"):
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError as exc:
        raise ParseError(f"invalid literal {token!r}") from exc


def _is_identifier(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token)) and token.lower() not in _KEYWORDS


def _parse_column(stream: _TokenStream) -> Tuple[Optional[str], str]:
    """Parse ``[alias.]name`` and return ``(alias_or_None, name)``."""
    first = stream.next()
    if not _is_identifier(first):
        raise ParseError(f"expected column name, found {first!r}")
    if stream.accept("."):
        second = stream.next()
        if not _is_identifier(second):
            raise ParseError(f"expected column name after '.', found {second!r}")
        return first, second
    return None, first


def parse_query(text: str, name: str = "query") -> Query:
    """Parse SQL ``text`` into a :class:`repro.sql.ast.Query`.

    Column references without an explicit alias are resolved after the FROM
    clause is known; they are only accepted when unambiguous (exactly one
    relation — otherwise an alias is required, as in real SQL when the column
    exists in several relations; the parser is conservative and always
    requires the alias for multi-relation queries).
    """
    tokens = _tokenize(text)
    stream = _TokenStream(tokens)
    stream.expect("select")

    # --- SELECT list (parsed first, resolved after FROM) ----------------- #
    select_items: List[Tuple[str, object]] = []
    if stream.accept("*"):
        pass
    else:
        while True:
            token = stream.peek()
            if token is not None and token.lower() in _AGG_FUNCS:
                func = stream.next().lower()
                stream.expect("(")
                if stream.accept("*"):
                    alias, column = None, None
                else:
                    alias, column = _parse_column(stream)
                stream.expect(")")
                output_name = None
                if stream.accept("as"):
                    output_name = stream.next()
                select_items.append(("agg", (func, alias, column, output_name)))
            else:
                alias, column = _parse_column(stream)
                select_items.append(("col", (alias, column)))
            if not stream.accept(","):
                break

    # --- FROM clause ------------------------------------------------------ #
    stream.expect("from")
    tables: List[TableRef] = []
    while True:
        table_name = stream.next()
        if not _is_identifier(table_name):
            raise ParseError(f"expected table name, found {table_name!r}")
        alias = table_name
        if stream.accept("as"):
            alias = stream.next()
        elif stream.peek() is not None and _is_identifier(stream.peek()):
            alias = stream.next()
        tables.append(TableRef(table=table_name, alias=alias))
        if not stream.accept(","):
            break

    aliases = [ref.alias for ref in tables]

    def resolve_alias(alias: Optional[str], column: str) -> str:
        if alias is not None:
            return alias
        if len(aliases) == 1:
            return aliases[0]
        raise ParseError(
            f"column {column!r} must be qualified with an alias in a multi-table query"
        )

    # --- WHERE clause ------------------------------------------------------ #
    local_predicates: List[LocalPredicate] = []
    join_predicates: List[JoinPredicate] = []
    parameter_counter = _ParameterCounter()
    if stream.accept("where"):
        while True:
            left_alias, left_column = _parse_column(stream)
            left_alias = resolve_alias(left_alias, left_column)
            op = stream.next()
            if op == "!=":
                op = "<>"
            if op.lower() == "in":
                stream.expect("(")
                values = []
                while True:
                    values.append(_parse_literal(stream.next(), parameter_counter))
                    if not stream.accept(","):
                        break
                stream.expect(")")
                local_predicates.append(
                    LocalPredicate(
                        alias=left_alias, column=left_column, op="in", value=tuple(values)
                    )
                )
            elif op.lower() == "between":
                low = _parse_literal(stream.next(), parameter_counter)
                stream.expect("and")
                high = _parse_literal(stream.next(), parameter_counter)
                local_predicates.append(
                    LocalPredicate(
                        alias=left_alias, column=left_column, op="between", value=(low, high)
                    )
                )
            elif op not in ("=", "<>", "<", "<=", ">", ">="):
                raise ParseError(f"unsupported operator {op!r} in WHERE clause")
            else:
                right_token = stream.peek()
                if right_token is None:
                    raise ParseError("unexpected end of query in WHERE clause")
                if _is_identifier(right_token):
                    right_alias, right_column = _parse_column(stream)
                    right_alias = resolve_alias(right_alias, right_column)
                    if op != "=":
                        raise ParseError("only equality joins between columns are supported")
                    join_predicates.append(
                        JoinPredicate(
                            left_alias=left_alias,
                            left_column=left_column,
                            right_alias=right_alias,
                            right_column=right_column,
                        )
                    )
                else:
                    value = _parse_literal(stream.next(), parameter_counter)
                    local_predicates.append(
                        LocalPredicate(alias=left_alias, column=left_column, op=op, value=value)
                    )
            if not stream.accept("and"):
                break

    # --- GROUP BY clause ---------------------------------------------------- #
    group_by: List[ColumnRef] = []
    if stream.accept("group"):
        stream.expect("by")
        while True:
            alias, column = _parse_column(stream)
            alias = resolve_alias(alias, column)
            group_by.append(ColumnRef(alias=alias, column=column))
            if not stream.accept(","):
                break

    if not stream.exhausted():
        raise ParseError(f"unexpected trailing token {stream.peek()!r}")

    # --- Resolve SELECT list ------------------------------------------------ #
    projections: List[ColumnRef] = []
    aggregates: List[Aggregate] = []
    for kind, payload in select_items:
        if kind == "col":
            alias, column = payload
            projections.append(ColumnRef(alias=resolve_alias(alias, column), column=column))
        else:
            func, alias, column, output_name = payload
            if column is not None:
                alias = resolve_alias(alias, column)
            if output_name is None:
                output_name = func if column is None else f"{func}_{column}"
            aggregates.append(
                Aggregate(func=func, alias=alias, column=column, output_name=output_name)
            )

    query = Query(
        tables=tables,
        local_predicates=local_predicates,
        join_predicates=join_predicates,
        projections=projections,
        aggregates=aggregates,
        group_by=group_by,
        name=name,
    )
    query.validate()
    return query
