"""SQL front end: query AST, a small parser and a programmatic builder."""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    JoinPredicate,
    LocalPredicate,
    Query,
    TableRef,
)
from repro.sql.builder import QueryBuilder
from repro.sql.parser import parse_query

__all__ = [
    "Aggregate",
    "ColumnRef",
    "JoinPredicate",
    "LocalPredicate",
    "Query",
    "QueryBuilder",
    "TableRef",
    "parse_query",
]
