"""SQL front end: query AST, a small parser and a programmatic builder."""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    Bindings,
    ColumnRef,
    JoinPredicate,
    LocalPredicate,
    Parameter,
    Query,
    TableRef,
)
from repro.sql.builder import QueryBuilder
from repro.sql.fingerprint import (
    binding_key,
    normalize_value,
    plan_fingerprint,
    statistics_fingerprint,
    template_fingerprint,
)
from repro.sql.parser import parse_query

__all__ = [
    "Aggregate",
    "Bindings",
    "ColumnRef",
    "JoinPredicate",
    "LocalPredicate",
    "Parameter",
    "Query",
    "QueryBuilder",
    "TableRef",
    "binding_key",
    "normalize_value",
    "parse_query",
    "plan_fingerprint",
    "statistics_fingerprint",
    "template_fingerprint",
]
