"""Normalized query fingerprints shared by the plan caches.

Three layers of the system key caches on "the same query":

* the workload driver's plan cache (:mod:`repro.reopt.driver`) — two queries
  with identical *semantics* must share one re-optimization result, while two
  queries differing in **any** predicate constant must not share a plan;
* the query service's parameterized plan cache (:mod:`repro.service`) — a
  prepared *template* is identified up to its parameter slots, and each
  execution additionally carries a *binding key*;
* the service's result cache — keyed by template, bindings and the epochs of
  the referenced tables.

All of them go through the fingerprints below, which **normalize** values
before comparing: numerically equal constants fingerprint identically
(``5`` vs ``5.0`` vs ``numpy.int64(5)``), set-valued ``IN`` lists are order
insensitive, and the query *name* is excluded (workload instances named
``q3_i0`` / ``q3_i1`` with the same body are duplicates).  Normalization
never merges semantically different constants: two queries differing only in
a literal get distinct fingerprints — the regression the shared utility
exists to prevent.
"""

from __future__ import annotations

from typing import Mapping, Tuple, Union

from repro.sql.ast import Bindings, Parameter, Query

#: A normalized value: a small tagged tuple with total ordering within a tag.
NormalizedValue = Tuple


def normalize_value(value: object) -> NormalizedValue:
    """Canonical, hashable form of one predicate constant (or parameter).

    Numeric values compare by *value*, not representation: Python ints,
    floats and NumPy scalars that are numerically equal normalize to the same
    key, while any numeric difference — however the constant is spelled —
    yields a different key.  Sequences (``IN`` lists) normalize element-wise
    and order-insensitively; ``BETWEEN`` bounds keep their order (they are
    passed as the predicate's ``(low, high)`` tuple by the caller through the
    ordered variant below).
    """
    if isinstance(value, Parameter):
        # Tag positional vs named so mixed parameter kinds stay sortable
        # (and position 0 can never collide with a parameter named "0").
        if value.name is not None:
            return ("param", "name", value.name)
        return ("param", "index", value.index)
    if isinstance(value, bool):
        return ("bool", value)
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        # NumPy scalar: unwrap to the equivalent Python scalar first.
        try:
            value = value.item()
        except (AttributeError, ValueError):  # pragma: no cover - exotic types
            pass
    if isinstance(value, int):
        return ("num", float(value)) if abs(value) < 2**53 else ("num", value)
    if isinstance(value, float):
        return ("num", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(normalize_value(item) for item in value)))
    if isinstance(value, (list, tuple)):
        return ("set", tuple(sorted(normalize_value(item) for item in value)))
    return ("repr", repr(value))


def _ordered_normalize(value: object) -> NormalizedValue:
    """Like :func:`normalize_value` but keeps sequence order (BETWEEN bounds)."""
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(normalize_value(item) for item in value))
    return normalize_value(value)


def _predicate_value_key(op: str, value: object) -> NormalizedValue:
    # IN lists are sets (order irrelevant); BETWEEN bounds are ordered.
    if op == "between":
        return _ordered_normalize(value)
    return normalize_value(value)


def statistics_fingerprint(query: Query) -> Tuple:
    """Key under which two queries may share validated cardinalities (Γ).

    Covers everything the sampling validator sees: table references, local
    predicates (with normalized constants) and join predicates.  Aggregations
    and projections are excluded — they affect no join-set cardinality.
    """
    tables = tuple(sorted((ref.alias, ref.table) for ref in query.tables))
    locals_ = tuple(
        sorted(
            (p.alias, p.column, p.op, _predicate_value_key(p.op, p.value))
            for p in query.local_predicates
        )
    )
    joins = tuple(
        sorted(
            (p.left_alias, p.left_column, p.right_alias, p.right_column)
            for p in (predicate.normalized() for predicate in query.join_predicates)
        )
    )
    return (tables, locals_, joins)


def plan_fingerprint(query: Query) -> Tuple:
    """Key under which two queries produce identical (re-)optimization results.

    Extends the statistics fingerprint with the output block (projections,
    aggregates, group-by), which shapes the final plan's aggregation node.
    The query *name* is deliberately excluded.
    """
    aggregates = tuple(
        (a.func, a.alias, a.column, a.output_name) for a in query.aggregates
    )
    group_by = tuple((c.alias, c.column) for c in query.group_by)
    projections = tuple((c.alias, c.column) for c in query.projections)
    return statistics_fingerprint(query) + (aggregates, group_by, projections)


def template_fingerprint(query: Query) -> Tuple:
    """Identity of a *prepared-statement template*.

    This is :func:`plan_fingerprint` over the parameterized query: parameter
    slots normalize to their key (position or name) rather than a value, so
    two preparations of the same template — whatever their eventual bindings
    — share one plan-cache line, while templates differing in any baked-in
    constant, placeholder position or structure do not.
    """
    return ("template",) + plan_fingerprint(query)


def binding_key(query: Query, bindings: Bindings) -> Tuple:
    """Canonical key of one set of parameter bindings for ``query``.

    The key pairs each parameter's key with its *normalized* bound value, in
    a canonical order, so numerically equal bindings hit the same result
    cache line whatever their Python type or the order the mapping was built
    in.
    """
    parameters = query.parameters()
    if isinstance(bindings, Mapping):
        resolved: Mapping[Union[int, str], object] = bindings
    else:
        resolved = {index: value for index, value in enumerate(bindings)}
    pairs = []
    for parameter in parameters:
        if parameter.key not in resolved:
            continue  # Query.bind reports missing bindings with a full list.
        # Tag the kind: positional 0 and named "0" are different slots and
        # must never produce the same result-cache key.
        slot = ("n", parameter.name) if parameter.name is not None else ("p", parameter.index)
        pairs.append((slot, normalize_value(resolved[parameter.key])))
    return tuple(sorted(pairs))
