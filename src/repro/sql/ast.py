"""Query abstract syntax tree.

The engine supports the class of queries the paper works with: conjunctive
select-project-join queries over base tables, optionally followed by a
grouped aggregation.  A :class:`Query` holds:

* table references (with aliases, so self-joins work);
* local predicates — comparisons between a column of one table and a
  constant (the ``A_k = c_k`` selections of the OTT queries, the date-range
  and category filters of TPC-H/TPC-DS);
* join predicates — equality between columns of two different tables
  (``B_1 = B_2``-style equi-joins);
* an optional projection / aggregation block.

The join graph (relations as nodes, join predicates as edges) is derived from
the query and consumed by the optimizer's dynamic-programming search.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.errors import ParseError

#: Comparison operators supported by local predicates.  ``"in"`` carries a
#: sequence of candidate values, ``"between"`` a ``(low, high)`` pair of
#: inclusive bounds; both are evaluated by the compiled-predicate module
#: (:mod:`repro.relalg.predicates`).
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=", "in", "between")

#: Aggregate functions supported by the aggregation block.
AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Parameter:
    """A placeholder for a constant bound at execution time.

    Prepared statements (:mod:`repro.service`) carry parameters where plain
    queries carry literals: ``?`` placeholders are *positional* (``index``
    assigned left to right), ``:name`` placeholders are *named* and may
    appear several times, all occurrences sharing one binding.  A parameter
    may stand anywhere a literal stands — a comparison right-hand side, an
    ``IN`` list element or a ``BETWEEN`` bound.
    """

    index: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.index is None) == (self.name is None):
            raise ParseError("a parameter is either positional (index) or named, not both")

    @property
    def key(self) -> Union[int, str]:
        """The binding key: the position for ``?``, the name for ``:name``."""
        return self.name if self.name is not None else self.index  # type: ignore[return-value]

    @classmethod
    def positional(cls, index: int) -> "Parameter":
        """The ``index``-th ``?`` placeholder (0-based)."""
        return cls(index=index)

    @classmethod
    def named(cls, name: str) -> "Parameter":
        """A ``:name`` placeholder."""
        return cls(name=name)

    def __str__(self) -> str:
        return f":{self.name}" if self.name is not None else "?"


#: Parameter bindings: a sequence (positional) or a mapping keyed by the
#: parameter's :attr:`Parameter.key` (position or name).
Bindings = Union[Sequence[object], Mapping[Union[int, str], object]]


def _contains_parameter(value: object) -> bool:
    if isinstance(value, Parameter):
        return True
    if isinstance(value, (list, tuple)):
        return any(_contains_parameter(item) for item in value)
    return False


def _parameters_in(value: object) -> List[Parameter]:
    if isinstance(value, Parameter):
        return [value]
    if isinstance(value, (list, tuple)):
        found: List[Parameter] = []
        for item in value:
            found.extend(_parameters_in(item))
        return found
    return []


def _substitute(value: object, resolved: Mapping[Union[int, str], object]) -> object:
    if isinstance(value, Parameter):
        return resolved[value.key]
    if isinstance(value, tuple):
        return tuple(_substitute(item, resolved) for item in value)
    if isinstance(value, list):
        return [_substitute(item, resolved) for item in value]
    return value


@dataclass(frozen=True)
class TableRef:
    """A reference to a base table under an alias.

    ``alias`` defaults to the table name; distinct aliases allow self-joins
    (e.g. ``lineitem l1, lineitem l2`` in TPC-H Q21).
    """

    table: str
    alias: str

    @classmethod
    def of(cls, table: str, alias: Optional[str] = None) -> "TableRef":
        """Create a reference, defaulting the alias to the table name."""
        return cls(table=table, alias=alias or table)


@dataclass(frozen=True)
class ColumnRef:
    """A column of an aliased relation, e.g. ``l1.l_orderkey``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class LocalPredicate:
    """A comparison between a column and a constant: ``alias.column op value``."""

    alias: str
    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ParseError(f"unsupported comparison operator {self.op!r}")

    def __str__(self) -> str:
        if self.op == "in":
            rendered = ", ".join(repr(v) for v in self.value)  # type: ignore[union-attr]
            return f"{self.alias}.{self.column} IN ({rendered})"
        if self.op == "between":
            low, high = self.value  # type: ignore[misc]
            return f"{self.alias}.{self.column} BETWEEN {low!r} AND {high!r}"
        return f"{self.alias}.{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> FrozenSet[str]:
        """The two relation aliases the predicate connects."""
        return frozenset((self.left_alias, self.right_alias))

    def normalized(self) -> "JoinPredicate":
        """Return an equivalent predicate with sides in lexicographic order."""
        if (self.left_alias, self.left_column) <= (self.right_alias, self.right_column):
            return self
        return JoinPredicate(
            left_alias=self.right_alias,
            left_column=self.right_column,
            right_alias=self.left_alias,
            right_column=self.left_column,
        )

    def column_for(self, alias: str) -> str:
        """Return the join column on the side of ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise ParseError(f"alias {alias!r} not part of join predicate {self}")

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class Aggregate:
    """An aggregate output column, e.g. ``sum(l.l_extendedprice) AS revenue``."""

    func: str
    alias: Optional[str]
    column: Optional[str]
    output_name: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ParseError(f"unsupported aggregate function {self.func!r}")
        if self.func != "count" and (self.alias is None or self.column is None):
            raise ParseError(f"aggregate {self.func!r} requires a column argument")


@dataclass
class Query:
    """A conjunctive select-project-join(-aggregate) query."""

    tables: List[TableRef] = field(default_factory=list)
    local_predicates: List[LocalPredicate] = field(default_factory=list)
    join_predicates: List[JoinPredicate] = field(default_factory=list)
    projections: List[ColumnRef] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    name: str = "query"

    # ------------------------------------------------------------------ #
    # Validation and derived structure
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency (aliases resolve, no duplicate aliases)."""
        aliases = [ref.alias for ref in self.tables]
        if len(aliases) != len(set(aliases)):
            raise ParseError(f"duplicate table aliases in query {self.name!r}")
        known = set(aliases)
        for predicate in self.local_predicates:
            if predicate.alias not in known:
                raise ParseError(f"local predicate references unknown alias {predicate.alias!r}")
        for predicate in self.join_predicates:
            if predicate.left_alias not in known or predicate.right_alias not in known:
                raise ParseError(f"join predicate references unknown alias: {predicate}")
            if predicate.left_alias == predicate.right_alias:
                raise ParseError(f"join predicate must reference two distinct aliases: {predicate}")
        for ref in list(self.projections) + list(self.group_by):
            if ref.alias not in known:
                raise ParseError(f"output column references unknown alias {ref.alias!r}")
        for aggregate in self.aggregates:
            if aggregate.alias is not None and aggregate.alias not in known:
                raise ParseError(f"aggregate references unknown alias {aggregate.alias!r}")

    # ------------------------------------------------------------------ #
    # Parameters (prepared statements)
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All parameter placeholders, deduplicated, in appearance order.

        Positional parameters appear once per ``?``; a named parameter
        appears once however many times ``:name`` occurs.
        """
        seen: Dict[Union[int, str], Parameter] = {}
        for predicate in self.local_predicates:
            for parameter in _parameters_in(predicate.value):
                seen.setdefault(parameter.key, parameter)
        return list(seen.values())

    @property
    def is_parameterized(self) -> bool:
        """True when at least one predicate value is an unbound parameter."""
        return any(_contains_parameter(p.value) for p in self.local_predicates)

    def ensure_bound(self) -> None:
        """Raise :class:`ParseError` if any parameter is still unbound.

        Planning, sampling and execution all require concrete constants;
        callers holding a parameterized template must :meth:`bind` first.
        """
        if self.is_parameterized:
            unbound = ", ".join(str(p) for p in self.parameters())
            raise ParseError(
                f"query {self.name!r} has unbound parameters ({unbound}); "
                "bind them before planning or executing"
            )

    def bind(self, bindings: Bindings, name: Optional[str] = None) -> "Query":
        """Return a copy with every parameter replaced by its binding.

        ``bindings`` is a sequence (positional parameters, by index) or a
        mapping keyed by parameter key (position or name).  Missing or
        surplus bindings raise :class:`ParseError`.
        """
        parameters = self.parameters()
        if isinstance(bindings, Mapping):
            resolved = dict(bindings)
        else:
            resolved = {index: value for index, value in enumerate(bindings)}
        wanted = {parameter.key for parameter in parameters}
        missing = sorted((key for key in wanted if key not in resolved), key=str)
        if missing:
            raise ParseError(
                f"missing bindings for parameters {missing} of query {self.name!r}"
            )
        surplus = sorted((key for key in resolved if key not in wanted), key=str)
        if surplus:
            raise ParseError(
                f"unknown parameter bindings {surplus} for query {self.name!r}"
            )
        bound = Query(
            tables=list(self.tables),
            local_predicates=[
                replace(p, value=_substitute(p.value, resolved))
                if _contains_parameter(p.value)
                else p
                for p in self.local_predicates
            ],
            join_predicates=list(self.join_predicates),
            projections=list(self.projections),
            aggregates=list(self.aggregates),
            group_by=list(self.group_by),
            name=name if name is not None else self.name,
        )
        bound.validate()
        return bound

    @property
    def aliases(self) -> List[str]:
        """All relation aliases, in FROM-clause order."""
        return [ref.alias for ref in self.tables]

    def table_for_alias(self, alias: str) -> str:
        """Return the base-table name behind ``alias``."""
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise ParseError(f"unknown alias {alias!r} in query {self.name!r}")

    def local_predicates_for(self, alias: str) -> List[LocalPredicate]:
        """All local predicates attached to one relation alias."""
        return [p for p in self.local_predicates if p.alias == alias]

    def join_predicates_between(
        self, left: FrozenSet[str] | set, right: FrozenSet[str] | set
    ) -> List[JoinPredicate]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        result = []
        for predicate in self.join_predicates:
            if predicate.left_alias in left and predicate.right_alias in right:
                result.append(predicate)
            elif predicate.left_alias in right and predicate.right_alias in left:
                result.append(predicate)
        return result

    def join_graph(self) -> nx.Graph:
        """Build the join graph: aliases as nodes, join predicates as edges.

        Multiple predicates between the same pair of relations are collected
        on one edge under the ``predicates`` attribute.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.aliases)
        for predicate in self.join_predicates:
            left, right = predicate.left_alias, predicate.right_alias
            if graph.has_edge(left, right):
                graph[left][right]["predicates"].append(predicate)
            else:
                graph.add_edge(left, right, predicates=[predicate])
        return graph

    def is_join_graph_connected(self) -> bool:
        """True if every relation is reachable through join predicates."""
        graph = self.join_graph()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(graph)

    @property
    def num_joins(self) -> int:
        """Number of join predicates (edges counted with multiplicity)."""
        return len(self.join_predicates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Query({self.name!r}, tables={len(self.tables)}, "
            f"joins={len(self.join_predicates)}, filters={len(self.local_predicates)})"
        )
