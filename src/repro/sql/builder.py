"""Fluent programmatic query construction.

The workload generators build queries with :class:`QueryBuilder` rather than
going through SQL text — it is faster, type-checked and keeps the templates
readable:

>>> from repro.sql.builder import QueryBuilder
>>> query = (
...     QueryBuilder("q3")
...     .table("customer", "c")
...     .table("orders", "o")
...     .table("lineitem", "l")
...     .filter("c", "c_mktsegment", "=", "BUILDING")
...     .join("c", "c_custkey", "o", "o_custkey")
...     .join("o", "o_orderkey", "l", "l_orderkey")
...     .aggregate("sum", "l", "l_extendedprice", "revenue")
...     .build()
... )
>>> query.num_joins
2
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    JoinPredicate,
    LocalPredicate,
    Parameter,
    Query,
    TableRef,
)


class QueryBuilder:
    """Incrementally assemble a :class:`repro.sql.ast.Query`."""

    def __init__(self, name: str = "query") -> None:
        self._name = name
        self._tables: List[TableRef] = []
        self._local: List[LocalPredicate] = []
        self._joins: List[JoinPredicate] = []
        self._projections: List[ColumnRef] = []
        self._aggregates: List[Aggregate] = []
        self._group_by: List[ColumnRef] = []
        self._positional_parameters = 0

    def table(self, table: str, alias: Optional[str] = None) -> "QueryBuilder":
        """Add a relation to the FROM clause."""
        self._tables.append(TableRef.of(table, alias))
        return self

    def filter(self, alias: str, column: str, op: str, value: object) -> "QueryBuilder":
        """Add a local predicate ``alias.column op value``."""
        self._local.append(LocalPredicate(alias=alias, column=column, op=op, value=value))
        return self

    def between(self, alias: str, column: str, low: object, high: object) -> "QueryBuilder":
        """Add an inclusive range filter as two local predicates."""
        self.filter(alias, column, ">=", low)
        self.filter(alias, column, "<=", high)
        return self

    def param(self, name: Optional[str] = None) -> Parameter:
        """A parameter placeholder to pass as a filter value.

        With ``name`` the parameter is named (all same-name occurrences share
        one binding); without, a fresh positional parameter is allocated in
        call order, matching the ``?`` numbering of the SQL parser.
        """
        if name is not None:
            return Parameter.named(name)
        parameter = Parameter.positional(self._positional_parameters)
        self._positional_parameters += 1
        return parameter

    def filter_param(
        self, alias: str, column: str, op: str, name: Optional[str] = None
    ) -> "QueryBuilder":
        """Add a parameterized local predicate ``alias.column op <parameter>``."""
        return self.filter(alias, column, op, self.param(name))

    def join(
        self, left_alias: str, left_column: str, right_alias: str, right_column: str
    ) -> "QueryBuilder":
        """Add an equi-join predicate between two relations."""
        self._joins.append(
            JoinPredicate(
                left_alias=left_alias,
                left_column=left_column,
                right_alias=right_alias,
                right_column=right_column,
            )
        )
        return self

    def select(self, alias: str, column: str) -> "QueryBuilder":
        """Add a plain projection column."""
        self._projections.append(ColumnRef(alias=alias, column=column))
        return self

    def aggregate(
        self,
        func: str,
        alias: Optional[str] = None,
        column: Optional[str] = None,
        output_name: Optional[str] = None,
    ) -> "QueryBuilder":
        """Add an aggregate output column (``count`` may omit the column)."""
        if output_name is None:
            if column is None:
                output_name = func
            else:
                output_name = f"{func}_{column}"
        self._aggregates.append(
            Aggregate(func=func, alias=alias, column=column, output_name=output_name)
        )
        return self

    def group_by(self, alias: str, column: str) -> "QueryBuilder":
        """Add a grouping column (also projected in the output)."""
        self._group_by.append(ColumnRef(alias=alias, column=column))
        return self

    def build(self) -> Query:
        """Finalize and validate the query."""
        query = Query(
            tables=list(self._tables),
            local_predicates=list(self._local),
            join_predicates=list(self._joins),
            projections=list(self._projections),
            aggregates=list(self._aggregates),
            group_by=list(self._group_by),
            name=self._name,
        )
        query.validate()
        return query
