"""A TPC-H-like database generator (uniform and skewed).

The generator reproduces the *shape* of the TPC-H schema — the eight tables,
their key relationships and the attribute kinds the query templates filter on
— at laptop scale.  Two knobs mirror the paper's Section 5.1.1:

* ``scale_factor`` — fraction of the official 1 GB row counts (0.01 keeps
  60 000 ``lineitem`` rows down to 600);
* ``zipf_z`` — skew of the value and foreign-key distributions.  ``z = 0``
  is the uniform database of Figure 4; ``z = 1`` is the skewed database of
  Figure 7, following the Microsoft skewed-TPC-H generator the paper uses.

Dates are stored as integer "days since 1992-01-01" over a seven-year range,
which keeps range predicates simple while preserving their selectivity
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.storage.catalog import Database
from repro.storage.table import Column, Table, TableSchema

#: Official row counts at scale factor 1 (1 GB).
BASE_ROW_COUNTS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Number of days in the generated date range (1992-01-01 .. 1998-12-31).
DATE_RANGE_DAYS = 2556

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
ORDER_STATUSES = ["F", "O", "P"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
SHIP_INSTRUCTS = ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPES = [
    f"{grade} {finish} {metal}"
    for grade in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for finish in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for metal in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]


@dataclass(frozen=True)
class TpchConfig:
    """Shape of one generated TPC-H-like database."""

    scale_factor: float = 0.01
    zipf_z: float = 0.0
    seed: int = 0
    tuples_per_page: int = 100

    def rows(self, table: str) -> int:
        """Scaled row count for ``table`` (with sensible minimums)."""
        base = BASE_ROW_COUNTS[table]
        if table in ("region", "nation"):
            return base
        return max(20, int(base * self.scale_factor))


def _zipf_probabilities(n: int, z: float) -> np.ndarray:
    """Zipf(z) probabilities over ``n`` items (uniform when z == 0)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-z) if z > 0 else np.ones(n, dtype=np.float64)
    return weights / weights.sum()


def _skewed_integers(rng: np.random.Generator, n_values: int, size: int, z: float) -> np.ndarray:
    """Draw ``size`` integers in ``[0, n_values)`` with Zipf(z) skew."""
    if z <= 0:
        return rng.integers(0, n_values, size=size, dtype=np.int64)
    probabilities = _zipf_probabilities(n_values, z)
    return rng.choice(n_values, size=size, p=probabilities).astype(np.int64)


def _skewed_choice(
    rng: np.random.Generator, values: Sequence[object], size: int, z: float
) -> np.ndarray:
    """Choose from ``values`` with Zipf(z) skew over their order."""
    indexes = _skewed_integers(rng, len(values), size, z)
    return np.array(values, dtype=object)[indexes]


def generate_tpch_database(
    scale_factor: float = 0.01,
    zipf_z: float = 0.0,
    seed: int = 0,
    analyze: bool = True,
    create_indexes: bool = True,
    create_samples: bool = True,
    sampling_ratio: float = 0.05,
    tuples_per_page: int = 100,
) -> Database:
    """Generate the TPC-H-like database.

    The foreign keys are uniform references when ``zipf_z == 0`` and
    Zipf-skewed otherwise, so that a handful of customers/parts/suppliers
    dominate the fact tables in the skewed configuration — the situation in
    which MCV-based estimates matter most.
    """
    config = TpchConfig(
        scale_factor=scale_factor, zipf_z=zipf_z, seed=seed, tuples_per_page=tuples_per_page
    )
    rng = np.random.default_rng(seed)
    z = zipf_z
    db = Database(name=f"tpch_sf{scale_factor}_z{zipf_z}")

    # ------------------------------------------------------------------ #
    # region, nation
    # ------------------------------------------------------------------ #
    region_rows = config.rows("region")
    db.create_table(Table(
        TableSchema("region", (Column("r_regionkey", "int"), Column("r_name", "str"))),
        {
            "r_regionkey": np.arange(region_rows, dtype=np.int64),
            "r_name": np.array(REGION_NAMES[:region_rows], dtype=object),
        },
        tuples_per_page=tuples_per_page,
    ))

    nation_rows = config.rows("nation")
    db.create_table(Table(
        TableSchema(
            "nation",
            (Column("n_nationkey", "int"), Column("n_regionkey", "int"), Column("n_name", "str")),
        ),
        {
            "n_nationkey": np.arange(nation_rows, dtype=np.int64),
            "n_regionkey": rng.integers(0, region_rows, size=nation_rows, dtype=np.int64),
            "n_name": np.array(NATION_NAMES[:nation_rows], dtype=object),
        },
        tuples_per_page=tuples_per_page,
    ))

    # ------------------------------------------------------------------ #
    # supplier, customer, part
    # ------------------------------------------------------------------ #
    supplier_rows = config.rows("supplier")
    db.create_table(Table(
        TableSchema(
            "supplier",
            (
                Column("s_suppkey", "int"),
                Column("s_nationkey", "int"),
                Column("s_acctbal", "float"),
            ),
        ),
        {
            "s_suppkey": np.arange(supplier_rows, dtype=np.int64),
            "s_nationkey": _skewed_integers(rng, nation_rows, supplier_rows, z),
            "s_acctbal": rng.uniform(-999.99, 9999.99, size=supplier_rows),
        },
        tuples_per_page=tuples_per_page,
    ))

    customer_rows = config.rows("customer")
    db.create_table(Table(
        TableSchema(
            "customer",
            (
                Column("c_custkey", "int"),
                Column("c_nationkey", "int"),
                Column("c_mktsegment", "str"),
                Column("c_acctbal", "float"),
            ),
        ),
        {
            "c_custkey": np.arange(customer_rows, dtype=np.int64),
            "c_nationkey": _skewed_integers(rng, nation_rows, customer_rows, z),
            "c_mktsegment": _skewed_choice(rng, MARKET_SEGMENTS, customer_rows, z),
            "c_acctbal": rng.uniform(-999.99, 9999.99, size=customer_rows),
        },
        tuples_per_page=tuples_per_page,
    ))

    part_rows = config.rows("part")
    db.create_table(Table(
        TableSchema(
            "part",
            (
                Column("p_partkey", "int"),
                Column("p_brand", "str"),
                Column("p_type", "str"),
                Column("p_size", "int"),
                Column("p_container", "str"),
                Column("p_retailprice", "float"),
            ),
        ),
        {
            "p_partkey": np.arange(part_rows, dtype=np.int64),
            "p_brand": _skewed_choice(rng, BRANDS, part_rows, z),
            "p_type": _skewed_choice(rng, TYPES, part_rows, z),
            "p_size": _skewed_integers(rng, 50, part_rows, z) + 1,
            "p_container": _skewed_choice(rng, CONTAINERS, part_rows, z),
            "p_retailprice": rng.uniform(900.0, 2000.0, size=part_rows),
        },
        tuples_per_page=tuples_per_page,
    ))

    # ------------------------------------------------------------------ #
    # partsupp
    # ------------------------------------------------------------------ #
    partsupp_rows = config.rows("partsupp")
    db.create_table(Table(
        TableSchema(
            "partsupp",
            (
                Column("ps_partkey", "int"),
                Column("ps_suppkey", "int"),
                Column("ps_supplycost", "float"),
                Column("ps_availqty", "int"),
            ),
        ),
        {
            "ps_partkey": _skewed_integers(rng, part_rows, partsupp_rows, z),
            "ps_suppkey": _skewed_integers(rng, supplier_rows, partsupp_rows, z),
            "ps_supplycost": rng.uniform(1.0, 1000.0, size=partsupp_rows),
            "ps_availqty": rng.integers(1, 10_000, size=partsupp_rows, dtype=np.int64),
        },
        tuples_per_page=tuples_per_page,
    ))

    # ------------------------------------------------------------------ #
    # orders, lineitem
    # ------------------------------------------------------------------ #
    orders_rows = config.rows("orders")
    order_dates = _skewed_integers(rng, DATE_RANGE_DAYS, orders_rows, z)
    db.create_table(Table(
        TableSchema(
            "orders",
            (
                Column("o_orderkey", "int"),
                Column("o_custkey", "int"),
                Column("o_orderdate", "int"),
                Column("o_orderpriority", "str"),
                Column("o_orderstatus", "str"),
                Column("o_totalprice", "float"),
            ),
        ),
        {
            "o_orderkey": np.arange(orders_rows, dtype=np.int64),
            "o_custkey": _skewed_integers(rng, customer_rows, orders_rows, z),
            "o_orderdate": order_dates,
            "o_orderpriority": _skewed_choice(rng, ORDER_PRIORITIES, orders_rows, z),
            "o_orderstatus": _skewed_choice(rng, ORDER_STATUSES, orders_rows, z),
            "o_totalprice": rng.uniform(1000.0, 500_000.0, size=orders_rows),
        },
        tuples_per_page=tuples_per_page,
    ))

    lineitem_rows = config.rows("lineitem")
    line_orderkeys = _skewed_integers(rng, orders_rows, lineitem_rows, z)
    ship_delay = rng.integers(1, 122, size=lineitem_rows, dtype=np.int64)
    ship_dates = np.minimum(order_dates[line_orderkeys] + ship_delay, DATE_RANGE_DAYS + 121)
    commit_dates = ship_dates + rng.integers(-30, 31, size=lineitem_rows, dtype=np.int64)
    receipt_dates = ship_dates + rng.integers(1, 31, size=lineitem_rows, dtype=np.int64)
    db.create_table(Table(
        TableSchema(
            "lineitem",
            (
                Column("l_orderkey", "int"),
                Column("l_partkey", "int"),
                Column("l_suppkey", "int"),
                Column("l_quantity", "int"),
                Column("l_extendedprice", "float"),
                Column("l_discount", "float"),
                Column("l_tax", "float"),
                Column("l_returnflag", "str"),
                Column("l_linestatus", "str"),
                Column("l_shipdate", "int"),
                Column("l_commitdate", "int"),
                Column("l_receiptdate", "int"),
                Column("l_shipmode", "str"),
                Column("l_shipinstruct", "str"),
            ),
        ),
        {
            "l_orderkey": line_orderkeys,
            "l_partkey": _skewed_integers(rng, part_rows, lineitem_rows, z),
            "l_suppkey": _skewed_integers(rng, supplier_rows, lineitem_rows, z),
            "l_quantity": rng.integers(1, 51, size=lineitem_rows, dtype=np.int64),
            "l_extendedprice": rng.uniform(900.0, 100_000.0, size=lineitem_rows),
            "l_discount": rng.uniform(0.0, 0.1, size=lineitem_rows).round(2),
            "l_tax": rng.uniform(0.0, 0.08, size=lineitem_rows).round(2),
            "l_returnflag": _skewed_choice(rng, RETURN_FLAGS, lineitem_rows, z),
            "l_linestatus": _skewed_choice(rng, LINE_STATUSES, lineitem_rows, z),
            "l_shipdate": ship_dates,
            "l_commitdate": commit_dates,
            "l_receiptdate": receipt_dates,
            "l_shipmode": _skewed_choice(rng, SHIP_MODES, lineitem_rows, z),
            "l_shipinstruct": _skewed_choice(rng, SHIP_INSTRUCTS, lineitem_rows, z),
        },
        tuples_per_page=tuples_per_page,
    ))

    if create_indexes:
        for table, column in (
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("part", "p_partkey"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
        ):
            db.create_index(table, column)
    if analyze:
        db.analyze()
    if create_samples:
        db.create_samples(ratio=sampling_ratio, seed=seed + 1000)
    return db
