"""Workloads used in the paper's evaluation: TPC-H-like, TPC-DS-like and OTT."""

from __future__ import annotations

from repro.workloads.ott import (
    generate_ott_database,
    make_ott_query,
    make_ott_workload,
)

__all__ = [
    "generate_ott_database",
    "make_ott_query",
    "make_ott_workload",
]
