"""TPC-H-style query templates (21 queries; Q15 excluded as in the paper).

Each template is a function ``(db, rng) -> Query`` that instantiates random
constants the way the official qgen does (different query instances differ in
their constants — the error bars of Figures 4/7 come from that variation).
The templates keep the join structure and the predicate columns of the
official queries; sub-query constructs the engine does not support
(EXISTS/NOT EXISTS, views, scalar sub-queries) are approximated by the
equivalent join skeleton, which is the part of the query the optimizer's join
ordering — and therefore re-optimization — actually interacts with.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.sql.ast import Query
from repro.sql.builder import QueryBuilder
from repro.storage.catalog import Database
from repro.workloads.tpch import (
    BRANDS,
    CONTAINERS,
    DATE_RANGE_DAYS,
    MARKET_SEGMENTS,
    NATION_NAMES,
    ORDER_PRIORITIES,
    REGION_NAMES,
    SHIP_MODES,
    TYPES,
)

#: Template registry: query name -> builder function.
QueryTemplate = Callable[[Database, np.random.Generator], Query]
TPCH_QUERY_TEMPLATES: Dict[str, QueryTemplate] = {}

#: TPC-H query numbers the paper evaluates (Q15 excluded).
TPCH_QUERY_NUMBERS = [n for n in range(1, 23) if n != 15]


def _register(name: str) -> Callable[[QueryTemplate], QueryTemplate]:
    def decorator(func: QueryTemplate) -> QueryTemplate:
        TPCH_QUERY_TEMPLATES[name] = func
        return func

    return decorator


def _random_date(rng: np.random.Generator, low_fraction: float = 0.1, high_fraction: float = 0.9) -> int:
    low = int(DATE_RANGE_DAYS * low_fraction)
    high = int(DATE_RANGE_DAYS * high_fraction)
    return int(rng.integers(low, high + 1))


def _choice(rng: np.random.Generator, values: Sequence[object]) -> object:
    return values[int(rng.integers(0, len(values)))]


# --------------------------------------------------------------------------- #
# Query templates
# --------------------------------------------------------------------------- #
@_register("q1")
def q1(db: Database, rng: np.random.Generator) -> Query:
    """Pricing summary report: single-table scan with aggregation."""
    cutoff = DATE_RANGE_DAYS - int(rng.integers(60, 121))
    return (
        QueryBuilder("q1")
        .table("lineitem", "l")
        .filter("l", "l_shipdate", "<=", cutoff)
        .group_by("l", "l_returnflag")
        .group_by("l", "l_linestatus")
        .aggregate("sum", "l", "l_quantity", "sum_qty")
        .aggregate("sum", "l", "l_extendedprice", "sum_base_price")
        .aggregate("avg", "l", "l_discount", "avg_disc")
        .aggregate("count", output_name="count_order")
        .build()
    )


@_register("q2")
def q2(db: Database, rng: np.random.Generator) -> Query:
    """Minimum cost supplier: part/partsupp/supplier/nation/region join."""
    return (
        QueryBuilder("q2")
        .table("part", "p")
        .table("partsupp", "ps")
        .table("supplier", "s")
        .table("nation", "n")
        .table("region", "r")
        .filter("p", "p_size", "=", int(rng.integers(1, 51)))
        .filter("r", "r_name", "=", _choice(rng, REGION_NAMES))
        .join("p", "p_partkey", "ps", "ps_partkey")
        .join("ps", "ps_suppkey", "s", "s_suppkey")
        .join("s", "s_nationkey", "n", "n_nationkey")
        .join("n", "n_regionkey", "r", "r_regionkey")
        .aggregate("min", "ps", "ps_supplycost", "min_supplycost")
        .aggregate("count", output_name="num_candidates")
        .build()
    )


@_register("q3")
def q3(db: Database, rng: np.random.Generator) -> Query:
    """Shipping priority: customer/orders/lineitem."""
    date = _random_date(rng, 0.3, 0.5)
    return (
        QueryBuilder("q3")
        .table("customer", "c")
        .table("orders", "o")
        .table("lineitem", "l")
        .filter("c", "c_mktsegment", "=", _choice(rng, MARKET_SEGMENTS))
        .filter("o", "o_orderdate", "<", date)
        .filter("l", "l_shipdate", ">", date)
        .join("c", "c_custkey", "o", "o_custkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("o", "o_orderdate")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .build()
    )


@_register("q4")
def q4(db: Database, rng: np.random.Generator) -> Query:
    """Order priority checking: orders with late lineitems."""
    start = _random_date(rng, 0.2, 0.7)
    return (
        QueryBuilder("q4")
        .table("orders", "o")
        .table("lineitem", "l")
        .between("o", "o_orderdate", start, start + 90)
        .filter("l", "l_returnflag", "=", "R")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("o", "o_orderpriority")
        .aggregate("count", output_name="order_count")
        .build()
    )


@_register("q5")
def q5(db: Database, rng: np.random.Generator) -> Query:
    """Local supplier volume: 6-way join with a region filter."""
    start = _random_date(rng, 0.1, 0.7)
    return (
        QueryBuilder("q5")
        .table("customer", "c")
        .table("orders", "o")
        .table("lineitem", "l")
        .table("supplier", "s")
        .table("nation", "n")
        .table("region", "r")
        .filter("r", "r_name", "=", _choice(rng, REGION_NAMES))
        .between("o", "o_orderdate", start, start + 365)
        .join("c", "c_custkey", "o", "o_custkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .join("l", "l_suppkey", "s", "s_suppkey")
        .join("c", "c_nationkey", "s", "s_nationkey")
        .join("s", "s_nationkey", "n", "n_nationkey")
        .join("n", "n_regionkey", "r", "r_regionkey")
        .group_by("n", "n_name")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .build()
    )


@_register("q6")
def q6(db: Database, rng: np.random.Generator) -> Query:
    """Forecasting revenue change: single-table range filters."""
    start = _random_date(rng, 0.1, 0.7)
    quantity = int(rng.integers(24, 26))
    return (
        QueryBuilder("q6")
        .table("lineitem", "l")
        .between("l", "l_shipdate", start, start + 365)
        .filter("l", "l_quantity", "<", quantity)
        .filter("l", "l_discount", ">=", 0.02)
        .filter("l", "l_discount", "<=", 0.09)
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .build()
    )


@_register("q7")
def q7(db: Database, rng: np.random.Generator) -> Query:
    """Volume shipping: two nations, supplier/lineitem/orders/customer."""
    nation_1 = _choice(rng, NATION_NAMES)
    nation_2 = _choice(rng, NATION_NAMES)
    return (
        QueryBuilder("q7")
        .table("supplier", "s")
        .table("lineitem", "l")
        .table("orders", "o")
        .table("customer", "c")
        .table("nation", "n1")
        .table("nation", "n2")
        .filter("n1", "n_name", "=", nation_1)
        .filter("n2", "n_name", "=", nation_2)
        .join("s", "s_suppkey", "l", "l_suppkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .join("c", "c_custkey", "o", "o_custkey")
        .join("s", "s_nationkey", "n1", "n_nationkey")
        .join("c", "c_nationkey", "n2", "n_nationkey")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .aggregate("count", output_name="num_lineitems")
        .build()
    )


@_register("q8")
def q8(db: Database, rng: np.random.Generator) -> Query:
    """National market share: the 8-relation join of the paper's Figure 14."""
    return (
        QueryBuilder("q8")
        .table("part", "p")
        .table("supplier", "s")
        .table("lineitem", "l")
        .table("orders", "o")
        .table("customer", "c")
        .table("nation", "n1")
        .table("nation", "n2")
        .table("region", "r")
        .filter("p", "p_type", "=", _choice(rng, TYPES))
        .filter("r", "r_name", "=", _choice(rng, REGION_NAMES))
        .between("o", "o_orderdate", int(DATE_RANGE_DAYS * 0.4), int(DATE_RANGE_DAYS * 0.7))
        .join("p", "p_partkey", "l", "l_partkey")
        .join("s", "s_suppkey", "l", "l_suppkey")
        .join("l", "l_orderkey", "o", "o_orderkey")
        .join("o", "o_custkey", "c", "c_custkey")
        .join("c", "c_nationkey", "n1", "n_nationkey")
        .join("n1", "n_regionkey", "r", "r_regionkey")
        .join("s", "s_nationkey", "n2", "n_nationkey")
        .aggregate("sum", "l", "l_extendedprice", "volume")
        .build()
    )


@_register("q9")
def q9(db: Database, rng: np.random.Generator) -> Query:
    """Product type profit measure: 6-relation join (paper's Figure 14)."""
    brand = _choice(rng, BRANDS)
    return (
        QueryBuilder("q9")
        .table("part", "p")
        .table("supplier", "s")
        .table("lineitem", "l")
        .table("partsupp", "ps")
        .table("orders", "o")
        .table("nation", "n")
        .filter("p", "p_brand", "=", brand)
        .join("s", "s_suppkey", "l", "l_suppkey")
        .join("ps", "ps_suppkey", "l", "l_suppkey")
        .join("ps", "ps_partkey", "l", "l_partkey")
        .join("p", "p_partkey", "l", "l_partkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .join("s", "s_nationkey", "n", "n_nationkey")
        .group_by("n", "n_name")
        .aggregate("sum", "l", "l_extendedprice", "sum_profit")
        .build()
    )


@_register("q10")
def q10(db: Database, rng: np.random.Generator) -> Query:
    """Returned item reporting: customer/orders/lineitem/nation."""
    start = _random_date(rng, 0.2, 0.8)
    return (
        QueryBuilder("q10")
        .table("customer", "c")
        .table("orders", "o")
        .table("lineitem", "l")
        .table("nation", "n")
        .between("o", "o_orderdate", start, start + 90)
        .filter("l", "l_returnflag", "=", "R")
        .join("c", "c_custkey", "o", "o_custkey")
        .join("l", "l_orderkey", "o", "o_orderkey")
        .join("c", "c_nationkey", "n", "n_nationkey")
        .group_by("n", "n_name")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .build()
    )


@_register("q11")
def q11(db: Database, rng: np.random.Generator) -> Query:
    """Important stock identification: partsupp/supplier/nation."""
    return (
        QueryBuilder("q11")
        .table("partsupp", "ps")
        .table("supplier", "s")
        .table("nation", "n")
        .filter("n", "n_name", "=", _choice(rng, NATION_NAMES))
        .join("ps", "ps_suppkey", "s", "s_suppkey")
        .join("s", "s_nationkey", "n", "n_nationkey")
        .group_by("ps", "ps_partkey")
        .aggregate("sum", "ps", "ps_supplycost", "value")
        .build()
    )


@_register("q12")
def q12(db: Database, rng: np.random.Generator) -> Query:
    """Shipping modes and order priority: orders/lineitem."""
    start = _random_date(rng, 0.1, 0.7)
    return (
        QueryBuilder("q12")
        .table("orders", "o")
        .table("lineitem", "l")
        .filter("l", "l_shipmode", "=", _choice(rng, SHIP_MODES))
        .between("l", "l_receiptdate", start, start + 365)
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("o", "o_orderpriority")
        .aggregate("count", output_name="line_count")
        .build()
    )


@_register("q13")
def q13(db: Database, rng: np.random.Generator) -> Query:
    """Customer distribution: customer left join orders (approximated as inner)."""
    return (
        QueryBuilder("q13")
        .table("customer", "c")
        .table("orders", "o")
        .filter("o", "o_orderpriority", "=", _choice(rng, ORDER_PRIORITIES))
        .join("c", "c_custkey", "o", "o_custkey")
        .group_by("c", "c_nationkey")
        .aggregate("count", output_name="order_count")
        .build()
    )


@_register("q14")
def q14(db: Database, rng: np.random.Generator) -> Query:
    """Promotion effect: lineitem/part over one month."""
    start = _random_date(rng, 0.1, 0.9)
    return (
        QueryBuilder("q14")
        .table("lineitem", "l")
        .table("part", "p")
        .between("l", "l_shipdate", start, start + 30)
        .join("l", "l_partkey", "p", "p_partkey")
        .aggregate("sum", "l", "l_extendedprice", "promo_revenue")
        .aggregate("count", output_name="num_items")
        .build()
    )


@_register("q16")
def q16(db: Database, rng: np.random.Generator) -> Query:
    """Parts/supplier relationship: partsupp/part with part filters."""
    return (
        QueryBuilder("q16")
        .table("partsupp", "ps")
        .table("part", "p")
        .filter("p", "p_brand", "=", _choice(rng, BRANDS))
        .filter("p", "p_size", "<=", int(rng.integers(10, 51)))
        .join("p", "p_partkey", "ps", "ps_partkey")
        .group_by("p", "p_brand")
        .aggregate("count", output_name="supplier_cnt")
        .build()
    )


@_register("q17")
def q17(db: Database, rng: np.random.Generator) -> Query:
    """Small-quantity-order revenue: lineitem/part, brand + container filters.

    The query the paper singles out in Figure 7's footnote for its large
    variance on the skewed database (the brand/container constants select
    very different numbers of parts when the data is skewed).
    """
    return (
        QueryBuilder("q17")
        .table("lineitem", "l")
        .table("part", "p")
        .filter("p", "p_brand", "=", _choice(rng, BRANDS))
        .filter("p", "p_container", "=", _choice(rng, CONTAINERS))
        .filter("l", "l_quantity", "<", int(rng.integers(2, 11)))
        .join("p", "p_partkey", "l", "l_partkey")
        .aggregate("avg", "l", "l_quantity", "avg_quantity")
        .aggregate("sum", "l", "l_extendedprice", "total_price")
        .build()
    )


@_register("q18")
def q18(db: Database, rng: np.random.Generator) -> Query:
    """Large volume customer: customer/orders/lineitem."""
    return (
        QueryBuilder("q18")
        .table("customer", "c")
        .table("orders", "o")
        .table("lineitem", "l")
        .filter("l", "l_quantity", ">", int(rng.integers(44, 50)))
        .join("c", "c_custkey", "o", "o_custkey")
        .join("o", "o_orderkey", "l", "l_orderkey")
        .group_by("c", "c_custkey")
        .aggregate("sum", "l", "l_quantity", "total_quantity")
        .build()
    )


@_register("q19")
def q19(db: Database, rng: np.random.Generator) -> Query:
    """Discounted revenue: lineitem/part (one branch of the official disjunction)."""
    return (
        QueryBuilder("q19")
        .table("lineitem", "l")
        .table("part", "p")
        .filter("p", "p_brand", "=", _choice(rng, BRANDS))
        .filter("p", "p_size", "<=", 15)
        .between("l", "l_quantity", 1, 30)
        .filter("l", "l_shipinstruct", "=", "DELIVER IN PERSON")
        .join("p", "p_partkey", "l", "l_partkey")
        .aggregate("sum", "l", "l_extendedprice", "revenue")
        .build()
    )


@_register("q20")
def q20(db: Database, rng: np.random.Generator) -> Query:
    """Potential part promotion: supplier/nation/partsupp/part (semi-joins flattened)."""
    return (
        QueryBuilder("q20")
        .table("supplier", "s")
        .table("nation", "n")
        .table("partsupp", "ps")
        .table("part", "p")
        .filter("n", "n_name", "=", _choice(rng, NATION_NAMES))
        .filter("p", "p_size", "=", int(rng.integers(1, 51)))
        .join("s", "s_nationkey", "n", "n_nationkey")
        .join("ps", "ps_suppkey", "s", "s_suppkey")
        .join("ps", "ps_partkey", "p", "p_partkey")
        .aggregate("count", output_name="num_suppliers")
        .build()
    )


@_register("q21")
def q21(db: Database, rng: np.random.Generator) -> Query:
    """Suppliers who kept orders waiting: supplier/lineitem/orders/nation.

    The official query's EXISTS/NOT EXISTS self-joins on lineitem are
    approximated by the main join skeleton plus the "late delivery" filter
    (receipt after commit date), which is the part that drives the join
    ordering problem the paper's Figure 14 illustrates.
    """
    return (
        QueryBuilder("q21")
        .table("supplier", "s")
        .table("lineitem", "l1")
        .table("orders", "o")
        .table("nation", "n")
        .filter("n", "n_name", "=", _choice(rng, NATION_NAMES))
        .filter("o", "o_orderstatus", "=", "F")
        .filter("l1", "l_returnflag", "=", "N")
        .join("s", "s_suppkey", "l1", "l_suppkey")
        .join("o", "o_orderkey", "l1", "l_orderkey")
        .join("s", "s_nationkey", "n", "n_nationkey")
        .group_by("s", "s_suppkey")
        .aggregate("count", output_name="numwait")
        .build()
    )


@_register("q22")
def q22(db: Database, rng: np.random.Generator) -> Query:
    """Global sales opportunity: customer/orders (anti-join approximated)."""
    return (
        QueryBuilder("q22")
        .table("customer", "c")
        .table("orders", "o")
        .filter("c", "c_acctbal", ">", 0.0)
        .join("c", "c_custkey", "o", "o_custkey")
        .group_by("c", "c_nationkey")
        .aggregate("count", output_name="numcust")
        .aggregate("sum", "c", "c_acctbal", "totacctbal")
        .build()
    )


# --------------------------------------------------------------------------- #
# Public helpers
# --------------------------------------------------------------------------- #
def make_tpch_query(db: Database, number: int, seed: int = 0) -> Query:
    """Instantiate TPC-H query ``number`` with constants drawn from ``seed``."""
    name = f"q{number}"
    if name not in TPCH_QUERY_TEMPLATES:
        raise KeyError(f"unknown or unsupported TPC-H query {name!r}")
    rng = np.random.default_rng(seed)
    query = TPCH_QUERY_TEMPLATES[name](db, rng)
    return query


def make_tpch_workload(
    db: Database,
    numbers: List[int] | None = None,
    instances_per_query: int = 1,
    seed: int = 0,
) -> Dict[str, List[Query]]:
    """Instantiate the full TPC-H workload.

    Returns a mapping ``"q3" -> [instance1, instance2, ...]`` with
    ``instances_per_query`` random instances per template (the paper uses 10).
    """
    numbers = numbers if numbers is not None else TPCH_QUERY_NUMBERS
    workload: Dict[str, List[Query]] = {}
    for number in numbers:
        name = f"q{number}"
        instances = []
        for instance in range(instances_per_query):
            query = make_tpch_query(db, number, seed=seed * 1000 + number * 17 + instance)
            query.name = f"{name}_i{instance}"
            instances.append(query)
        workload[name] = instances
    return workload
