"""A TPC-DS-like database generator and query set (Appendix A.2 of the paper).

The paper evaluates 29 TPC-DS queries (those supported by its PostgreSQL
prototype) on a 10 GB database and finds little improvement: most queries are
short-running star joins whose cardinality estimates are on track, so
re-optimization rarely changes the plan.  It also constructs a tweaked
variant of Q50 (``Q50'``) whose dimension filters are altered until the plan
does change, cutting the running time roughly in half.

The reproduction keeps that experiment's structure:

* a snowflake schema with two fact tables (``store_sales``, ``store_returns``)
  and the dimension tables the 29 queries touch;
* one query template per paper query number, each a star/snowflake join with
  the dimension filters the official query uses (sub-query constructs are
  flattened to their join skeletons, as for TPC-H);
* the tweaked ``q50_prime`` variant with widened date and store filters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.sql.ast import Query
from repro.sql.builder import QueryBuilder
from repro.storage.catalog import Database
from repro.storage.table import Column, Table, TableSchema

#: TPC-DS query numbers evaluated by the paper (Figure 19), Q50' added on top.
TPCDS_QUERY_NUMBERS = [
    3, 7, 15, 17, 19, 25, 26, 28, 29, 42, 43, 45, 48, 50, 52, 55, 61, 62,
    65, 69, 72, 73, 84, 85, 90, 91, 93, 96, 99,
]

#: Base row counts loosely following TPC-DS at scale factor 1, scaled down.
BASE_ROW_COUNTS = {
    "date_dim": 1000,
    "item": 2000,
    "customer": 3000,
    "customer_address": 1500,
    "customer_demographics": 1000,
    "household_demographics": 720,
    "store": 40,
    "warehouse": 10,
    "promotion": 100,
    "ship_mode": 20,
    "store_sales": 60_000,
    "store_returns": 6_000,
    "catalog_sales": 30_000,
    "web_sales": 15_000,
}

STATES = ["TX", "CA", "NY", "WA", "IL", "GA", "OH", "MI", "PA", "FL"]
CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports", "Women"]
EDUCATION = ["Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree"]
MARITAL = ["S", "M", "D", "W", "U"]
GENDER = ["M", "F"]


def generate_tpcds_database(
    scale: float = 0.2,
    seed: int = 0,
    analyze: bool = True,
    create_indexes: bool = True,
    create_samples: bool = True,
    sampling_ratio: float = 0.5,
    tuples_per_page: int = 100,
) -> Database:
    """Generate the TPC-DS-like snowflake database at the given scale."""
    rng = np.random.default_rng(seed)
    db = Database(name=f"tpcds_scale{scale}")

    def rows(table: str) -> int:
        base = BASE_ROW_COUNTS[table]
        if table in ("store", "warehouse", "ship_mode", "promotion"):
            return base
        return max(50, int(base * scale))

    # --------------------------- dimensions --------------------------- #
    n_dates = rows("date_dim")
    db.create_table(Table(
        TableSchema("date_dim", (
            Column("d_date_sk", "int"), Column("d_year", "int"),
            Column("d_moy", "int"), Column("d_dom", "int"), Column("d_qoy", "int"),
        )),
        {
            "d_date_sk": np.arange(n_dates, dtype=np.int64),
            "d_year": 1998 + (np.arange(n_dates) // 366),
            "d_moy": (np.arange(n_dates) // 30) % 12 + 1,
            "d_dom": np.arange(n_dates) % 28 + 1,
            "d_qoy": ((np.arange(n_dates) // 30) % 12) // 3 + 1,
        },
        tuples_per_page=tuples_per_page,
    ))

    n_items = rows("item")
    db.create_table(Table(
        TableSchema("item", (
            Column("i_item_sk", "int"), Column("i_category", "str"),
            Column("i_brand_id", "int"), Column("i_manager_id", "int"),
            Column("i_current_price", "float"),
        )),
        {
            "i_item_sk": np.arange(n_items, dtype=np.int64),
            "i_category": rng.choice(CATEGORIES, size=n_items).astype(object),
            "i_brand_id": rng.integers(1, 100, size=n_items, dtype=np.int64),
            "i_manager_id": rng.integers(1, 100, size=n_items, dtype=np.int64),
            "i_current_price": rng.uniform(1.0, 300.0, size=n_items),
        },
        tuples_per_page=tuples_per_page,
    ))

    n_customers = rows("customer")
    n_addresses = rows("customer_address")
    n_cdemo = rows("customer_demographics")
    n_hdemo = rows("household_demographics")
    db.create_table(Table(
        TableSchema("customer", (
            Column("c_customer_sk", "int"), Column("c_current_addr_sk", "int"),
            Column("c_current_cdemo_sk", "int"), Column("c_current_hdemo_sk", "int"),
            Column("c_birth_year", "int"),
        )),
        {
            "c_customer_sk": np.arange(n_customers, dtype=np.int64),
            "c_current_addr_sk": rng.integers(0, n_addresses, size=n_customers, dtype=np.int64),
            "c_current_cdemo_sk": rng.integers(0, n_cdemo, size=n_customers, dtype=np.int64),
            "c_current_hdemo_sk": rng.integers(0, n_hdemo, size=n_customers, dtype=np.int64),
            "c_birth_year": rng.integers(1930, 2000, size=n_customers, dtype=np.int64),
        },
        tuples_per_page=tuples_per_page,
    ))
    db.create_table(Table(
        TableSchema("customer_address", (
            Column("ca_address_sk", "int"), Column("ca_state", "str"),
            Column("ca_gmt_offset", "int"),
        )),
        {
            "ca_address_sk": np.arange(n_addresses, dtype=np.int64),
            "ca_state": rng.choice(STATES, size=n_addresses).astype(object),
            "ca_gmt_offset": rng.choice([-5, -6, -7, -8], size=n_addresses).astype(np.int64),
        },
        tuples_per_page=tuples_per_page,
    ))
    db.create_table(Table(
        TableSchema("customer_demographics", (
            Column("cd_demo_sk", "int"), Column("cd_gender", "str"),
            Column("cd_marital_status", "str"), Column("cd_education_status", "str"),
        )),
        {
            "cd_demo_sk": np.arange(n_cdemo, dtype=np.int64),
            "cd_gender": rng.choice(GENDER, size=n_cdemo).astype(object),
            "cd_marital_status": rng.choice(MARITAL, size=n_cdemo).astype(object),
            "cd_education_status": rng.choice(EDUCATION, size=n_cdemo).astype(object),
        },
        tuples_per_page=tuples_per_page,
    ))
    db.create_table(Table(
        TableSchema("household_demographics", (
            Column("hd_demo_sk", "int"), Column("hd_dep_count", "int"),
            Column("hd_vehicle_count", "int"),
        )),
        {
            "hd_demo_sk": np.arange(n_hdemo, dtype=np.int64),
            "hd_dep_count": rng.integers(0, 10, size=n_hdemo, dtype=np.int64),
            "hd_vehicle_count": rng.integers(0, 5, size=n_hdemo, dtype=np.int64),
        },
        tuples_per_page=tuples_per_page,
    ))

    n_stores = rows("store")
    db.create_table(Table(
        TableSchema("store", (
            Column("s_store_sk", "int"), Column("s_state", "str"),
            Column("s_number_employees", "int"),
        )),
        {
            "s_store_sk": np.arange(n_stores, dtype=np.int64),
            "s_state": rng.choice(STATES, size=n_stores).astype(object),
            "s_number_employees": rng.integers(200, 300, size=n_stores, dtype=np.int64),
        },
        tuples_per_page=tuples_per_page,
    ))
    n_promos = rows("promotion")
    db.create_table(Table(
        TableSchema("promotion", (
            Column("p_promo_sk", "int"), Column("p_channel_email", "str"),
        )),
        {
            "p_promo_sk": np.arange(n_promos, dtype=np.int64),
            "p_channel_email": rng.choice(["Y", "N"], size=n_promos).astype(object),
        },
        tuples_per_page=tuples_per_page,
    ))
    n_ship_modes = rows("ship_mode")
    db.create_table(Table(
        TableSchema("ship_mode", (
            Column("sm_ship_mode_sk", "int"), Column("sm_type", "str"),
        )),
        {
            "sm_ship_mode_sk": np.arange(n_ship_modes, dtype=np.int64),
            "sm_type": rng.choice(
                ["EXPRESS", "OVERNIGHT", "REGULAR", "TWO DAY", "LIBRARY"], size=n_ship_modes
            ).astype(object),
        },
        tuples_per_page=tuples_per_page,
    ))
    n_warehouses = rows("warehouse")
    db.create_table(Table(
        TableSchema("warehouse", (
            Column("w_warehouse_sk", "int"), Column("w_state", "str"),
        )),
        {
            "w_warehouse_sk": np.arange(n_warehouses, dtype=np.int64),
            "w_state": rng.choice(STATES, size=n_warehouses).astype(object),
        },
        tuples_per_page=tuples_per_page,
    ))

    # ----------------------------- facts ------------------------------ #
    def fact_columns(n: int) -> Dict[str, np.ndarray]:
        return {
            "sold_date_sk": rng.integers(0, n_dates, size=n, dtype=np.int64),
            "item_sk": rng.integers(0, n_items, size=n, dtype=np.int64),
            "customer_sk": rng.integers(0, n_customers, size=n, dtype=np.int64),
            "store_sk": rng.integers(0, n_stores, size=n, dtype=np.int64),
            "promo_sk": rng.integers(0, n_promos, size=n, dtype=np.int64),
            "cdemo_sk": rng.integers(0, n_cdemo, size=n, dtype=np.int64),
            "hdemo_sk": rng.integers(0, n_hdemo, size=n, dtype=np.int64),
            "quantity": rng.integers(1, 100, size=n, dtype=np.int64),
            "sales_price": rng.uniform(1.0, 300.0, size=n),
            "net_profit": rng.uniform(-100.0, 300.0, size=n),
        }

    n_ss = rows("store_sales")
    ss = fact_columns(n_ss)
    db.create_table(Table(
        TableSchema("store_sales", (
            Column("ss_sold_date_sk", "int"), Column("ss_item_sk", "int"),
            Column("ss_customer_sk", "int"), Column("ss_store_sk", "int"),
            Column("ss_promo_sk", "int"), Column("ss_cdemo_sk", "int"),
            Column("ss_hdemo_sk", "int"), Column("ss_ticket_number", "int"),
            Column("ss_quantity", "int"), Column("ss_sales_price", "float"),
            Column("ss_net_profit", "float"),
        )),
        {
            "ss_sold_date_sk": ss["sold_date_sk"], "ss_item_sk": ss["item_sk"],
            "ss_customer_sk": ss["customer_sk"], "ss_store_sk": ss["store_sk"],
            "ss_promo_sk": ss["promo_sk"], "ss_cdemo_sk": ss["cdemo_sk"],
            "ss_hdemo_sk": ss["hdemo_sk"],
            "ss_ticket_number": np.arange(n_ss, dtype=np.int64),
            "ss_quantity": ss["quantity"], "ss_sales_price": ss["sales_price"],
            "ss_net_profit": ss["net_profit"],
        },
        tuples_per_page=tuples_per_page,
    ))

    n_sr = rows("store_returns")
    # Returns reference a subset of the sales tickets (FK into store_sales).
    returned_tickets = rng.integers(0, n_ss, size=n_sr, dtype=np.int64)
    db.create_table(Table(
        TableSchema("store_returns", (
            Column("sr_returned_date_sk", "int"), Column("sr_item_sk", "int"),
            Column("sr_customer_sk", "int"), Column("sr_ticket_number", "int"),
            Column("sr_return_amt", "float"),
        )),
        {
            "sr_returned_date_sk": rng.integers(0, n_dates, size=n_sr, dtype=np.int64),
            "sr_item_sk": ss["item_sk"][returned_tickets],
            "sr_customer_sk": ss["customer_sk"][returned_tickets],
            "sr_ticket_number": returned_tickets,
            "sr_return_amt": rng.uniform(1.0, 300.0, size=n_sr),
        },
        tuples_per_page=tuples_per_page,
    ))

    n_cs = rows("catalog_sales")
    cs = fact_columns(n_cs)
    db.create_table(Table(
        TableSchema("catalog_sales", (
            Column("cs_sold_date_sk", "int"), Column("cs_item_sk", "int"),
            Column("cs_bill_customer_sk", "int"), Column("cs_warehouse_sk", "int"),
            Column("cs_ship_mode_sk", "int"), Column("cs_quantity", "int"),
            Column("cs_sales_price", "float"),
        )),
        {
            "cs_sold_date_sk": cs["sold_date_sk"], "cs_item_sk": cs["item_sk"],
            "cs_bill_customer_sk": cs["customer_sk"],
            "cs_warehouse_sk": rng.integers(0, n_warehouses, size=n_cs, dtype=np.int64),
            "cs_ship_mode_sk": rng.integers(0, n_ship_modes, size=n_cs, dtype=np.int64),
            "cs_quantity": cs["quantity"], "cs_sales_price": cs["sales_price"],
        },
        tuples_per_page=tuples_per_page,
    ))

    n_ws = rows("web_sales")
    ws = fact_columns(n_ws)
    db.create_table(Table(
        TableSchema("web_sales", (
            Column("ws_sold_date_sk", "int"), Column("ws_item_sk", "int"),
            Column("ws_bill_customer_sk", "int"), Column("ws_quantity", "int"),
            Column("ws_sales_price", "float"),
        )),
        {
            "ws_sold_date_sk": ws["sold_date_sk"], "ws_item_sk": ws["item_sk"],
            "ws_bill_customer_sk": ws["customer_sk"],
            "ws_quantity": ws["quantity"], "ws_sales_price": ws["sales_price"],
        },
        tuples_per_page=tuples_per_page,
    ))

    if create_indexes:
        for table, column in (
            ("date_dim", "d_date_sk"), ("item", "i_item_sk"), ("customer", "c_customer_sk"),
            ("customer_address", "ca_address_sk"), ("customer_demographics", "cd_demo_sk"),
            ("household_demographics", "hd_demo_sk"), ("store", "s_store_sk"),
            ("promotion", "p_promo_sk"), ("warehouse", "w_warehouse_sk"),
            ("ship_mode", "sm_ship_mode_sk"),
            ("store_sales", "ss_sold_date_sk"), ("store_sales", "ss_item_sk"),
            ("store_sales", "ss_customer_sk"), ("store_sales", "ss_ticket_number"),
            ("store_returns", "sr_ticket_number"), ("store_returns", "sr_item_sk"),
            ("catalog_sales", "cs_sold_date_sk"), ("catalog_sales", "cs_item_sk"),
            ("web_sales", "ws_sold_date_sk"), ("web_sales", "ws_item_sk"),
        ):
            db.create_index(table, column)
    if analyze:
        db.analyze()
    if create_samples:
        db.create_samples(ratio=sampling_ratio, seed=seed + 1000)
    return db


# --------------------------------------------------------------------------- #
# Query templates
# --------------------------------------------------------------------------- #
def _star(
    name: str,
    *,
    dims: Mapping[str, Tuple[str, str, str]],
    filters: Sequence[Tuple[str, str, str, object]],
    aggregates: Sequence[Tuple[str, str, str, str]],
    group_by: Sequence[Tuple[str, str]] = (),
) -> Callable[["Database", np.random.Generator], Query]:
    """Build a star-join template over ``store_sales`` declaratively.

    ``dims`` maps a dimension alias to ``(table, fact_column, dim_column)``;
    ``filters`` is a list of ``(alias, column, op, value)``.
    """

    def template(db: Database, rng: np.random.Generator) -> Query:
        builder = QueryBuilder(name)
        builder.table("store_sales", "ss")
        for alias, (table, fact_column, dim_column) in dims.items():
            builder.table(table, alias)
            builder.join("ss", fact_column, alias, dim_column)
        for alias, column, op, value in filters:
            resolved = value(rng) if callable(value) else value
            builder.filter(alias, column, op, resolved)
        for func, alias, column, output in aggregates:
            builder.aggregate(func, alias, column, output)
        for alias, column in group_by:
            builder.group_by(alias, column)
        return builder.build()

    return template


TPCDS_QUERY_TEMPLATES: Dict[str, Callable] = {}


def _register_ds(name: str, template: Callable) -> None:
    TPCDS_QUERY_TEMPLATES[name] = template


def _year(rng: np.random.Generator) -> int:
    return int(rng.integers(1998, 2001))


def _month(rng: np.random.Generator) -> int:
    return int(rng.integers(1, 13))


def _category(rng: np.random.Generator) -> str:
    return str(rng.choice(CATEGORIES))


def _state(rng: np.random.Generator) -> str:
    return str(rng.choice(STATES))


_DATE_DIM = {"d": ("date_dim", "ss_sold_date_sk", "d_date_sk")}
_ITEM_DIM = {"i": ("item", "ss_item_sk", "i_item_sk")}
_STORE_DIM = {"s": ("store", "ss_store_sk", "s_store_sk")}
_CUSTOMER_DIM = {"c": ("customer", "ss_customer_sk", "c_customer_sk")}
_CDEMO_DIM = {"cd": ("customer_demographics", "ss_cdemo_sk", "cd_demo_sk")}
_HDEMO_DIM = {"hd": ("household_demographics", "ss_hdemo_sk", "hd_demo_sk")}
_PROMO_DIM = {"p": ("promotion", "ss_promo_sk", "p_promo_sk")}

_SUM_PRICE = [("sum", "ss", "ss_sales_price", "total_sales"), ("count", None, None, "cnt")]

# Reporting-style star joins (date + item, various filters).
for number, extra_dims, filters, group in (
    (3, {**_DATE_DIM, **_ITEM_DIM}, [("d", "d_moy", "=", _month), ("i", "i_manager_id", "=", lambda r: int(r.integers(1, 100)))], (("d", "d_year"),)),
    (42, {**_DATE_DIM, **_ITEM_DIM}, [("d", "d_moy", "=", _month), ("i", "i_category", "=", _category)], (("i", "i_category"),)),
    (52, {**_DATE_DIM, **_ITEM_DIM}, [("d", "d_moy", "=", _month), ("d", "d_year", "=", _year)], (("i", "i_brand_id"),)),
    (55, {**_DATE_DIM, **_ITEM_DIM}, [("d", "d_moy", "=", _month), ("d", "d_year", "=", _year), ("i", "i_manager_id", "=", lambda r: int(r.integers(1, 100)))], (("i", "i_brand_id"),)),
    (43, {**_DATE_DIM, **_STORE_DIM}, [("d", "d_year", "=", _year), ("s", "s_state", "=", _state)], (("s", "s_state"),)),
    (62, {**_DATE_DIM, **_STORE_DIM}, [("d", "d_moy", "=", _month)], (("s", "s_state"),)),
    (73, {**_DATE_DIM, **_STORE_DIM, **_HDEMO_DIM}, [("d", "d_year", "=", _year), ("hd", "hd_dep_count", "=", lambda r: int(r.integers(0, 10)))], ()),
    (90, {**_DATE_DIM, **_HDEMO_DIM}, [("hd", "hd_dep_count", "=", lambda r: int(r.integers(0, 10)))], ()),
    (96, {**_DATE_DIM, **_STORE_DIM, **_HDEMO_DIM}, [("hd", "hd_dep_count", "=", lambda r: int(r.integers(0, 10))), ("s", "s_state", "=", _state)], ()),
    (19, {**_DATE_DIM, **_ITEM_DIM, **_CUSTOMER_DIM}, [("d", "d_moy", "=", _month), ("d", "d_year", "=", _year), ("i", "i_manager_id", "=", lambda r: int(r.integers(1, 100)))], (("i", "i_brand_id"),)),
    (7, {**_DATE_DIM, **_ITEM_DIM, **_CDEMO_DIM, **_PROMO_DIM}, [("cd", "cd_gender", "=", lambda r: str(r.choice(GENDER))), ("cd", "cd_marital_status", "=", lambda r: str(r.choice(MARITAL))), ("d", "d_year", "=", _year)], (("i", "i_item_sk"),)),
    (26, {**_DATE_DIM, **_ITEM_DIM, **_CDEMO_DIM, **_PROMO_DIM}, [("cd", "cd_education_status", "=", lambda r: str(r.choice(EDUCATION))), ("d", "d_year", "=", _year)], (("i", "i_item_sk"),)),
    (61, {**_DATE_DIM, **_ITEM_DIM, **_STORE_DIM, **_PROMO_DIM}, [("d", "d_year", "=", _year), ("i", "i_category", "=", _category), ("p", "p_channel_email", "=", "Y")], ()),
    (65, {**_DATE_DIM, **_ITEM_DIM, **_STORE_DIM}, [("d", "d_qoy", "=", lambda r: int(r.integers(1, 5)))], (("s", "s_store_sk"),)),
    (72, {**_DATE_DIM, **_ITEM_DIM, **_HDEMO_DIM, **_CDEMO_DIM}, [("d", "d_year", "=", _year), ("hd", "hd_vehicle_count", "=", lambda r: int(r.integers(0, 5)))], ()),
    (28, {}, [("ss", "ss_quantity", "<=", lambda r: int(r.integers(5, 25)))], ()),
    (48, {**_DATE_DIM, **_STORE_DIM, **_CDEMO_DIM}, [("cd", "cd_marital_status", "=", lambda r: str(r.choice(MARITAL))), ("d", "d_year", "=", _year)], ()),
    (91, {**_DATE_DIM, **_CUSTOMER_DIM, **_HDEMO_DIM}, [("d", "d_moy", "=", _month), ("d", "d_year", "=", _year)], ()),
    (45, {**_DATE_DIM, **_ITEM_DIM, **_CUSTOMER_DIM}, [("d", "d_qoy", "=", lambda r: int(r.integers(1, 5))), ("d", "d_year", "=", _year)], ()),
    (50, {**_DATE_DIM, **_STORE_DIM}, [("d", "d_year", "=", _year), ("d", "d_moy", "=", _month)], (("s", "s_state"),)),
):
    _register_ds(f"q{number}", _star(f"q{number}", dims=extra_dims, filters=filters, aggregates=_SUM_PRICE, group_by=group))


def _q50_prime(db: Database, rng: np.random.Generator) -> Query:
    """The paper's tweaked Q50 variant: store_sales ⋈ store_returns + dimensions.

    Joining the two fact tables on the ticket number is what dominates the
    running time; the tweaked dimension filters change the estimates enough
    for re-optimization to restructure the access paths (Appendix A.2).
    """
    return (
        QueryBuilder("q50_prime")
        .table("store_sales", "ss")
        .table("store_returns", "sr")
        .table("date_dim", "d1")
        .table("date_dim", "d2")
        .table("store", "s")
        .join("ss", "ss_ticket_number", "sr", "sr_ticket_number")
        .join("ss", "ss_item_sk", "sr", "sr_item_sk")
        .join("ss", "ss_sold_date_sk", "d1", "d_date_sk")
        .join("sr", "sr_returned_date_sk", "d2", "d_date_sk")
        .join("ss", "ss_store_sk", "s", "s_store_sk")
        .filter("d2", "d_year", "=", _year(rng))
        .filter("d2", "d_moy", "=", _month(rng))
        .filter("s", "s_state", "=", _state(rng))
        .group_by("s", "s_state")
        .aggregate("count", output_name="num_returns")
        .build()
    )


def _q17(db: Database, rng: np.random.Generator) -> Query:
    """Q17-style: sales joined with returns and catalog sales across quarters."""
    return (
        QueryBuilder("q17")
        .table("store_sales", "ss")
        .table("store_returns", "sr")
        .table("catalog_sales", "cs")
        .table("date_dim", "d1")
        .table("item", "i")
        .join("ss", "ss_ticket_number", "sr", "sr_ticket_number")
        .join("ss", "ss_item_sk", "sr", "sr_item_sk")
        .join("sr", "sr_customer_sk", "cs", "cs_bill_customer_sk")
        .join("sr", "sr_item_sk", "cs", "cs_item_sk")
        .join("ss", "ss_sold_date_sk", "d1", "d_date_sk")
        .join("ss", "ss_item_sk", "i", "i_item_sk")
        .filter("d1", "d_qoy", "=", int(rng.integers(1, 5)))
        .group_by("i", "i_category")
        .aggregate("count", output_name="cnt")
        .aggregate("avg", "ss", "ss_quantity", "avg_quantity")
        .build()
    )


def _q25(db: Database, rng: np.random.Generator) -> Query:
    """Q25/Q29-style: sales/returns/catalog joined through customer and item."""
    return (
        QueryBuilder("q25")
        .table("store_sales", "ss")
        .table("store_returns", "sr")
        .table("catalog_sales", "cs")
        .table("item", "i")
        .table("store", "s")
        .join("ss", "ss_ticket_number", "sr", "sr_ticket_number")
        .join("ss", "ss_item_sk", "sr", "sr_item_sk")
        .join("sr", "sr_customer_sk", "cs", "cs_bill_customer_sk")
        .join("ss", "ss_item_sk", "i", "i_item_sk")
        .join("ss", "ss_store_sk", "s", "s_store_sk")
        .filter("s", "s_state", "=", _state(rng))
        .group_by("i", "i_category")
        .aggregate("sum", "ss", "ss_net_profit", "profit")
        .build()
    )


def _q15(db: Database, rng: np.random.Generator) -> Query:
    """Q15-style: catalog sales by customer address and quarter."""
    return (
        QueryBuilder("q15")
        .table("catalog_sales", "cs")
        .table("customer", "c")
        .table("customer_address", "ca")
        .table("date_dim", "d")
        .join("cs", "cs_bill_customer_sk", "c", "c_customer_sk")
        .join("c", "c_current_addr_sk", "ca", "ca_address_sk")
        .join("cs", "cs_sold_date_sk", "d", "d_date_sk")
        .filter("d", "d_qoy", "=", int(rng.integers(1, 5)))
        .filter("d", "d_year", "=", _year(rng))
        .group_by("ca", "ca_state")
        .aggregate("sum", "cs", "cs_sales_price", "total")
        .build()
    )


def _q69(db: Database, rng: np.random.Generator) -> Query:
    """Q69/Q84/Q85-style: demographics-heavy customer profiling join."""
    return (
        QueryBuilder("q69")
        .table("customer", "c")
        .table("customer_address", "ca")
        .table("customer_demographics", "cd")
        .table("store_sales", "ss")
        .table("date_dim", "d")
        .join("c", "c_current_addr_sk", "ca", "ca_address_sk")
        .join("c", "c_current_cdemo_sk", "cd", "cd_demo_sk")
        .join("ss", "ss_customer_sk", "c", "c_customer_sk")
        .join("ss", "ss_sold_date_sk", "d", "d_date_sk")
        .filter("ca", "ca_state", "=", _state(rng))
        .filter("d", "d_year", "=", _year(rng))
        .group_by("cd", "cd_education_status")
        .aggregate("count", output_name="cnt")
        .build()
    )


def _q99(db: Database, rng: np.random.Generator) -> Query:
    """Q99-style: catalog sales by warehouse and ship mode."""
    return (
        QueryBuilder("q99")
        .table("catalog_sales", "cs")
        .table("warehouse", "w")
        .table("ship_mode", "sm")
        .table("date_dim", "d")
        .join("cs", "cs_warehouse_sk", "w", "w_warehouse_sk")
        .join("cs", "cs_ship_mode_sk", "sm", "sm_ship_mode_sk")
        .join("cs", "cs_sold_date_sk", "d", "d_date_sk")
        .filter("d", "d_moy", "=", _month(rng))
        .group_by("sm", "sm_type")
        .aggregate("count", output_name="cnt")
        .build()
    )


def _q93(db: Database, rng: np.random.Generator) -> Query:
    """Q93-style: sales net of returns per customer."""
    return (
        QueryBuilder("q93")
        .table("store_sales", "ss")
        .table("store_returns", "sr")
        .join("ss", "ss_ticket_number", "sr", "sr_ticket_number")
        .join("ss", "ss_item_sk", "sr", "sr_item_sk")
        .group_by("ss", "ss_customer_sk")
        .aggregate("sum", "ss", "ss_sales_price", "total")
        .build()
    )


# Map the remaining paper query numbers onto the closest structural template.
_register_ds("q17", _q17)
_register_ds("q25", _q25)
_register_ds("q29", _q25)
_register_ds("q15", _q15)
_register_ds("q45", TPCDS_QUERY_TEMPLATES.get("q45", _q15))
_register_ds("q69", _q69)
_register_ds("q84", _q69)
_register_ds("q85", _q69)
_register_ds("q99", _q99)
_register_ds("q93", _q93)
_register_ds("q50_prime", _q50_prime)


def make_tpcds_query(db: Database, name: str, seed: int = 0) -> Query:
    """Instantiate TPC-DS query ``name`` (e.g. ``"q3"`` or ``"q50_prime"``)."""
    if name not in TPCDS_QUERY_TEMPLATES:
        raise KeyError(f"unknown or unsupported TPC-DS query {name!r}")
    rng = np.random.default_rng(seed)
    query = TPCDS_QUERY_TEMPLATES[name](db, rng)
    query.name = name
    return query


def make_tpcds_workload(db: Database, seed: int = 0, include_q50_prime: bool = True) -> List[Query]:
    """Instantiate the paper's 29-query TPC-DS workload (plus Q50')."""
    queries: List[Query] = []
    for number in TPCDS_QUERY_NUMBERS:
        name = f"q{number}"
        queries.append(make_tpcds_query(db, name, seed=seed * 100 + number))
    if include_q50_prime:
        queries.append(make_tpcds_query(db, "q50_prime", seed=seed * 100 + 50))
    return queries
