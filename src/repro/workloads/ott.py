"""The Optimizer Torture Test (OTT) — Section 4 of the paper.

The OTT database consists of ``K`` relations ``R_k(A_k, B_k)`` where

* ``A_k`` is drawn uniformly from ``{0, ..., D-1}`` (``D`` distinct values,
  roughly ``rows_per_value`` rows per value), and
* ``B_k = A_k`` — perfect correlation between the selection column and the
  join column (Algorithm 2).

The OTT queries (Equation 2) select ``A_k = c_k`` on every relation and join
the relations in a chain on ``B_1 = B_2, B_2 = B_3, ...``.  Because
``B_k = A_k``, the query is non-empty only when all constants are equal
(Equation 3) — yet an AVI-based optimizer estimates the same tiny cardinality
regardless, which is exactly the trap the paper sets.

The paper instantiates the columns inside the six largest TPC-H tables; the
reproduction uses stand-alone relations, which preserves the estimation
problem (the extra TPC-H columns play no role in the OTT queries) while
keeping the generator independent from the TPC-H generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sql.ast import Query
from repro.sql.builder import QueryBuilder
from repro.storage.catalog import Database
from repro.storage.table import Column, Table, TableSchema

#: Rows per distinct value used by the paper (each value appears ~100 times).
PAPER_ROWS_PER_VALUE = 100


@dataclass(frozen=True)
class OttConfig:
    """Shape of one OTT database."""

    num_tables: int
    rows_per_table: int
    rows_per_value: int = PAPER_ROWS_PER_VALUE
    seed: int = 0

    @property
    def domain_size(self) -> int:
        """Number of distinct values per column (``|R| / rows_per_value``, at least 1)."""
        return max(1, self.rows_per_table // self.rows_per_value)


def ott_table_name(index: int) -> str:
    """Name of the ``index``-th OTT relation (1-based): ``r1``, ``r2``, ..."""
    return f"r{index}"


def generate_ott_table(
    name: str, rows: int, domain_size: int, rng: np.random.Generator, tuples_per_page: int = 100
) -> Table:
    """Generate one OTT relation with ``B = A`` (Algorithm 2, lines 2-4)."""
    a_column = rng.integers(0, domain_size, size=rows, dtype=np.int64)
    schema = TableSchema(name, (Column("a", "int"), Column("b", "int")))
    return Table(schema, {"a": a_column, "b": a_column.copy()}, tuples_per_page=tuples_per_page)


def generate_ott_database(
    num_tables: int = 5,
    rows_per_table: int = 5000,
    rows_per_value: int = PAPER_ROWS_PER_VALUE,
    seed: int = 0,
    create_indexes: bool = True,
    analyze: bool = True,
    sampling_ratio: float = 0.05,
    create_samples: bool = True,
    tuples_per_page: int = 100,
) -> Database:
    """Build an OTT database ready for (re-)optimization experiments.

    Each relation gets its own independently seeded generator (Algorithm 2,
    line 2).  Indexes on the ``a`` and ``b`` columns mirror the indexes the
    paper creates on the added columns; ANALYZE and sampling are run by
    default so the returned database is immediately usable.
    """
    config = OttConfig(
        num_tables=num_tables,
        rows_per_table=rows_per_table,
        rows_per_value=rows_per_value,
        seed=seed,
    )
    db = Database(name=f"ott_{num_tables}x{rows_per_table}")
    for index in range(1, num_tables + 1):
        rng = np.random.default_rng(seed + index)
        table = generate_ott_table(
            ott_table_name(index),
            rows_per_table,
            config.domain_size,
            rng,
            tuples_per_page=tuples_per_page,
        )
        db.create_table(table)
        if create_indexes:
            db.create_index(table.name, "a")
            db.create_index(table.name, "b")
    if analyze:
        db.analyze()
    if create_samples:
        db.create_samples(ratio=sampling_ratio, seed=seed + 1000)
    return db


def make_ott_query(db: Database, constants: Sequence[int], name: Optional[str] = None) -> Query:
    """Build the OTT query of Equation 2 for the given selection constants.

    ``constants[k]`` is the value of the selection ``A_{k+1} = c`` on relation
    ``r{k+1}``; the joins form the chain ``b_1 = b_2, ..., b_{K-1} = b_K``.
    """
    num_tables = len(constants)
    if num_tables < 2:
        raise ValueError("an OTT query needs at least two relations")
    builder = QueryBuilder(name or f"ott_{num_tables}tables")
    for index in range(1, num_tables + 1):
        table = ott_table_name(index)
        if not db.has_table(table):
            raise ValueError(f"database has no OTT relation {table!r}")
        builder.table(table)
        builder.filter(table, "a", "=", int(constants[index - 1]))
    for index in range(1, num_tables):
        builder.join(ott_table_name(index), "b", ott_table_name(index + 1), "b")
    builder.aggregate("count", output_name="result_rows")
    return builder.build()


def make_ott_workload(
    db: Database,
    num_tables: int,
    num_queries: int,
    num_matching: Optional[int] = None,
    seed: int = 7,
) -> List[Query]:
    """Generate the OTT query set of Section 5.3.

    Each query selects ``A = 0`` on ``num_matching`` relations and ``A = 1``
    on the remaining ones (or vice versa), with the positions of the
    mismatching selections varying across queries, so every query is empty
    while its maximal non-empty sub-queries are large.  ``num_matching``
    defaults to ``num_tables - 1``, the paper's ``m = n - 1`` choice for the
    4-join queries (``m = 4, n = 5``) and close to it for the 5-join queries.
    """
    if num_matching is None:
        num_matching = num_tables - 1
    if not 0 < num_matching < num_tables:
        raise ValueError("num_matching must be strictly between 0 and num_tables")
    rng = np.random.default_rng(seed)
    queries: List[Query] = []
    for query_index in range(num_queries):
        constants = np.zeros(num_tables, dtype=np.int64)
        mismatch_positions = rng.choice(num_tables, size=num_tables - num_matching, replace=False)
        constants[mismatch_positions] = 1
        if rng.random() < 0.5:
            constants = 1 - constants
        queries.append(
            make_ott_query(db, constants.tolist(), name=f"ott_q{query_index + 1}")
        )
    return queries
