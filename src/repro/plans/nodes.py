"""Physical plan nodes.

A plan is a tree of :class:`PlanNode` objects:

* :class:`ScanNode` — a base-table access (sequential or index scan) together
  with the local predicates applied at the scan;
* :class:`JoinNode` — a binary join (hash, sort-merge, nested-loop or
  index-nested-loop) over two sub-plans with its equi-join predicates;
* :class:`MaterializedNode` — a leaf standing for an intermediate result a
  previous (partial) execution already materialized; the adaptive executor
  plans residual queries whose leaves include these;
* :class:`AggregateNode` — an optional grouped aggregation on top.

Every node carries the optimizer's estimated output cardinality and estimated
cumulative cost; the executor later annotates the same structure with *actual*
cardinalities, which is what the sampling validator and the experiment
harness compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate


class ScanMethod(str, Enum):
    """Access path for a base table."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"


class JoinMethod(str, Enum):
    """Physical join operator."""

    HASH_JOIN = "hash_join"
    MERGE_JOIN = "merge_join"
    NESTED_LOOP = "nested_loop"
    INDEX_NESTED_LOOP = "index_nested_loop"


@dataclass
class PlanNode:
    """Base class for plan nodes; holds estimates shared by all node types."""

    #: Aliases of the base relations contributing to this node's output.
    relations: FrozenSet[str] = field(default_factory=frozenset)
    #: Optimizer's estimated number of output rows.
    estimated_rows: float = 0.0
    #: Optimizer's estimated cumulative cost (this node + its inputs).
    estimated_cost: float = 0.0

    def children(self) -> Sequence["PlanNode"]:
        """Child nodes, left to right."""
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def join_nodes(self) -> List["JoinNode"]:
        """All join nodes in the plan, pre-order."""
        return [node for node in self.walk() if isinstance(node, JoinNode)]

    def scan_nodes(self) -> List["ScanNode"]:
        """All scan nodes in the plan, pre-order."""
        return [node for node in self.walk() if isinstance(node, ScanNode)]

    def depth(self) -> int:
        """Height of the plan tree (a single scan has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)


@dataclass
class ScanNode(PlanNode):
    """Access a base table under ``alias`` applying ``predicates``."""

    table: str = ""
    alias: str = ""
    method: ScanMethod = ScanMethod.SEQ_SCAN
    predicates: Tuple[LocalPredicate, ...] = ()
    #: Column used by an index scan (None for sequential scans).
    index_column: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.relations:
            self.relations = frozenset({self.alias})

    def signature(self) -> tuple:
        """Hashable description used for structural plan equality."""
        return (
            "scan",
            self.table,
            self.alias,
            self.method.value,
            self.index_column,
            tuple(sorted((p.column, p.op, repr(p.value)) for p in self.predicates)),
        )

    def describe(self, indent: int = 0) -> str:
        """One-line human-readable description (used in plan pretty-printing)."""
        parts = [f"{self.method.value} {self.table}"]
        if self.alias != self.table:
            parts.append(f"as {self.alias}")
        if self.index_column:
            parts.append(f"using index({self.index_column})")
        if self.predicates:
            parts.append("filter[" + " and ".join(str(p) for p in self.predicates) + "]")
        return " " * indent + " ".join(parts) + f"  (rows={self.estimated_rows:.1f})"


@dataclass
class MaterializedNode(PlanNode):
    """A leaf standing for an already-materialized intermediate result.

    The node covers the join of ``relations`` (local and join predicates
    within the set applied); its rows live in the executor's intermediate
    registry, keyed by the same join set.  ``estimated_rows`` is the *exact*
    observed cardinality and ``estimated_cost`` is 0 — the work that produced
    the intermediate is sunk, so re-planning prices reuse at the cost of the
    operators stacked on top, nothing more.
    """

    def signature(self) -> tuple:
        """Hashable description used for structural plan equality."""
        return ("materialized", tuple(sorted(self.relations)))

    def describe(self, indent: int = 0) -> str:
        members = ",".join(sorted(self.relations))
        return " " * indent + f"materialized {{{members}}}  (rows={self.estimated_rows:.1f})"


@dataclass
class JoinNode(PlanNode):
    """Join ``left`` and ``right`` on ``predicates`` using ``method``."""

    left: Optional[PlanNode] = None
    right: Optional[PlanNode] = None
    method: JoinMethod = JoinMethod.HASH_JOIN
    predicates: Tuple[JoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        if not self.relations and self.left is not None and self.right is not None:
            self.relations = frozenset(self.left.relations | self.right.relations)

    def children(self) -> Sequence[PlanNode]:
        return tuple(child for child in (self.left, self.right) if child is not None)

    def signature(self) -> tuple:
        """Hashable description used for structural plan equality."""
        left_sig = self.left.signature() if self.left is not None else None
        right_sig = self.right.signature() if self.right is not None else None
        return (
            "join",
            self.method.value,
            tuple(sorted(str(p.normalized()) for p in self.predicates)),
            left_sig,
            right_sig,
        )

    def describe(self, indent: int = 0) -> str:
        condition = " and ".join(str(p) for p in self.predicates) or "true"
        header = (
            " " * indent
            + f"{self.method.value} on [{condition}]  (rows={self.estimated_rows:.1f}, "
            + f"cost={self.estimated_cost:.1f})"
        )
        lines = [header]
        if self.left is not None:
            lines.append(self.left.describe(indent + 2))
        if self.right is not None:
            lines.append(self.right.describe(indent + 2))
        return "\n".join(lines)


@dataclass
class AggregateNode(PlanNode):
    """Grouped aggregation over a single input plan."""

    child: Optional[PlanNode] = None
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()

    def __post_init__(self) -> None:
        if not self.relations and self.child is not None:
            self.relations = frozenset(self.child.relations)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,) if self.child is not None else ()

    def signature(self) -> tuple:
        child_sig = self.child.signature() if self.child is not None else None
        return (
            "aggregate",
            tuple(str(c) for c in self.group_by),
            tuple((a.func, a.alias, a.column) for a in self.aggregates),
            child_sig,
        )

    def describe(self, indent: int = 0) -> str:
        keys = ", ".join(str(c) for c in self.group_by) or "<all>"
        funcs = ", ".join(a.output_name for a in self.aggregates)
        lines = [" " * indent + f"aggregate group by [{keys}] compute [{funcs}]"]
        if self.child is not None:
            lines.append(self.child.describe(indent + 2))
        return "\n".join(lines)


def describe_plan(plan: PlanNode) -> str:
    """Pretty-print a plan tree."""
    return plan.describe()
