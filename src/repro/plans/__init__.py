"""Physical plans and the join-tree formalism of Section 3.1 / Appendix E."""

from __future__ import annotations

from repro.plans.nodes import (
    AggregateNode,
    JoinMethod,
    JoinNode,
    MaterializedNode,
    PlanNode,
    ScanMethod,
    ScanNode,
)
from repro.plans.join_tree import (
    JoinTree,
    TransformationKind,
    classify_transformation,
    is_covered_by,
    is_local_transformation,
    plans_structurally_equal,
    replace_subtrees,
    subtree_for,
)

__all__ = [
    "AggregateNode",
    "JoinMethod",
    "JoinNode",
    "JoinTree",
    "MaterializedNode",
    "PlanNode",
    "ScanMethod",
    "ScanNode",
    "TransformationKind",
    "classify_transformation",
    "is_covered_by",
    "is_local_transformation",
    "plans_structurally_equal",
    "replace_subtrees",
    "subtree_for",
]
