"""The join-tree formalism of the paper (Section 3.1, Appendix E).

The paper reasons about re-optimization through the *join tree* ``tree(P)`` of
a plan ``P``:

* ``tree(P)`` is the set of logical joins contained in ``P``; each join is
  identified by the relations it combines.  For example, the bushy tree
  ``(A ⋈ B) ⋈ (C ⋈ D)`` is ``{AB, CD, ABCD}``.
* Two join trees are **local transformations** of each other when they contain
  the same set of *unordered* logical joins (Definition 1) — i.e. they differ
  only in left/right subtree exchanges (and, at the plan level, in physical
  operator choices).  Otherwise they are **global transformations**.
* A plan ``P`` is **covered** by a set of plans ``𝒫`` when every join of
  ``tree(P)`` appears in the union of the join trees of ``𝒫``
  (Definition 2).  Coverage is the key to the termination argument
  (Theorem 1): a covered plan adds nothing new to the validated statistics Γ.
* Two plans are **structurally equivalent** when their join trees are
  identical as ordered trees (Definition 3); full plan equality additionally
  compares physical operators and is what Algorithm 1's termination test uses.

This module exposes those notions for arbitrary physical plans produced by
:mod:`repro.optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.plans.nodes import AggregateNode, JoinNode, PlanNode, ScanNode
from repro.sql.ast import Query

#: An ordered logical join: (leaves of the left subtree, leaves of the right
#: subtree), each in left-to-right leaf order — the "encoding" of Appendix E.
OrderedJoin = Tuple[Tuple[str, ...], Tuple[str, ...]]

#: An unordered logical join: the set of relations the join combines.
UnorderedJoin = FrozenSet[str]


def _leaf_order(node: PlanNode) -> Tuple[str, ...]:
    """Return the base-relation aliases under ``node`` in left-to-right order."""
    from repro.plans.nodes import AggregateNode, ScanNode

    if isinstance(node, ScanNode):
        return (node.alias,)
    if isinstance(node, JoinNode):
        left = _leaf_order(node.left) if node.left is not None else ()
        right = _leaf_order(node.right) if node.right is not None else ()
        return left + right
    if isinstance(node, AggregateNode) and node.child is not None:
        return _leaf_order(node.child)
    return tuple(sorted(node.relations))


@dataclass(frozen=True)
class JoinTree:
    """The logical join skeleton of a physical plan."""

    #: Ordered joins in post-order (children before parents).
    ordered_joins: Tuple[OrderedJoin, ...]

    @classmethod
    def of(cls, plan: PlanNode) -> "JoinTree":
        """Extract the join tree of a physical plan."""
        ordered: List[OrderedJoin] = []

        def visit(node: PlanNode) -> None:
            for child in node.children():
                visit(child)
            if isinstance(node, JoinNode):
                left = _leaf_order(node.left) if node.left is not None else ()
                right = _leaf_order(node.right) if node.right is not None else ()
                ordered.append((left, right))

        visit(plan)
        return cls(ordered_joins=tuple(ordered))

    # ------------------------------------------------------------------ #
    # Derived representations
    # ------------------------------------------------------------------ #
    @property
    def unordered_joins(self) -> Tuple[UnorderedJoin, ...]:
        """Each join as the frozenset of relations it combines (with multiplicity)."""
        return tuple(frozenset(left + right) for left, right in self.ordered_joins)

    @property
    def join_set(self) -> FrozenSet[UnorderedJoin]:
        """The set of unordered joins — ``tree(P)`` as the paper writes it."""
        return frozenset(self.unordered_joins)

    def encoding(self) -> Tuple[str, ...]:
        """The bottom-up, left-to-right encoding of Appendix E (e.g. ``("AB", "ABC")``)."""
        return tuple("".join(left + right) for left, right in self.ordered_joins)

    @property
    def num_joins(self) -> int:
        """Number of logical joins in the tree."""
        return len(self.ordered_joins)

    def is_left_deep(self) -> bool:
        """True if every join's right input is a single base relation."""
        return all(len(right) == 1 for _, right in self.ordered_joins)

    # ------------------------------------------------------------------ #
    # Relations between trees
    # ------------------------------------------------------------------ #
    def is_local_transformation_of(self, other: "JoinTree") -> bool:
        """Definition 1: same multiset of unordered logical joins."""
        return sorted(self.unordered_joins, key=sorted) == sorted(
            other.unordered_joins, key=sorted
        )

    def is_global_transformation_of(self, other: "JoinTree") -> bool:
        """Definition 1: not a local transformation."""
        return not self.is_local_transformation_of(other)

    def is_covered_by(self, others: Iterable["JoinTree"]) -> bool:
        """Definition 2: every join of this tree appears in the union of ``others``."""
        union: Set[UnorderedJoin] = set()
        for tree in others:
            union.update(tree.join_set)
        return self.join_set <= union

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinTree):
            return NotImplemented
        return self.ordered_joins == other.ordered_joins

    def __hash__(self) -> int:
        return hash(self.ordered_joins)


class TransformationKind(str, Enum):
    """Classification of the step from one plan to the next during re-optimization."""

    IDENTICAL = "identical"
    LOCAL = "local"
    GLOBAL = "global"


def classify_transformation(previous: PlanNode, current: PlanNode) -> TransformationKind:
    """Classify how ``current`` relates to ``previous`` (Definition 1 applied to plans)."""
    prev_tree = JoinTree.of(previous)
    curr_tree = JoinTree.of(current)
    if plans_structurally_equal(previous, current):
        return TransformationKind.IDENTICAL
    if curr_tree.is_local_transformation_of(prev_tree):
        return TransformationKind.LOCAL
    return TransformationKind.GLOBAL


def is_local_transformation(first: PlanNode, second: PlanNode) -> bool:
    """True when the two plans' join trees are local transformations of each other."""
    return JoinTree.of(first).is_local_transformation_of(JoinTree.of(second))


def is_covered_by(plan: PlanNode, plans: Sequence[PlanNode]) -> bool:
    """Definition 2 lifted to physical plans."""
    return JoinTree.of(plan).is_covered_by(JoinTree.of(p) for p in plans)


def plans_identical(first: PlanNode, second: PlanNode) -> bool:
    """Full plan equality: same join order *and* same physical operators.

    This is the termination test of Algorithm 1 (line 6: "if P_i is the same
    as P_{i-1}").
    """
    return first.signature() == second.signature()


def plans_structurally_equal(first: PlanNode, second: PlanNode) -> bool:
    """Definition 3: identical ordered join trees (physical operators may differ)."""
    return JoinTree.of(first).ordered_joins == JoinTree.of(second).ordered_joins


# --------------------------------------------------------------------------- #
# Sub-tree surgery (adaptive re-optimization support)
# --------------------------------------------------------------------------- #
def subtree_for(plan: PlanNode, relations: Iterable[str]) -> Optional[PlanNode]:
    """The node of ``plan`` producing exactly the join of ``relations``.

    Aggregation nodes are skipped (they share their child's relation set but
    produce groups, not join rows).  Returns ``None`` when no node covers the
    set — the join set belongs to a different join order.
    """
    wanted = frozenset(relations)
    for node in plan.walk():
        if isinstance(node, AggregateNode):
            continue
        if frozenset(node.relations) == wanted:
            return node
    return None


def rebind_plan(plan: PlanNode, query: Query) -> PlanNode:
    """The same plan *shape* with scan predicates taken from ``query``.

    A cached parameterized plan embeds the constants of the binding it was
    produced for — its scan nodes filter on the *old* literals.  Executing it
    for a new binding of the same template therefore requires rebinding:
    every scan keeps its access path (method, index column) but swaps its
    predicate list for the bound query's local predicates on that alias.
    Join structure, join methods and the aggregation block are untouched —
    they are binding-independent — and the optimizer's row/cost estimates are
    kept as-is (they describe the binding the plan was chosen under; the
    sampling validator, not the estimates, decides whether that choice still
    stands).
    """
    if isinstance(plan, AggregateNode) and plan.child is not None:
        return replace(plan, child=rebind_plan(plan.child, query))
    if isinstance(plan, JoinNode) and plan.left is not None and plan.right is not None:
        return replace(
            plan,
            left=rebind_plan(plan.left, query),
            right=rebind_plan(plan.right, query),
        )
    if isinstance(plan, ScanNode):
        return replace(plan, predicates=tuple(query.local_predicates_for(plan.alias)))
    return plan


def replace_subtrees(
    plan: PlanNode, replacements: Mapping[FrozenSet[str], PlanNode]
) -> PlanNode:
    """Swap every sub-tree whose relation set has a replacement, top-down.

    The adaptive executor uses this to splice already-materialized
    intermediates (as :class:`~repro.plans.nodes.MaterializedNode` leaves)
    into a freshly planned tree: a node covering exactly a replaced join set
    becomes the replacement; everything else is rebuilt with its children
    substituted.  Matching is top-down, so the largest replaceable sub-tree
    wins.  Aggregation nodes are never replaced themselves (their child is).
    """
    if not isinstance(plan, AggregateNode):
        replacement = replacements.get(frozenset(plan.relations))
        if replacement is not None:
            return replacement
    if isinstance(plan, AggregateNode) and plan.child is not None:
        return replace(plan, child=replace_subtrees(plan.child, replacements))
    if isinstance(plan, JoinNode) and plan.left is not None and plan.right is not None:
        return replace(
            plan,
            left=replace_subtrees(plan.left, replacements),
            right=replace_subtrees(plan.right, replacements),
        )
    return plan
