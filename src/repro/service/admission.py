"""Admission control for the query service.

The service executes on a shared morsel pool
(:class:`~repro.relalg.TaskScheduler`); admitting an unbounded number of
concurrent queries would just thrash that pool and grow latency without
bound.  The :class:`AdmissionController` in front of it provides:

* a **concurrency bound** — at most ``max_concurrent`` queries hold an
  execution slot at a time;
* a **bounded wait queue** — at most ``max_queued`` callers may wait for a
  slot; beyond that, callers are rejected immediately with
  :class:`BackpressureError` (fail fast beats queueing collapse);
* **per-client fairness** — waiting callers are granted slots round-robin
  *across clients* (FIFO within a client), so one chatty client cannot
  starve the rest however many requests it floods in;
* **backpressure statistics** — admitted counts, *sheds* (queue full)
  separated from *timeouts* (waiter deadline expired), the queue's
  high-water mark and per-client tallies, surfaced through the service's
  stats endpoint.

Each waiting ticket owns its own :class:`threading.Event`: a grant wakes
exactly the granted waiter, never the whole queue.  (The first version
broadcast ``notify_all`` on a shared condition for every grant, waking every
waiter O(queue) times per release — a thundering herd that inflated tail
latency under exactly the load the latency harness measures.  The
``wakeups`` counter exists so regression tests can pin the new bound:
one wakeup per grant.)

The controller is synchronous (callers block in ``acquire``) because the
service's execution path is synchronous; the fairness schedule is computed
under the controller's lock, so grants are deterministic given the arrival
order.  All deadlines and wait durations are read from the shared monotonic
clock (:func:`repro.bench.clock.monotonic_s`), the same clock every request
trace is stamped with.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional, Set, Tuple

from repro.bench.clock import monotonic_s

#: Per-client stat maps are folded into an ``<other>`` bucket beyond this
#: many distinct clients, so per-request client ids cannot grow the stats
#: without bound in a long-lived server.
PER_CLIENT_STATS_CAP = 1024


class BackpressureError(RuntimeError):
    """Raised when a request must be rejected instead of queueing further.

    ``kind`` distinguishes the two rejection classes the stats also
    separate: ``"shed"`` (the wait queue was full — load shedding) versus
    ``"timeout"`` (the caller's deadline expired while waiting).
    ``waited_s`` is how long the caller waited before rejection, on the
    shared monotonic clock, so traces of shed requests still account their
    queue time.
    """

    def __init__(
        self, message: str, kind: str = "shed", waited_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.waited_s = waited_s


@dataclass
class AdmissionStats:
    """Counters of the admission controller."""

    admitted: int = 0
    #: Requests rejected immediately because the wait queue was full.  This
    #: is the numerator of a load generator's *shed rate*.
    shed: int = 0
    #: Requests rejected because their admission deadline expired while
    #: queued.  A timeout is a latency failure, not a load-shedding
    #: decision — conflating the two made shed-rate unmeasurable.
    timed_out: int = 0
    #: ``shed + timed_out`` — kept as the historical total for callers that
    #: only care whether requests were rejected at all.
    rejected: int = 0
    completed: int = 0
    #: Waiter wakeups signalled by grants.  With per-ticket events this is
    #: exactly one per queued grant; the thundering-herd regression test
    #: pins it (the old shared-condition broadcast woke O(queue) waiters
    #: per release).
    wakeups: int = 0
    max_queue_depth: int = 0
    max_in_flight: int = 0
    per_client_admitted: Dict[str, int] = field(default_factory=dict)
    per_client_rejected: Dict[str, int] = field(default_factory=dict)


class AdmissionController:
    """Bounded, client-fair gate in front of the execution pool."""

    def __init__(self, max_concurrent: int = 4, max_queued: int = 64) -> None:
        self.max_concurrent = max(1, int(max_concurrent))
        self.max_queued = max(0, int(max_queued))
        self._lock = threading.Lock()
        self._in_flight = 0
        #: Waiting tickets per client, FIFO.  ``OrderedDict`` keeps client
        #: registration order stable for the round-robin rotation.
        self._queues: "OrderedDict[str, Deque[int]]" = OrderedDict()
        #: Round-robin cursor: the client *after* which the next grant scans.
        self._rotation: Deque[str] = deque()
        #: Tickets that have been granted a slot but not yet picked up.
        self._granted: Set[int] = set()
        #: Ticket → the event its waiter blocks on.  A grant sets exactly
        #: this ticket's event (no shared condition, no broadcast).
        self._events: Dict[int, threading.Event] = {}
        self._next_ticket = 0
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------ #
    # Internal scheduling (callers hold the lock)
    # ------------------------------------------------------------------ #
    def _queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _grant_next(self) -> None:
        """Hand free slots to waiting tickets, round-robin across clients.

        Each grant wakes only the granted ticket's own event — a release
        with ``k`` free slots causes exactly ``k`` wakeups however long the
        queue is.
        """
        while self._in_flight + len(self._granted) < self.max_concurrent:
            granted_ticket: Optional[int] = None
            for _ in range(len(self._rotation)):
                client = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues.get(client)
                if queue:
                    granted_ticket = queue.popleft()
                    break
            if granted_ticket is None:
                break
            self._granted.add(granted_ticket)
            event = self._events.get(granted_ticket)
            if event is not None:
                self.stats.wakeups += 1
                event.set()
        self._prune_idle_clients()

    def _prune_idle_clients(self) -> None:
        """Drop clients with no waiting tickets from the scheduling state.

        Client names may be per-connection (or even per-request) ids; keeping
        every name ever seen would grow ``_queues``/``_rotation`` without
        bound and make each grant scan all of history.  A pruned client is
        simply re-registered on its next ``acquire``.
        """
        idle = [client for client, queue in self._queues.items() if not queue]
        for client in idle:
            del self._queues[client]
        if idle:
            idle_set = set(idle)
            self._rotation = deque(c for c in self._rotation if c not in idle_set)

    def _register_client(self, client: str) -> Deque[int]:
        queue = self._queues.get(client)
        if queue is None:
            queue = deque()
            self._queues[client] = queue
            self._rotation.append(client)
        return queue

    def _bump_client_stat(self, per_client: Dict[str, int], client: str) -> None:
        if client not in per_client and len(per_client) >= PER_CLIENT_STATS_CAP:
            client = "<other>"
        per_client[client] = per_client.get(client, 0) + 1

    def _admit_locked(self, client: str) -> None:
        """Book-keeping of a successful admission (caller holds the lock)."""
        self._in_flight += 1
        self.stats.admitted += 1
        self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)
        self._bump_client_stat(self.stats.per_client_admitted, client)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def acquire(self, client: str = "default", timeout: Optional[float] = None) -> float:
        """Block until an execution slot is granted (fairly) to ``client``.

        Returns the seconds spent waiting for the slot (``0.0`` on the
        uncontended fast path), on the shared monotonic clock — the
        request trace's ``queue_wait_s``.

        Raises
        ------
        BackpressureError
            With ``kind="shed"`` if the wait queue is at capacity, or
            ``kind="timeout"`` if the optional ``timeout`` expires before a
            slot is granted.
        """
        started = monotonic_s()
        deadline = None if timeout is None else started + timeout
        with self._lock:
            if (
                self._in_flight + len(self._granted) < self.max_concurrent
                and self._queued_count() == 0
            ):
                # Fast path: free slot, nobody waiting — no ticket needed.
                # Granted-but-unclaimed tickets still reserve their slots.
                self._admit_locked(client)
                return 0.0
            if self._queued_count() >= self.max_queued:
                self.stats.shed += 1
                self.stats.rejected += 1
                self._bump_client_stat(self.stats.per_client_rejected, client)
                raise BackpressureError(
                    f"admission queue full ({self.max_queued} waiting); "
                    f"client {client!r} shed",
                    kind="shed",
                    waited_s=0.0,
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            event = threading.Event()
            self._events[ticket] = event
            queue = self._register_client(client)
            queue.append(ticket)
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._queued_count())
            self._grant_next()

        # Wait outside the lock on this ticket's own event.  The deadline is
        # absolute: the single wait covers the whole remaining budget, and a
        # grant wakes exactly this waiter (see _grant_next).
        remaining = None if deadline is None else max(0.0, deadline - monotonic_s())
        event.wait(timeout=remaining)
        with self._lock:
            if ticket in self._granted:
                # Granted — possibly just after the deadline expired; the
                # slot is already reserved for us, so claim it either way.
                self._granted.discard(ticket)
                self._events.pop(ticket, None)
                self._admit_locked(client)
                return monotonic_s() - started
            # Timed out: withdraw the ticket wherever it is.
            try:
                queue.remove(ticket)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._events.pop(ticket, None)
            self._prune_idle_clients()
            waited = monotonic_s() - started
            self.stats.timed_out += 1
            self.stats.rejected += 1
            self._bump_client_stat(self.stats.per_client_rejected, client)
            raise BackpressureError(
                f"client {client!r} timed out waiting for an execution slot",
                kind="timeout",
                waited_s=waited,
            )

    def release(self) -> None:
        """Return an execution slot and wake the next fair waiter."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self.stats.completed += 1
            self._grant_next()

    @contextmanager
    def admit(self, client: str = "default", timeout: Optional[float] = None) -> Iterator[float]:
        """``with controller.admit(client) as queue_wait_s: execute(...)``.

        Yields the seconds the caller waited for its slot (``acquire``'s
        return value), so serving code can charge the queue-wait stage of
        the request trace without a second clock read.
        """
        waited = self.acquire(client, timeout=timeout)
        try:
            yield waited
        finally:
            self.release()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued_count()

    def snapshot(self) -> Tuple[int, int]:
        """(in_flight, queued) under one lock acquisition."""
        with self._lock:
            return self._in_flight, self._queued_count()

    def stats_snapshot(self) -> AdmissionStats:
        """A consistent, independent copy of the counters.

        ``self.stats`` is the live object mutated under the controller lock;
        handing it to a monitoring thread would let its per-client dicts
        change size mid-iteration.  Readers get this copy instead.
        """
        with self._lock:
            return AdmissionStats(
                admitted=self.stats.admitted,
                shed=self.stats.shed,
                timed_out=self.stats.timed_out,
                rejected=self.stats.rejected,
                completed=self.stats.completed,
                wakeups=self.stats.wakeups,
                max_queue_depth=self.stats.max_queue_depth,
                max_in_flight=self.stats.max_in_flight,
                per_client_admitted=dict(self.stats.per_client_admitted),
                per_client_rejected=dict(self.stats.per_client_rejected),
            )
