"""Admission control for the query service.

The service executes on a shared morsel pool
(:class:`~repro.relalg.TaskScheduler`); admitting an unbounded number of
concurrent queries would just thrash that pool and grow latency without
bound.  The :class:`AdmissionController` in front of it provides:

* a **concurrency bound** — at most ``max_concurrent`` queries hold an
  execution slot at a time;
* a **bounded wait queue** — at most ``max_queued`` callers may wait for a
  slot; beyond that, callers are rejected immediately with
  :class:`BackpressureError` (fail fast beats queueing collapse);
* **per-client fairness** — waiting callers are granted slots round-robin
  *across clients* (FIFO within a client), so one chatty client cannot
  starve the rest however many requests it floods in;
* **backpressure statistics** — admitted/rejected counts, the queue's
  high-water mark and per-client tallies, surfaced through the service's
  stats endpoint.

The controller is synchronous (callers block in ``admit``) because the
service's execution path is synchronous; the fairness schedule is computed
under the controller's lock, so grants are deterministic given the arrival
order.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional, Set, Tuple

#: Per-client stat maps are folded into an ``<other>`` bucket beyond this
#: many distinct clients, so per-request client ids cannot grow the stats
#: without bound in a long-lived server.
PER_CLIENT_STATS_CAP = 1024


class BackpressureError(RuntimeError):
    """Raised when the wait queue is full and a request must be shed."""


@dataclass
class AdmissionStats:
    """Counters of the admission controller."""

    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    max_queue_depth: int = 0
    max_in_flight: int = 0
    per_client_admitted: Dict[str, int] = field(default_factory=dict)
    per_client_rejected: Dict[str, int] = field(default_factory=dict)


class AdmissionController:
    """Bounded, client-fair gate in front of the execution pool."""

    def __init__(self, max_concurrent: int = 4, max_queued: int = 64) -> None:
        self.max_concurrent = max(1, int(max_concurrent))
        self.max_queued = max(0, int(max_queued))
        self._lock = threading.Lock()
        self._slots_available = threading.Condition(self._lock)
        self._in_flight = 0
        #: Waiting tickets per client, FIFO.  ``OrderedDict`` keeps client
        #: registration order stable for the round-robin rotation.
        self._queues: "OrderedDict[str, Deque[int]]" = OrderedDict()
        #: Round-robin cursor: the client *after* which the next grant scans.
        self._rotation: Deque[str] = deque()
        #: Tickets that have been granted a slot but not yet picked up.
        self._granted: Set[int] = set()
        self._next_ticket = 0
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------ #
    # Internal scheduling (callers hold the lock)
    # ------------------------------------------------------------------ #
    def _queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _grant_next(self) -> None:
        """Hand free slots to waiting tickets, round-robin across clients."""
        while self._in_flight + len(self._granted) < self.max_concurrent:
            granted = False
            for _ in range(len(self._rotation)):
                client = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues.get(client)
                if queue:
                    self._granted.add(queue.popleft())
                    granted = True
                    break
            if not granted:
                break
        self._prune_idle_clients()
        if self._granted:
            self._slots_available.notify_all()

    def _prune_idle_clients(self) -> None:
        """Drop clients with no waiting tickets from the scheduling state.

        Client names may be per-connection (or even per-request) ids; keeping
        every name ever seen would grow ``_queues``/``_rotation`` without
        bound and make each grant scan all of history.  A pruned client is
        simply re-registered on its next ``acquire``.
        """
        idle = [client for client, queue in self._queues.items() if not queue]
        for client in idle:
            del self._queues[client]
        if idle:
            idle_set = set(idle)
            self._rotation = deque(c for c in self._rotation if c not in idle_set)

    def _register_client(self, client: str) -> Deque[int]:
        queue = self._queues.get(client)
        if queue is None:
            queue = deque()
            self._queues[client] = queue
            self._rotation.append(client)
        return queue

    def _bump_client_stat(self, per_client: Dict[str, int], client: str) -> None:
        if client not in per_client and len(per_client) >= PER_CLIENT_STATS_CAP:
            client = "<other>"
        per_client[client] = per_client.get(client, 0) + 1

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def acquire(self, client: str = "default", timeout: Optional[float] = None) -> None:
        """Block until an execution slot is granted (fairly) to ``client``.

        Raises
        ------
        BackpressureError
            If the wait queue is at capacity, or the optional ``timeout``
            expires before a slot is granted.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if (
                self._in_flight + len(self._granted) < self.max_concurrent
                and self._queued_count() == 0
            ):
                # Fast path: free slot, nobody waiting — no ticket needed.
                # Granted-but-unclaimed tickets still reserve their slots.
                self._in_flight += 1
                self.stats.admitted += 1
                self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)
                self._bump_client_stat(self.stats.per_client_admitted, client)
                return
            if self._queued_count() >= self.max_queued:
                self.stats.rejected += 1
                self._bump_client_stat(self.stats.per_client_rejected, client)
                raise BackpressureError(
                    f"admission queue full ({self.max_queued} waiting); "
                    f"client {client!r} shed"
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            queue = self._register_client(client)
            queue.append(ticket)
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._queued_count())
            self._grant_next()
            while ticket not in self._granted:
                # The deadline is absolute: notify_all wakes every waiter on
                # each grant, so a passed-over waiter re-waits only for the
                # *remaining* time, keeping the documented cap a real cap.
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0.0:
                    expired = True
                else:
                    expired = not self._slots_available.wait(timeout=remaining)
                if expired and ticket not in self._granted:
                    # Timed out: withdraw the ticket wherever it is.
                    try:
                        queue.remove(ticket)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    self._prune_idle_clients()
                    self.stats.rejected += 1
                    self._bump_client_stat(self.stats.per_client_rejected, client)
                    raise BackpressureError(
                        f"client {client!r} timed out waiting for an execution slot"
                    )
            self._granted.discard(ticket)
            self._in_flight += 1
            self.stats.admitted += 1
            self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)
            self._bump_client_stat(self.stats.per_client_admitted, client)

    def release(self) -> None:
        """Return an execution slot and wake the next fair waiter."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self.stats.completed += 1
            self._grant_next()

    @contextmanager
    def admit(self, client: str = "default", timeout: Optional[float] = None) -> Iterator[None]:
        """``with controller.admit(client): execute(...)`` — acquire/release."""
        self.acquire(client, timeout=timeout)
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued_count()

    def snapshot(self) -> Tuple[int, int]:
        """(in_flight, queued) under one lock acquisition."""
        with self._lock:
            return self._in_flight, self._queued_count()

    def stats_snapshot(self) -> AdmissionStats:
        """A consistent, independent copy of the counters.

        ``self.stats`` is the live object mutated under the controller lock;
        handing it to a monitoring thread would let its per-client dicts
        change size mid-iteration.  Readers get this copy instead.
        """
        with self._lock:
            return AdmissionStats(
                admitted=self.stats.admitted,
                rejected=self.stats.rejected,
                completed=self.stats.completed,
                max_queue_depth=self.stats.max_queue_depth,
                max_in_flight=self.stats.max_in_flight,
                per_client_admitted=dict(self.stats.per_client_admitted),
                per_client_rejected=dict(self.stats.per_client_rejected),
            )
