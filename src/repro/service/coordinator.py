"""The sharded scatter-gather query service.

:class:`ShardedQueryService` serves one logical database from ``N``
in-process :class:`~repro.service.service.QueryService` shards.  Each shard
owns a hash-partitioned catalog slice (:mod:`repro.service.sharding`) with
its own ANALYZE statistics, sample tables, plan cache, result cache and
admission gate; the coordinator parses and fingerprints each statement
once, routes it, and merges shard results **bit-identically** to what one
single-node service over the unsharded catalog returns:

``scatter`` + *partial merge*
    Aggregate queries whose aggregates compose exactly across shards
    (``COUNT``/``MIN``/``MAX`` always; ``SUM``/``AVG`` over integer-typed
    columns, with ``AVG`` decomposed into sum+count) run on every shard,
    each shard reducing its fragment to a partial with
    :func:`~repro.relalg.aggregate.partial_aggregate`; the coordinator
    merges partials in canonical sorted-shard order with
    :func:`~repro.relalg.aggregate.merge_partials`.

``scatter`` + *gather merge*
    Order-sensitive outputs (bare projections, float ``SUM``/``AVG``) ship
    their join fragments back; the coordinator concatenates them in sorted
    shard order, applies the adaptive executor's canonical full-column row
    order, and runs the final projection/aggregation centrally — the same
    :func:`~repro.service.service.finalize_canonical_execution` the
    single-node service uses, so the output bytes match by construction.

``single``
    Replicated-only queries are answered exactly by shard 0 through its
    full serving stack (result cache, plan cache, admission).

``fallback``
    Queries joining partitioned tables off their partition columns run on
    an unsharded fallback service over the source catalog.

Scatter work travels over the PR-6 process scheduler: the shard task is a
top-level picklable kernel whose payload carries a registry token, never a
catalog or relation — fork-started workers inherit the shard catalogs by
copy-on-write.  Workers that never inherited the registration (external
pre-forked pools, spawn platforms) return a sentinel and the coordinator
re-runs those shards inline, trading speed, never correctness.

After every scatter the coordinator runs **exact-Γ gossip**: each shard's
executed fragment yields exact join-set cardinalities
(:meth:`~repro.executor.executor.ExecutionResult.actual_cardinalities`),
and the coordinator broadcasts every shard's exact entries to its
*siblings'* plan caches (:meth:`QueryService.apply_gamma_gossip`), so a
mis-estimate observed on one shard corrects the drift guard and the next
replan's warm-start Γ on all of them before they replan.

Every loop over shards in this module runs in canonical sorted shard-id
order — merge determinism depends on it (repro-lint RPL011).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.clock import monotonic_s
from repro.cardinality.gamma import Gamma
from repro.cost.model import CostModel, ResourceVector
from repro.cost.units import CostUnits
from repro.executor.executor import (
    ExecutionResult,
    Executor,
    NodeExecution,
    required_columns,
)
from repro.executor.materialization import IntermediateRegistry, canonicalize_relation
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import MaterializedNode, PlanNode
from repro.relalg import Relation, TaskScheduler, concat_relations
from repro.relalg.aggregate import merge_partials, partial_aggregate, partial_merge_exact
from repro.relalg.encoding import ColumnData
from repro.reopt.algorithm import ReoptimizationSettings
from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.cache import ResultCache, ResultCacheStats
from repro.service.service import (
    QueryService,
    ServiceResult,
    ServiceSettings,
    combine_execution_accounting,
    finalize_canonical_execution,
    split_final_aggregate,
)
from repro.service.sharding import (
    ShardingSpec,
    exact_partial_columns,
    lookup_shard,
    register_shards,
    route_query,
    shard_database,
    unregister_shards,
)
from repro.service.templates import PreparedStatement, StatementRegistry
from repro.service.tracing import RequestTrace
from repro.sql.ast import Bindings, Query
from repro.storage.catalog import Database

__all__ = ["ShardedQueryService", "ShardedServiceStats"]


@dataclass
class ShardedServiceStats:
    """Lifetime counters of one :class:`ShardedQueryService` coordinator.

    Per-shard planning/caching counters live on each shard's own
    :class:`~repro.service.service.ServiceStats`.
    """

    queries: int = 0
    #: Executions answered from the coordinator's merged-result cache.
    result_cache_hits: int = 0
    #: Executions scattered to every shard.
    scatter_queries: int = 0
    #: ... merged through exact partial aggregates.
    partial_merges: int = 0
    #: ... merged through canonical-order gather.
    gather_merges: int = 0
    #: Replicated-only executions answered by shard 0 alone.
    single_shard_queries: int = 0
    #: Executions served by the unsharded fallback service.
    fallback_queries: int = 0
    #: Shard fragments re-run inline because a worker lacked the registry.
    inline_shard_reruns: int = 0
    #: Exact Γ entries delivered to sibling shards' plan caches.
    gossip_entries: int = 0
    #: Requests shed by the coordinator's admission gate.
    rejected: int = 0


#: Scatter payload: ``(token, shard_id, plan, bound query, mode,
#: morsel_rows, nested_loop_block_elements, cost_units)`` — descriptor-sized
#: (a registry token and plan metadata), never a catalog or columns.
_ShardPayload = Tuple[str, int, PlanNode, Query, str, int, Optional[int], CostUnits]

#: Scatter outcome: ``("ok", columns, num_rows, node_executions, wall)`` or
#: ``("missing", shard_id, 0, [], 0.0)`` from a worker without the registry.
_ShardOutcome = Tuple[str, Dict[str, ColumnData], int, List[NodeExecution], float]


def _execute_shard(db: Database, payload: _ShardPayload) -> _ShardOutcome:
    """Run one shard's residual plan and reduce it for transport.

    The join fragment executes with a serial executor (the shard task *is*
    the unit of parallelism).  ``partial`` mode reduces the fragment to a
    partial aggregate before it crosses the queue; ``gather`` mode ships
    the raw fragment columns for central canonical-order merging.
    """
    _, shard_id, plan, query, mode, morsel_rows, block_elements, cost_units = payload
    executor = Executor(
        db,
        cost_units=cost_units,
        scheduler=None,
        morsel_rows=morsel_rows,
        nested_loop_block_elements=block_elements,
    )
    join_plan, _ = split_final_aggregate(plan)
    required = required_columns(plan, query)
    fragment = executor.execute_fragment(join_plan, required)
    relation = fragment.columns
    if mode == "partial":
        relation = partial_aggregate(relation, query.group_by, query.aggregates)
    return (
        "ok",
        dict(relation),
        relation.num_rows,
        list(fragment.node_executions),
        fragment.wall_seconds,
    )


def _shard_fragment_task(payload: _ShardPayload) -> _ShardOutcome:
    """Top-level scatter kernel: resolve the shard catalog, run, reduce.

    Returns the ``"missing"`` sentinel instead of raising when this worker
    never inherited the shard registration — the coordinator re-runs the
    shard inline; an exception here would fail the whole batch.
    """
    token, shard_id = payload[0], payload[1]
    db = lookup_shard(token, shard_id)
    if db is None:
        return ("missing", {}, 0, [], 0.0)
    return _execute_shard(db, payload)


class ShardedQueryService:
    """Serve one logical database from N hash-partitioned service shards."""

    def __init__(
        self,
        db: Database,
        num_shards: int = 4,
        spec: Optional[ShardingSpec] = None,
        optimizer_settings: Optional[OptimizerSettings] = None,
        reopt_settings: Optional[ReoptimizationSettings] = None,
        settings: Optional[ServiceSettings] = None,
        scheduler: Optional[TaskScheduler] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.db = db
        self.num_shards = num_shards
        self.spec = spec if spec is not None else ShardingSpec.tpch()
        self.settings = settings if settings is not None else ServiceSettings()
        self.reopt_settings = (
            reopt_settings if reopt_settings is not None else ReoptimizationSettings()
        )
        shard_dbs = shard_database(
            db,
            num_shards,
            self.spec,
            sampling_ratio=self.reopt_settings.sampling_ratio,
            sampling_seed=self.reopt_settings.sampling_seed,
        )
        #: Registered before the scheduler's process pool can spawn, so
        #: fork-started workers inherit the shard catalogs.
        self._registry_token = register_shards(db.name, shard_dbs)
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            scheduler
            if scheduler is not None
            else TaskScheduler(workers=num_shards, name="sharded")
        )
        self.statements = StatementRegistry(
            max_entries=self.settings.statement_registry_entries
        )
        #: One full serving stack per shard, all on the shared scheduler.
        self.shards: List[QueryService] = [
            QueryService(
                shard_db,
                optimizer_settings=optimizer_settings,
                reopt_settings=reopt_settings,
                settings=self.settings,
                scheduler=self.scheduler,
            )
            for shard_db in shard_dbs
        ]
        #: Unsharded service answering queries the shards cannot.
        self.fallback = QueryService(
            db,
            optimizer_settings=optimizer_settings,
            reopt_settings=reopt_settings,
            settings=self.settings,
            scheduler=self.scheduler,
        )
        self.result_cache = ResultCache(max_entries=self.settings.result_cache_entries)
        self.admission = AdmissionController(
            max_concurrent=self.settings.max_concurrent,
            max_queued=self.settings.max_queued,
        )
        self.stats = ShardedServiceStats()
        self._cost_model = CostModel(
            units=self.fallback.optimizer.settings.cost_units
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the coordinator, its shards, and the owned scheduler."""
        self._closed = True
        unregister_shards(self._registry_token)
        for shard in self.shards:  # construction order == sorted shard ids
            shard.close()
        self.fallback.close()
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def prepare(
        self, statement: Union[str, Query, PreparedStatement], name: Optional[str] = None
    ) -> PreparedStatement:
        """Normalize and register a prepared statement (idempotent)."""
        return self.statements.register(statement, name=name)

    def execute(
        self,
        statement: Union[str, Query, PreparedStatement],
        params: Optional[Bindings] = None,
        client: str = "default",
        trace: Optional[RequestTrace] = None,
    ) -> ServiceResult:
        """Serve one execution, routed across the shards.

        ``trace`` is filled with per-stage latency accounting exactly like
        :meth:`QueryService.execute` — single/fallback routes delegate the
        trace to the serving shard; scatter routes charge queue wait at the
        coordinator's gate, per-shard validation/planning, fragment
        execution, and the partial/gather merge.
        """
        if self._closed:
            raise RuntimeError("ShardedQueryService is closed")
        if trace is None:
            trace = RequestTrace(client=client)
        started = monotonic_s()
        prepared = self.prepare(statement)
        bound = prepared.bind(params)
        routing = route_query(bound, self.spec)
        if routing.mode == "single":
            result = self.shards[0].execute(prepared, params, client=client, trace=trace)
            self.stats.queries += 1
            self.stats.single_shard_queries += 1
            return result
        if routing.mode == "fallback":
            result = self.fallback.execute(prepared, params, client=client, trace=trace)
            self.stats.queries += 1
            self.stats.fallback_queries += 1
            return result

        trace.client = client
        trace.template = prepared.name
        trace.started_s = started
        binding = prepared.binding_key(params)
        epochs = self._epoch_snapshot(prepared)
        cache_key = ResultCache.key(prepared.fingerprint, binding, epochs)
        if self.settings.use_result_cache:
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                self.stats.queries += 1
                self.stats.result_cache_hits += 1
                result = self._cached_result(prepared, bound, cached)
                result.wall_seconds = monotonic_s() - started
                trace.source = result.source
                trace.total_s = result.wall_seconds
                result.trace = trace
                return result
        try:
            with self.admission.admit(
                client, timeout=self.settings.admission_timeout
            ) as queue_wait:
                trace.queue_wait_s += queue_wait
                result = self._serve_scatter(prepared, bound, trace)
        except BackpressureError as error:
            # Only backpressure counts as a rejection: an execution error is
            # a failed query, not a shed one (conflating them made the
            # coordinator's shed-rate meaningless under fault injection).
            trace.outcome = error.kind if error.kind in ("shed", "timeout") else "shed"
            trace.queue_wait_s += error.waited_s
            trace.total_s = monotonic_s() - started
            self.stats.rejected += 1
            raise
        if self.settings.use_result_cache:
            self.result_cache.put(cache_key, result.execution)
        self.stats.queries += 1
        self.stats.scatter_queries += 1
        result.wall_seconds = monotonic_s() - started
        trace.source = result.source
        trace.validation_s = result.validation_seconds
        trace.planning_s = result.planning_seconds
        trace.total_s = result.wall_seconds
        result.trace = trace
        return result

    def admission_stats(self) -> AdmissionStats:
        return self.admission.stats_snapshot()

    def result_cache_stats(self) -> ResultCacheStats:
        return self.result_cache.stats

    # ------------------------------------------------------------------ #
    # Scatter-gather serving
    # ------------------------------------------------------------------ #
    def _epoch_snapshot(self, prepared: PreparedStatement) -> Tuple:
        """Combined shard epochs, in canonical sorted shard-id order."""
        return tuple(
            shard.db.epoch_snapshot(prepared.tables) for shard in self.shards
        )

    def _cached_result(
        self, prepared: PreparedStatement, bound: Query, cached: ExecutionResult
    ) -> ServiceResult:
        plan = MaterializedNode(
            relations=frozenset(bound.aliases),
            estimated_rows=float(cached.num_rows),
            estimated_cost=0.0,
        )
        return ServiceResult(
            statement=prepared,
            query=bound,
            execution=cached,
            plan=plan,
            source="result_cache",
        )

    def _merge_mode(self, bound: Query) -> str:
        """``partial`` when every aggregate composes exactly, else ``gather``."""
        if bound.aggregates and partial_merge_exact(
            bound.aggregates, exact_partial_columns(self.db, bound)
        ):
            return "partial"
        return "gather"

    def _scatter(
        self, plans: Sequence[PlanNode], bound: Query, mode: str
    ) -> List[_ShardOutcome]:
        """Run every shard's residual plan over the process scheduler.

        Payloads go out in shard-id order and ``map_kernel`` returns in
        submission order, so the outcomes come back canonically ordered.
        Workers without the shard registry (``"missing"``) are re-run
        inline in the coordinator process.
        """
        cost_units = self.fallback.optimizer.settings.cost_units
        payloads: List[_ShardPayload] = [
            (
                self._registry_token,
                shard_id,
                plans[shard_id],
                bound,
                mode,
                self.settings.morsel_rows,
                self.fallback.optimizer.settings.nested_loop_block_elements,
                cost_units,
            )
            for shard_id in range(self.num_shards)
        ]
        outcomes = self.scheduler.map_kernel(
            _shard_fragment_task, payloads, account="sharded-scatter"
        )
        for shard_id in range(self.num_shards):
            if outcomes[shard_id][0] == "missing":
                outcomes[shard_id] = _execute_shard(
                    self.shards[shard_id].db, payloads[shard_id]
                )
                self.stats.inline_shard_reruns += 1
        return outcomes

    def _merge_partial(
        self, outcomes: Sequence[_ShardOutcome], bound: Query
    ) -> ExecutionResult:
        """Merge per-shard partial aggregates (canonical shard order)."""
        parts = [
            Relation(columns, num_rows=num_rows)
            for _, columns, num_rows, _, _ in outcomes
        ]
        merged = merge_partials(parts, bound.group_by, bound.aggregates).decoded()
        node_executions = [
            execution for outcome in outcomes for execution in outcome[3]
        ]
        input_rows = sum(part.num_rows for part in parts)
        node_executions.append(
            NodeExecution(
                relations=frozenset(bound.aliases),
                kind="aggregate",
                actual_rows=merged.num_rows,
                estimated_rows=float(merged.num_rows),
                resources=self._cost_model.aggregate_resources(
                    input_rows, merged.num_rows
                ),
            )
        )
        total = ResourceVector()
        for execution in node_executions:
            total = total + execution.resources
        result = ExecutionResult(
            columns=merged,
            num_rows=merged.num_rows,
            node_executions=node_executions,
        )
        result.actual_resources = total
        result.simulated_cost = self._cost_model.cost(total)
        result.wall_seconds = sum(outcome[4] for outcome in outcomes)
        return result

    def _merge_gather(
        self,
        outcomes: Sequence[_ShardOutcome],
        plans: Sequence[PlanNode],
        bound: Query,
    ) -> ExecutionResult:
        """Concatenate shard fragments and finish centrally.

        Fragments concatenate in canonical shard order, then take the
        adaptive executor's canonical full-column row order — a pure
        function of the row multiset, which the disjoint shard union
        preserves — so the central final stage sees byte-for-byte the rows
        a single-node canonical execution sees.
        """
        fragments = [
            Relation(columns, num_rows=num_rows)
            for _, columns, num_rows, _, _ in outcomes
        ]
        combined = concat_relations(fragments)
        canonical = canonicalize_relation(combined)
        join_plan, aggregate_node = split_final_aggregate(plans[0])
        registry = IntermediateRegistry()
        executor = Executor(
            self.db,
            cost_units=self.fallback.optimizer.settings.cost_units,
            scheduler=self.scheduler,
            morsel_rows=self.settings.morsel_rows,
            nested_loop_block_elements=(
                self.fallback.optimizer.settings.nested_loop_block_elements
            ),
            intermediates=registry,
        )
        final_execution = finalize_canonical_execution(
            executor,
            registry,
            bound,
            canonical,
            aggregate_node,
            source_signature=join_plan.signature(),
        )
        shard_results = []
        for _, _, num_rows, node_executions, wall_seconds in outcomes:
            part = ExecutionResult(
                columns=Relation(), num_rows=num_rows, node_executions=node_executions
            )
            part.wall_seconds = wall_seconds
            shard_results.append(part)
        return combine_execution_accounting(
            shard_results, final_execution, self._cost_model
        )

    def _gossip(
        self, prepared: PreparedStatement, outcomes: Sequence[_ShardOutcome]
    ) -> int:
        """Broadcast each shard's exact Γ entries to its siblings.

        Hash partitioning keeps shards statistically symmetric, so an exact
        cardinality executed on one shard is the best estimate of the same
        join set on every other.  Senders merge in ascending shard order
        (later shards win ties) and every receiver gets the combined view
        of all its siblings.
        """
        gammas: List[Gamma] = []
        for _, _, _, node_executions, _ in outcomes:
            gamma = Gamma()
            for execution in node_executions:
                if execution.kind != "aggregate":
                    gamma.record_exact(execution.relations, float(execution.actual_rows))
            gammas.append(gamma)
        applied = 0
        for receiver in range(self.num_shards):
            combined = Gamma()
            for sender in range(self.num_shards):
                if sender != receiver:
                    combined.merge(gammas[sender])
            if len(combined):
                applied += self.shards[receiver].apply_gamma_gossip(
                    prepared.fingerprint, combined
                )
        self.stats.gossip_entries += applied
        return applied

    def _serve_scatter(
        self,
        prepared: PreparedStatement,
        bound: Query,
        trace: Optional[RequestTrace] = None,
    ) -> ServiceResult:
        """Plan per shard, scatter, merge bit-identically, gossip Γ."""
        plans: List[PlanNode] = []
        sources: List[str] = []
        worst_drift: Optional[float] = None
        validation_seconds = 0.0
        planning_seconds = 0.0
        for shard in self.shards:  # canonical shard order
            plan, source, drift, shard_validation, shard_planning = shard._plan_for(
                prepared, bound
            )
            plans.append(plan)
            sources.append(source)
            validation_seconds += shard_validation
            planning_seconds += shard_planning
            if drift is not None:
                worst_drift = drift if worst_drift is None else max(worst_drift, drift)
        mode = self._merge_mode(bound)
        scatter_started = monotonic_s()
        outcomes = self._scatter(plans, bound, mode)
        merge_started = monotonic_s()
        if mode == "partial":
            execution = self._merge_partial(outcomes, bound)
            self.stats.partial_merges += 1
        else:
            execution = self._merge_gather(outcomes, plans, bound)
            self.stats.gather_merges += 1
        if trace is not None:
            trace.execution_s += merge_started - scatter_started
            trace.merge_s += monotonic_s() - merge_started
        self._gossip(prepared, outcomes)
        return ServiceResult(
            statement=prepared,
            query=bound,
            execution=execution,
            plan=plans[0],
            source=f"scatter_{mode}",
            drift=worst_drift,
            validation_seconds=validation_seconds,
            planning_seconds=planning_seconds,
        )
