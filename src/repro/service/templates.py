"""Prepared-statement templates.

A :class:`PreparedStatement` is the unit the query service caches around: a
parameterized query (``?`` / ``:name`` placeholders in literal positions),
normalized into a *template fingerprint* that identifies the statement up to
its parameter slots.  Two clients preparing the same SQL text — or the same
:class:`~repro.sql.builder.QueryBuilder` shape with different spellings of
the baked-in constants — share one template, one plan-cache line and one
result-cache family.

Binding produces a plain bound :class:`~repro.sql.ast.Query` (every
parameter replaced by a constant) plus the canonical *binding key* the
result cache uses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sql.ast import Bindings, Parameter, Query
from repro.sql.fingerprint import binding_key, template_fingerprint
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class PreparedStatement:
    """A normalized, fingerprinted prepared statement."""

    #: Client-facing statement name (defaults to the query's name).
    name: str
    #: The parameterized (or constant-only) query template.
    query: Query
    #: Normalized identity of the template (parameter slots abstracted).
    fingerprint: Tuple = field(repr=False)

    @property
    def parameters(self) -> List[Parameter]:
        """The template's parameter slots, in appearance order."""
        return self.query.parameters()

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    @property
    def tables(self) -> List[str]:
        """Base tables the statement reads (for epoch snapshots)."""
        return sorted({ref.table for ref in self.query.tables})

    def bind(self, bindings: Optional[Bindings] = None, name: Optional[str] = None) -> Query:
        """A bound, executable query for one set of parameter values."""
        if bindings is None:
            bindings = ()
        return self.query.bind(bindings, name=name if name is not None else self.name)

    def binding_key(self, bindings: Optional[Bindings] = None) -> Tuple:
        """Canonical result-cache key component for ``bindings``."""
        return binding_key(self.query, bindings if bindings is not None else ())


def prepare_statement(
    statement: Union[str, Query, PreparedStatement], name: Optional[str] = None
) -> PreparedStatement:
    """Normalize SQL text / a query / an existing statement into a template."""
    if isinstance(statement, PreparedStatement):
        return statement
    if isinstance(statement, str):
        query = parse_query(statement, name=name or "prepared")
    else:
        query = statement
        query.validate()
    return PreparedStatement(
        name=name or query.name,
        query=query,
        fingerprint=template_fingerprint(query),
    )


class StatementRegistry:
    """Thread-safe, bounded registry deduplicating templates by fingerprint.

    Preparing the same statement twice (any client, any spelling) returns
    the *first* registration, so every per-template cache keyed off the
    registry sees one line per distinct template.  The registry is an LRU
    bounded by ``max_entries``: ad-hoc constant-only SQL creates one
    template per distinct literal set, and a long-lived server must not
    accumulate those forever (an evicted template is simply re-prepared on
    its next use).
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._by_fingerprint: "OrderedDict" = OrderedDict()

    def register(
        self, statement: Union[str, Query, PreparedStatement], name: Optional[str] = None
    ) -> PreparedStatement:
        prepared = prepare_statement(statement, name=name)
        with self._lock:
            existing = self._by_fingerprint.get(prepared.fingerprint)
            if existing is not None:
                self._by_fingerprint.move_to_end(prepared.fingerprint)
                return existing
            self._by_fingerprint[prepared.fingerprint] = prepared
            while len(self._by_fingerprint) > self.max_entries:
                self._by_fingerprint.popitem(last=False)
            return prepared

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_fingerprint)
