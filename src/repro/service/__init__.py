"""The query service layer: prepared statements served through a
sampling-validated plan cache, an epoch-stamped result cache and client-fair
admission control (see :mod:`repro.service.service`), plus the sharded
scatter-gather coordinator over hash-partitioned catalog slices
(:mod:`repro.service.coordinator`, :mod:`repro.service.sharding`)."""

from __future__ import annotations

from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    BackpressureError,
)
from repro.service.cache import (
    PlanCacheEntry,
    ResultCache,
    ResultCacheStats,
    max_drift,
)
from repro.service.coordinator import (
    ShardedQueryService,
    ShardedServiceStats,
)
from repro.service.service import (
    QueryService,
    ServiceResult,
    ServiceSettings,
    ServiceStats,
)
from repro.service.sharding import (
    ShardRouting,
    ShardingSpec,
    hash_partition,
    route_query,
    shard_database,
)
from repro.service.templates import (
    PreparedStatement,
    StatementRegistry,
    prepare_statement,
)
from repro.service.tracing import (
    STAGE_FIELDS,
    RequestTrace,
)

__all__ = [
    "STAGE_FIELDS",
    "RequestTrace",
    "AdmissionController",
    "AdmissionStats",
    "BackpressureError",
    "PlanCacheEntry",
    "PreparedStatement",
    "QueryService",
    "ResultCache",
    "ResultCacheStats",
    "ServiceResult",
    "ServiceSettings",
    "ServiceStats",
    "ShardRouting",
    "ShardedQueryService",
    "ShardedServiceStats",
    "ShardingSpec",
    "StatementRegistry",
    "hash_partition",
    "max_drift",
    "prepare_statement",
    "route_query",
    "shard_database",
]
