"""The query service layer: prepared statements served through a
sampling-validated plan cache, an epoch-stamped result cache and client-fair
admission control (see :mod:`repro.service.service`)."""

from __future__ import annotations

from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    BackpressureError,
)
from repro.service.cache import (
    PlanCacheEntry,
    ResultCache,
    ResultCacheStats,
    max_drift,
)
from repro.service.service import (
    QueryService,
    ServiceResult,
    ServiceSettings,
    ServiceStats,
)
from repro.service.templates import (
    PreparedStatement,
    StatementRegistry,
    prepare_statement,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BackpressureError",
    "PlanCacheEntry",
    "PreparedStatement",
    "QueryService",
    "ResultCache",
    "ResultCacheStats",
    "ServiceResult",
    "ServiceSettings",
    "ServiceStats",
    "StatementRegistry",
    "max_drift",
    "prepare_statement",
]
