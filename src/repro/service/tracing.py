"""Per-request tracing: where did this request's latency go?

A :class:`RequestTrace` rides along one ``execute`` call through the whole
serving stack — admission (queue wait), the sampling validator, Algorithm 1
planning, the join pipeline, and the canonical-order merge/finalize stage —
and comes back with one wall-clock duration per stage, all read from the
shared monotonic clock (:func:`repro.bench.clock.monotonic_s`), so the
stages of one request are directly comparable with each other and with the
admission deadline the request ran under.

The trace is the observability primitive the load generator
(:mod:`repro.bench.loadgen`) aggregates into p50/p95/p99 latency and
per-stage breakdowns; it costs two clock reads per stage and allocates
nothing after construction, so it is cheap enough to leave on for every
request.

Callers can pass their own trace into
:meth:`repro.service.QueryService.execute` (the load generator does, so it
keeps the trace even when the request is shed with
:class:`~repro.service.admission.BackpressureError`); when they don't, the
service creates one and attaches it to the returned
:class:`~repro.service.service.ServiceResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["RequestTrace", "STAGE_FIELDS"]

#: The per-stage duration fields of a trace, in pipeline order.  The load
#: generator's per-stage breakdown and the BENCH artifact's columns follow
#: this order.
STAGE_FIELDS: Tuple[str, ...] = (
    "queue_wait_s",
    "validation_s",
    "planning_s",
    "execution_s",
    "merge_s",
)


@dataclass
class RequestTrace:
    """Per-stage wall-clock accounting of one served (or shed) request.

    All durations are seconds on the shared monotonic clock.  Stages a
    request never entered stay ``0.0`` — e.g. a result-cache hit has only
    ``total_s``, a validated reuse has no ``planning_s``, and a shed
    request has only ``queue_wait_s``.
    """

    #: Client id the request was submitted under (admission fairness key).
    client: str = "default"
    #: Prepared-statement name (filled once the statement is normalized).
    template: str = ""
    #: How the request was served — the cache-hit class: ``result_cache``,
    #: ``coalesced``, ``validated_reuse``, ``reuse``, ``replan``, ``fresh``
    #: or a ``scatter_*`` mode on the sharded coordinator.  Empty while in
    #: flight and for shed requests.
    source: str = ""
    #: ``ok``, or how the request failed: ``shed`` (admission queue full),
    #: ``timeout`` (admission/coalesce deadline expired).
    outcome: str = "ok"
    #: Seconds spent waiting for an execution slot (admission queue), or for
    #: a coalesced leader's published result.
    queue_wait_s: float = 0.0
    #: Seconds the sampling validator spent guarding the cached plan.
    validation_s: float = 0.0
    #: Seconds inside Algorithm 1 (fresh plan or drift replan).
    planning_s: float = 0.0
    #: Seconds executing the join pipeline (scatter fragments included).
    execution_s: float = 0.0
    #: Seconds merging/finalizing: canonical-order sort + final
    #: projection/aggregation stage (single node), or the coordinator's
    #: partial/gather merge (sharded).
    merge_s: float = 0.0
    #: End-to-end service-side latency (every stage plus overhead).
    total_s: float = 0.0
    #: Monotonic stamp at which the service started handling the request.
    started_s: float = 0.0

    @property
    def accounted_s(self) -> float:
        """Seconds attributed to a named stage."""
        return (
            self.queue_wait_s
            + self.validation_s
            + self.planning_s
            + self.execution_s
            + self.merge_s
        )

    @property
    def overhead_s(self) -> float:
        """Latency not attributed to any stage (dispatch, caches, locks)."""
        return max(0.0, self.total_s - self.accounted_s)

    def stage_seconds(self) -> Dict[str, float]:
        """Stage → seconds, in :data:`STAGE_FIELDS` order."""
        return {stage: float(getattr(self, stage)) for stage in STAGE_FIELDS}
