"""The service's two caches: results and validated plans.

**Result cache** — a bounded LRU keyed on ``(template fingerprint, binding
key, table-epoch snapshot)``.  The epoch snapshot
(:meth:`repro.storage.catalog.Database.epoch_snapshot`) is part of the key,
so invalidation is free: bumping any referenced table's epoch makes every
later lookup miss, and the stale lines age out through the LRU bound.  An
explicit ``invalidate_table`` sweep is provided for callers that want the
memory back immediately.

**Plan cache** — one :class:`PlanCacheEntry` per template, holding the plan
Algorithm 1 converged to for some binding, the Γ *expectations* it was
validated under (join set → sampled cardinality) and the planning session
that produced it.  The entry is what the sampling validator guards: a new
binding's Δ is compared against ``expectations`` and the plan is reused only
while the drift stays under the service's threshold.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

# Note: per-template serialization of validation/replan lives in the
# service's ``_template_locks`` map, not on the entries themselves.

from repro.cardinality.gamma import Gamma, JoinSet
from repro.executor.executor import ExecutionResult
from repro.optimizer.optimizer import PlanningSession
from repro.plans.nodes import PlanNode
from repro.sql.ast import Query


@dataclass
class ResultCacheStats:
    """Hit/miss/eviction counters of the result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0


class ResultCache:
    """Bounded LRU of executed results, epoch-stamped against staleness."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max(0, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, ExecutionResult]" = OrderedDict()
        self.stats = ResultCacheStats()

    @staticmethod
    def key(template_fingerprint: Tuple, binding: Tuple, epochs: Tuple) -> Tuple:
        return (template_fingerprint, binding, epochs)

    def get(self, key: Tuple) -> Optional[ExecutionResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Tuple, result: ExecutionResult) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every line whose epoch snapshot mentions ``table``.

        Epoch-stamped keys make this optional for correctness (a bumped
        epoch can never be hit again); sweeping reclaims the memory now.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if any(name == table for name, _ in key[2])
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class PlanCacheEntry:
    """The cached, sampling-guarded plan of one prepared template."""

    #: The plan Algorithm 1 converged to for ``bound_query``'s bindings.
    plan: PlanNode
    #: The bound query the plan was produced for (the *reference* binding).
    bound_query: Query
    #: Γ expectations the plan was validated under: join set → sampled
    #: cardinality at planning time.  The drift guard compares each new
    #: binding's sampled Δ against these.
    expectations: Dict[JoinSet, float] = field(default_factory=dict)
    #: The incremental planning session that produced (and re-plans) the
    #: template's plans; kept so GEQO templates carry their winning join
    #: order across bindings (see ``PlanningSession.rebind``).
    session: Optional[PlanningSession] = None
    #: Exact cardinalities gossiped in from sibling shards of a
    #: :class:`~repro.service.coordinator.ShardedQueryService`.  Hash
    #: partitioning keeps shards statistically symmetric, so one shard's
    #: *executed* join-set cardinality is the best available estimate for
    #: its siblings: the gossip both corrects ``expectations`` (the drift
    #: guard compares against gossiped truth instead of a stale sample) and
    #: warm-starts the next replan's Γ with exact-provenance entries.
    gossip: Gamma = field(default_factory=Gamma)
    #: How many executions reused this plan (validated or unguarded).
    reuses: int = 0
    #: How many binding validations ran against the entry.
    validations: int = 0
    #: How many validations rejected the plan (drift → replan).
    rejections: int = 0


def max_drift(
    expectations: Dict[JoinSet, float],
    observed: Dict[JoinSet, float],
) -> float:
    """The largest deviation factor between expected and observed Δ entries.

    Deviation is the symmetric ratio ``max(e, o) / min(e, o)`` with both
    sides floored at one row (1.0 = spot on, like the adaptive executor's
    :func:`~repro.reopt.adaptive.deviation_factor`).  Join sets present in
    only one of the two mappings are skipped — an unvalidatable join set
    (no sample support) must not force a replan by itself.
    """
    worst = 1.0
    for join_set, observed_value in observed.items():
        expected_value = expectations.get(join_set)
        if expected_value is None:
            continue
        expected = max(float(expected_value), 1.0)
        actual = max(float(observed_value), 1.0)
        worst = max(worst, max(expected, actual) / min(expected, actual))
    return worst
