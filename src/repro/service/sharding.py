"""Hash partitioning of stored tables across in-process service shards.

The sharded service splits a :class:`~repro.storage.catalog.Database` into
``N`` catalog slices.  Tables named in a :class:`ShardingSpec` are
*partitioned*: each row goes to the shard selected by a deterministic hash
of its partition-column value.  Every other table is *replicated*: all
shards share the very same (immutable) :class:`~repro.storage.table.Table`
object, so replication costs no memory.  Co-partitioning is what makes
scatter-gather correct — when two partitioned tables hash on the columns an
equi-join connects them by (TPC-H ``lineitem.l_orderkey`` =
``orders.o_orderkey``), every join match lives inside one shard and the
sharded join result is the disjoint union of the per-shard joins.

Hashing is deterministic across processes and runs: integers go through a
SplitMix64-style bit mixer, strings through a 64-bit FNV-1a over their
UTF-8 bytes — never Python's builtin ``hash`` (randomized per process by
``PYTHONHASHSEED``).  Dictionary-encoded string columns hash each distinct
dictionary value once and fan the result out through the codes.

The module also owns the routing analysis (:func:`route_query`) deciding
whether a query can scatter at all, and the process-wide shard registry the
scatter workers read: shard databases are registered *before* the
coordinator's process pool spawns, so fork-started workers inherit them by
copy-on-write instead of pickling catalogs through the task queue.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.relalg.encoding import ColumnData, DictEncodedArray
from repro.sql.ast import Query
from repro.storage.catalog import Database

__all__ = [
    "ShardRouting",
    "ShardingSpec",
    "exact_partial_columns",
    "hash_partition",
    "lookup_shard",
    "register_shards",
    "route_query",
    "shard_database",
    "unregister_shards",
]


# --------------------------------------------------------------------------- #
# Deterministic hashing
# --------------------------------------------------------------------------- #
def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: scatter 64-bit keys uniformly (vectorized).

    Sequential keys (TPC-H orderkeys) would otherwise land on shards in
    runs; the mixer makes ``key % num_shards`` behave like a uniform hash.
    """
    mixed = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        mixed ^= mixed >> np.uint64(30)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(27)
        mixed *= np.uint64(0x94D049BB133111EB)
        mixed ^= mixed >> np.uint64(31)
    return mixed


def _fnv1a64(text: str) -> int:
    """64-bit FNV-1a of the UTF-8 bytes — stable across processes and runs."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def hash_partition(column: ColumnData, num_shards: int) -> np.ndarray:
    """Shard id of every row, from a deterministic hash of ``column``.

    Integer columns go through the SplitMix64 mixer; dictionary-encoded
    string columns hash each *dictionary* value once with FNV-1a and map
    the hashes through the codes.  Float columns are rejected — a float is
    not a partition key (equality on floats is not a join contract the
    schema supports sharding on).
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if isinstance(column, DictEncodedArray):
        hashes = np.fromiter(
            (_fnv1a64(str(value)) for value in column.dictionary),
            dtype=np.uint64,
            count=len(column.dictionary),
        )
        mixed = hashes[column.codes]
    else:
        array = np.asarray(column)
        if array.dtype.kind not in ("i", "u"):
            raise ValueError(
                f"partition column must be int or str, got dtype {array.dtype}"
            )
        mixed = _mix64(array)
    return (mixed % np.uint64(num_shards)).astype(np.int64)


# --------------------------------------------------------------------------- #
# The sharding spec and catalog slicing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardingSpec:
    """Which tables partition, and on which column.

    Tables absent from ``partitioned`` are replicated to every shard by
    reference.  Two partitioned tables are co-partitioned exactly when an
    equi-join on both partition columns connects them; :func:`route_query`
    only scatters queries whose partitioned aliases form one component
    under such joins.
    """

    #: table name → partition column.
    partitioned: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def tpch(cls) -> "ShardingSpec":
        """The TPC-H default: co-partition the two big tables on orderkey."""
        return cls(partitioned={"lineitem": "l_orderkey", "orders": "o_orderkey"})

    def validate_against(self, db: Database) -> None:
        """Fail fast when the spec names unknown tables/columns or a
        partition column that is not hash-partitionable."""
        for table_name in sorted(self.partitioned):
            column_name = self.partitioned[table_name]
            table = db.table(table_name)
            declaration = table.schema.column(column_name)
            if declaration.type not in ("int", "str"):
                raise ValueError(
                    f"partition column {table_name}.{column_name} has type "
                    f"{declaration.type!r}; only int/str columns partition"
                )


def shard_database(
    db: Database,
    num_shards: int,
    spec: ShardingSpec,
    *,
    sampling_ratio: float,
    sampling_seed: Optional[int],
) -> List[Database]:
    """Slice ``db`` into ``num_shards`` shard catalogs.

    Partitioned tables are split row-wise by :func:`hash_partition`
    (:meth:`~repro.storage.table.Table.take` keeps the parent's string
    dictionaries, so no re-encoding happens); replicated tables are shared
    by reference — :class:`~repro.storage.table.Table` is immutable.  Each
    shard gets its own ANALYZE statistics and sample tables, so per-shard
    planning sees per-shard data, and **no indexes** — shard plans stay
    sequential-scan shaped, which is what the scatter workers execute.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    spec.validate_against(db)
    shard_dbs = [
        Database(name=f"{db.name}.shard{index}") for index in range(num_shards)
    ]
    for table_name in db.table_names():  # sorted: deterministic epochs
        table = db.table(table_name)
        partition_column = spec.partitioned.get(table_name)
        if partition_column is None or num_shards == 1:
            for shard_db in shard_dbs:
                shard_db.create_table(table)
            continue
        shard_ids = hash_partition(table.data_column(partition_column), num_shards)
        for index, shard_db in enumerate(shard_dbs):
            rows = np.flatnonzero(shard_ids == index)
            shard_db.create_table(table.take(rows))
    for shard_db in shard_dbs:
        shard_db.analyze()
        shard_db.create_samples(ratio=sampling_ratio, seed=sampling_seed)
    return shard_dbs


# --------------------------------------------------------------------------- #
# Routing analysis
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardRouting:
    """How one query executes against the shards.

    ``scatter``
        Every partitioned alias is connected to the others through
        partition-column equi-joins: run on all shards, merge partials.
    ``single``
        The query touches replicated tables only — every shard holds
        identical copies, so shard 0 alone answers it exactly.
    ``fallback``
        The query joins partitioned tables off their partition columns
        (matches would cross shards): serve it from the unsharded catalog.
    """

    mode: str
    reason: str


def route_query(query: Query, spec: ShardingSpec) -> ShardRouting:
    """Decide scatter / single / fallback for one bound query."""
    partitioned = [
        alias
        for alias in query.aliases
        if query.table_for_alias(alias) in spec.partitioned
    ]
    if not partitioned:
        return ShardRouting(
            mode="single", reason="replicated tables only; shard 0 is exact"
        )
    adjacency: Dict[str, Set[str]] = {alias: set() for alias in partitioned}
    for predicate in query.join_predicates:
        left, right = predicate.left_alias, predicate.right_alias
        if left not in adjacency or right not in adjacency:
            continue
        left_key = spec.partitioned[query.table_for_alias(left)]
        right_key = spec.partitioned[query.table_for_alias(right)]
        if predicate.left_column == left_key and predicate.right_column == right_key:
            adjacency[left].add(right)
            adjacency[right].add(left)
    start = sorted(adjacency)[0]
    reached = {start}
    frontier = [start]
    while frontier:
        alias = frontier.pop()
        for neighbor in sorted(adjacency[alias]):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    unreached = sorted(set(adjacency) - reached)
    if unreached:
        return ShardRouting(
            mode="fallback",
            reason=(
                "partitioned aliases not co-partitioned by the join graph: "
                + ", ".join(unreached)
            ),
        )
    return ShardRouting(mode="scatter", reason="co-partitioned equi-join subgraph")


def exact_partial_columns(db: Database, query: Query) -> AbstractSet[Tuple[Optional[str], Optional[str]]]:
    """The aggregate input columns whose partial sums compose exactly.

    Integer-typed columns sum exactly in any shard order (int64 sums, and
    float64 holds integer-valued sums exactly below 2**53 — the engine's
    aggregation dtype); float columns do not, and their queries take the
    gather path instead.  The result feeds
    :func:`repro.relalg.aggregate.partial_merge_exact`.
    """
    exact: Set[Tuple[Optional[str], Optional[str]]] = set()
    for aggregate in query.aggregates:
        if aggregate.alias is None or aggregate.column is None:
            continue
        table = db.table(query.table_for_alias(aggregate.alias))
        if table.schema.column(aggregate.column).type == "int":
            exact.add((aggregate.alias, aggregate.column))
    return exact


# --------------------------------------------------------------------------- #
# The process-wide shard registry (scatter-worker side)
# --------------------------------------------------------------------------- #
#: Registered shard sets, keyed by coordinator token.  Populated *before*
#: the coordinator's process pool spawns: fork-started workers inherit the
#: mapping (and the immutable shard catalogs behind it) by copy-on-write.
_SHARD_REGISTRY: Dict[str, Tuple[Database, ...]] = {}
_REGISTRY_LOCK = threading.Lock()
_REGISTRY_COUNTER = itertools.count()


def register_shards(name: str, shard_dbs: List[Database]) -> str:
    """Publish a shard set under a fresh token; returns the token."""
    with _REGISTRY_LOCK:
        token = f"{name}#{next(_REGISTRY_COUNTER)}"
        _SHARD_REGISTRY[token] = tuple(shard_dbs)
    return token


def lookup_shard(token: str, shard_id: int) -> Optional[Database]:
    """The registered shard catalog, or ``None`` in a worker that never
    inherited the registration (spawn start method, or a pool forked before
    the coordinator registered) — the caller falls back to inline
    execution in the coordinator process."""
    with _REGISTRY_LOCK:
        shard_dbs = _SHARD_REGISTRY.get(token)
    if shard_dbs is None or not 0 <= shard_id < len(shard_dbs):
        return None
    return shard_dbs[shard_id]


def unregister_shards(token: str) -> None:
    """Drop a shard set (coordinator close)."""
    with _REGISTRY_LOCK:
        _SHARD_REGISTRY.pop(token, None)


def replicated_tables(db: Database, spec: ShardingSpec) -> List[str]:
    """Names of the tables every shard shares by reference, sorted."""
    return [name for name in db.table_names() if name not in spec.partitioned]


def partitioned_tables(db: Database, spec: ShardingSpec) -> List[str]:
    """Names of the hash-partitioned tables present in ``db``, sorted."""
    return [name for name in db.table_names() if name in spec.partitioned]
