"""The long-lived query service.

:class:`QueryService` turns the reproduction from a batch harness into a
server: it accepts SQL with ``?`` / ``:name`` placeholders (or
:class:`~repro.sql.builder.QueryBuilder` templates), normalizes each
statement into a fingerprinted template, and serves executions through three
layers, outermost first:

1. **Result cache** — ``(template, bindings, table epochs)`` → executed
   rows.  Epoch-stamped keys make data changes self-invalidating (see
   :meth:`~repro.storage.catalog.Database.epoch_snapshot`).
2. **Sampling-validated plan cache** — one plan per template, produced by
   Algorithm 1 for the first binding.  Each later binding *validates* the
   cached plan by running the paper's sampling estimator over the new
   bindings' filtered samples (the validator repurposed as a plan-cache
   guard): if the observed Δ stays within ``drift_threshold`` of the Γ
   expectations the plan was chosen under, the plan is reused at zero
   planning cost; otherwise the template is re-planned through
   Algorithm 1, warm-started with the fresh Δ, through the template's
   incremental :class:`~repro.optimizer.optimizer.PlanningSession`.
3. **Admission control** — a bounded, client-fair gate
   (:class:`~repro.service.admission.AdmissionController`) in front of the
   shared morsel pool, shedding load with
   :class:`~repro.service.admission.BackpressureError` instead of queueing
   without bound.

Results are **plan-independent bit-identical**: order-sensitive outputs
(bare projections, float ``SUM``/``AVG``) are produced from the join
pipeline's rows in canonical full-column order — the same mechanism the
adaptive executor uses — so a validated reuse, a drift replan and a
from-scratch run of the same bound query return byte-identical relations
even when their join orders differ.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.bench.clock import monotonic_s
from repro.cardinality.gamma import Gamma
from repro.cardinality.sampling_estimator import validate_plan_for_bindings
from repro.executor.executor import (
    ExecutionResult,
    Executor,
    required_columns,
)
from repro.executor.materialization import IntermediateRegistry, canonicalize_relation
from repro.cost.model import CostModel, ResourceVector
from repro.optimizer.optimizer import Optimizer, PlanningSession
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import rebind_plan
from repro.plans.nodes import AggregateNode, MaterializedNode, PlanNode
from repro.relalg import DEFAULT_MORSEL_ROWS, Relation, TaskScheduler
from repro.relalg.scheduler import SchedulerStats
from repro.reopt.adaptive import needs_canonical_order
from repro.reopt.algorithm import ReoptimizationResult, ReoptimizationSettings, Reoptimizer
from repro.service.admission import AdmissionController, AdmissionStats, BackpressureError
from repro.service.cache import PlanCacheEntry, ResultCache, ResultCacheStats, max_drift
from repro.service.templates import PreparedStatement, StatementRegistry
from repro.service.tracing import RequestTrace
from repro.sql.ast import Bindings, Query
from repro.storage.catalog import Database

__all__ = [
    "QueryService",
    "ServiceResult",
    "ServiceSettings",
    "ServiceStats",
    "combine_execution_accounting",
    "finalize_canonical_execution",
    "split_final_aggregate",
]


@dataclass(frozen=True)
class ServiceSettings:
    """Policy knobs of the query service."""

    #: Largest deviation factor (``max(expected, observed) / min(...)``, both
    #: floored at one row) a cached plan survives: a new binding whose sampled
    #: cardinalities drift further triggers a replan.  The default tolerates
    #: the sampling noise of unchanged workloads while catching the
    #: order-of-magnitude shifts that flip join orders.
    drift_threshold: float = 4.0
    #: Validate cached plans against each new binding's samples.  ``False``
    #: is the unguarded plan cache every classical prepared-statement system
    #: ships — kept as an ablation/regression knob, not a recommendation.
    validate_cached_plans: bool = True
    #: Reuse plans across bindings of one template at all.
    use_plan_cache: bool = True
    #: Serve repeated (template, bindings, epochs) from the result cache.
    use_result_cache: bool = True
    #: Bound of the result cache (entries).
    result_cache_entries: int = 256
    #: Bound of the per-template plan cache (LRU; an evicted template is
    #: simply re-planned on its next execution).  Each entry retains a
    #: planning session, so the bound caps memory in a long-lived server fed
    #: ad-hoc constant-only SQL (one template per distinct literal set).
    plan_cache_entries: int = 128
    #: Bound of the prepared-statement registry (LRU, re-prepared on miss).
    statement_registry_entries: int = 1024
    #: Concurrent executions admitted onto the morsel pool.
    max_concurrent: int = 8
    #: Callers allowed to wait for a slot before load shedding kicks in.
    max_queued: int = 64
    #: Optional cap (seconds) a caller waits for admission.
    admission_timeout: Optional[float] = None
    #: Workers of the service-owned morsel scheduler (ignored when a shared
    #: scheduler is passed in).  ``"auto"`` sizes by the host — ``min(cores
    #: - 2, RAM / 4GB)``, floor 1 (``relalg.scheduler.default_worker_count``).
    workers: Union[int, str] = 1
    #: Morsel size for the executor and validator kernels.
    morsel_rows: int = DEFAULT_MORSEL_ROWS


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`QueryService`."""

    queries: int = 0
    #: Executions answered entirely from the result cache.
    result_cache_hits: int = 0
    #: Executions coalesced onto an identical in-flight execution
    #: (singleflight): the waiter reused the leader's result without
    #: planning, validating or executing anything itself.
    coalesced: int = 0
    #: Executions that found a cached plan for their template.
    plan_cache_hits: int = 0
    #: ... of which the sampling validator confirmed the plan for the new
    #: bindings (reuse at zero planning cost).
    validated_reuses: int = 0
    #: ... of which reused the plan *without* validation (guard disabled).
    unguarded_reuses: int = 0
    #: ... of which the validator rejected: drift beyond threshold, replanned.
    drift_replans: int = 0
    #: Executions that planned their template from scratch (first binding).
    fresh_plans: int = 0
    #: Requests shed by admission control.
    rejected: int = 0
    #: Exact Γ entries merged in from sibling shards (sharded serving only;
    #: see :meth:`QueryService.apply_gamma_gossip`).
    gossip_entries: int = 0
    #: Wall-clock seconds spent validating cached plans over samples.
    validation_seconds: float = 0.0
    #: Wall-clock seconds spent inside Algorithm 1 (fresh plans + replans).
    planning_seconds: float = 0.0


@dataclass
class ServiceResult:
    """One served execution."""

    statement: PreparedStatement
    query: Query
    execution: ExecutionResult
    plan: PlanNode
    #: How the plan was obtained: ``result_cache`` (no execution at all),
    #: ``validated_reuse``, ``reuse`` (unguarded), ``replan`` (drift) or
    #: ``fresh`` (first binding of the template).
    source: str
    #: Largest deviation factor the validator observed (``None`` when no
    #: validation ran for this execution).
    drift: Optional[float] = None
    validation_seconds: float = 0.0
    planning_seconds: float = 0.0
    #: Total service-side latency (admission wait included).
    wall_seconds: float = 0.0
    #: Per-stage latency accounting of this request (queue wait, validation,
    #: planning, execution, merge) on the shared monotonic clock.
    trace: Optional[RequestTrace] = None

    @property
    def num_rows(self) -> int:
        return self.execution.num_rows

    @property
    def columns(self) -> Relation:
        return self.execution.columns


def split_final_aggregate(plan: PlanNode) -> Tuple[PlanNode, Optional[AggregateNode]]:
    """Split ``plan`` into its join pipeline and the final aggregate, if any."""
    if isinstance(plan, AggregateNode):
        if plan.child is None:
            raise ValueError("aggregate node is missing its input")
        return plan.child, plan
    return plan, None


def finalize_canonical_execution(
    executor: Executor,
    registry: IntermediateRegistry,
    query: Query,
    relation: Relation,
    aggregate_node: Optional[AggregateNode],
    source_signature: str,
) -> ExecutionResult:
    """Run the output stage of ``query`` over a canonical-order relation.

    ``relation`` is the full join result in canonical full-column order
    (:func:`~repro.executor.materialization.canonicalize_relation`) —
    produced locally by :meth:`QueryService._execute_plan`, or merged from
    shard fragments by the sharded coordinator.  It is stored in
    ``registry`` (which must be the ``executor``'s intermediate registry)
    and the final projection/aggregation runs over a materialized leaf, so
    the output bytes depend only on the relation's rows, never on the plan
    that produced them.
    """
    full_set = frozenset(query.aliases)
    registry.store(full_set, relation, source_signature=source_signature)
    final_plan: PlanNode = MaterializedNode(
        relations=full_set,
        estimated_rows=float(relation.num_rows),
        estimated_cost=0.0,
    )
    if aggregate_node is not None:
        final_plan = replace(aggregate_node, child=final_plan)
    return executor.execute_plan(final_plan, query)


def combine_execution_accounting(
    parts: Sequence[ExecutionResult],
    final: ExecutionResult,
    cost_model: CostModel,
) -> ExecutionResult:
    """Merge fragment executions with the final stage into one result.

    The combined result reports the final stage's rows, the concatenation
    of every part's per-node instrumentation (parts first, in the given
    order), resources and simulated cost summed across all of it, and
    ``wall_seconds`` as total *work* (the sum), not elapsed time.
    """
    node_executions = [
        execution for part in parts for execution in part.node_executions
    ]
    node_executions.extend(final.node_executions)
    total = ResourceVector()
    for execution in node_executions:
        total = total + execution.resources
    merged = ExecutionResult(
        columns=final.columns,
        num_rows=final.num_rows,
        node_executions=node_executions,
    )
    merged.actual_resources = total
    merged.simulated_cost = cost_model.cost(total)
    merged.wall_seconds = (
        sum(part.wall_seconds for part in parts) + final.wall_seconds
    )
    return merged


class QueryService:
    """Serve prepared, parameterized queries against one database."""

    def __init__(
        self,
        db: Database,
        optimizer_settings: Optional[OptimizerSettings] = None,
        reopt_settings: Optional[ReoptimizationSettings] = None,
        settings: Optional[ServiceSettings] = None,
        scheduler: Optional[TaskScheduler] = None,
    ) -> None:
        self.db = db
        self.settings = settings if settings is not None else ServiceSettings()
        self.reopt_settings = (
            reopt_settings if reopt_settings is not None else ReoptimizationSettings()
        )
        self.optimizer = Optimizer(db, settings=optimizer_settings)
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            scheduler
            if scheduler is not None
            else TaskScheduler(workers=self.settings.workers, name="service")
        )
        if db.samples is None:
            db.create_samples(
                ratio=self.reopt_settings.sampling_ratio,
                seed=self.reopt_settings.sampling_seed,
            )
        self.statements = StatementRegistry(
            max_entries=self.settings.statement_registry_entries
        )
        self._samples_lock = threading.Lock()
        self.result_cache = ResultCache(max_entries=self.settings.result_cache_entries)
        self.admission = AdmissionController(
            max_concurrent=self.settings.max_concurrent,
            max_queued=self.settings.max_queued,
        )
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        #: Template fingerprint → cached plan entry, LRU-bounded by
        #: ``settings.plan_cache_entries``.  Guarded by ``_plan_cache_guard``
        #: for structure; per-template *work* (validation, replanning) is
        #: serialized by the `_template_locks` map instead, so distinct
        #: templates plan concurrently.
        self._plan_cache: "OrderedDict[Tuple, PlanCacheEntry]" = OrderedDict()
        self._plan_cache_guard = threading.Lock()
        self._template_locks: Dict[Tuple, threading.Lock] = {}
        self._template_locks_guard = threading.Lock()
        #: Singleflight: result-cache key → event the in-flight leader sets
        #: once the result is published.  Guarded by ``_in_flight_guard``.
        self._in_flight: Dict[Tuple, threading.Event] = {}
        self._in_flight_guard = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the service (terminal): park the owned scheduler's workers."""
        self._closed = True
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def prepare(
        self, statement: Union[str, Query, PreparedStatement], name: Optional[str] = None
    ) -> PreparedStatement:
        """Normalize and register a prepared statement (idempotent)."""
        return self.statements.register(statement, name=name)

    def execute(
        self,
        statement: Union[str, Query, PreparedStatement],
        params: Optional[Bindings] = None,
        client: str = "default",
        trace: Optional[RequestTrace] = None,
    ) -> ServiceResult:
        """Serve one execution of ``statement`` bound to ``params``.

        ``trace`` (optional) is filled with per-stage latency accounting —
        pass one in to keep it even when the request is shed; otherwise a
        fresh trace is created and attached to the returned result either
        way.

        Raises
        ------
        BackpressureError
            When admission control sheds the request (queue full/timeout).
        RuntimeError
            When the service was already closed.
        """
        if self._closed:
            raise RuntimeError("QueryService is closed")
        if trace is None:
            trace = RequestTrace(client=client)
        trace.client = client
        started = monotonic_s()
        trace.started_s = started
        prepared = self.prepare(statement)
        trace.template = prepared.name
        bound = prepared.bind(params)
        binding = prepared.binding_key(params)
        try:
            result = self._serve_coalesced(prepared, bound, binding, client, trace)
        except BackpressureError as error:
            trace.outcome = error.kind if error.kind in ("shed", "timeout") else "shed"
            trace.queue_wait_s += error.waited_s
            trace.total_s = monotonic_s() - started
            with self._stats_lock:
                self.stats.rejected += 1
            raise
        result.wall_seconds = monotonic_s() - started
        trace.source = result.source
        trace.validation_s = result.validation_seconds
        trace.planning_s = result.planning_seconds
        trace.total_s = result.wall_seconds
        result.trace = trace
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.validation_seconds += result.validation_seconds
            self.stats.planning_seconds += result.planning_seconds
        return result

    def invalidate_table(self, table: str) -> int:
        """Bump ``table``'s epoch and sweep its result-cache lines.

        Call after mutating a table's data in place; catalog-level changes
        (``create_table(replace=True)`` / ``drop_table``) bump the epoch on
        their own and only need the sweep for memory, not correctness.
        """
        self.db.bump_table_epoch(table)
        return self.result_cache.invalidate_table(table)

    def scheduler_stats(self) -> SchedulerStats:
        """Counters of the shared morsel scheduler."""
        return self.scheduler.stats()

    def admission_stats(self) -> AdmissionStats:
        """Backpressure counters (admitted/rejected/queue high-water).

        Returns an independent snapshot safe to iterate while requests are
        in flight.
        """
        return self.admission.stats_snapshot()

    def result_cache_stats(self) -> ResultCacheStats:
        return self.result_cache.stats

    def plan_cache_size(self) -> int:
        with self._plan_cache_guard:
            return len(self._plan_cache)

    def apply_gamma_gossip(self, fingerprint: Tuple, gossip: Gamma) -> int:
        """Merge sibling shards' exact Γ observations into a cached template.

        Called by the sharded coordinator after any shard executes the
        template: every *exact* entry of ``gossip`` is recorded into the
        entry's gossip Γ and overwrites the matching drift-guard
        expectation, so this shard's next validation compares its Δ against
        observed truth instead of the stale sample the plan was chosen
        under — and its next replan warm-starts from exact-provenance
        entries.  Hash partitioning keeps shards statistically symmetric,
        which is what makes a sibling's executed cardinality the best
        available estimate here.  Join sets are applied in canonical sorted
        order.  Returns the number of entries applied (0 when the template
        has no cached plan on this shard).
        """
        with self._template_lock(fingerprint):
            entry = self._plan_cache_get(fingerprint)
            if entry is None:
                return 0
            applied = 0
            for join_set in sorted(gossip.exact_join_sets(), key=sorted):
                value = gossip.get(join_set)
                if value is None:
                    continue
                entry.gossip.record(join_set, value, exact=True)
                entry.expectations[join_set] = float(value)
                applied += 1
        if applied:
            with self._stats_lock:
                self.stats.gossip_entries += applied
        return applied

    # ------------------------------------------------------------------ #
    # Serving pipeline
    # ------------------------------------------------------------------ #
    def _cached_result(
        self, prepared: PreparedStatement, bound: Query, cached: ExecutionResult, source: str
    ) -> ServiceResult:
        # The rows came from the cache, not from executing any current plan
        # (the template's cached plan may since have been replanned for a
        # different binding), so the reported plan is a materialized leaf —
        # "served as-is" — rather than a plan that never produced these rows.
        plan = MaterializedNode(
            relations=frozenset(bound.aliases),
            estimated_rows=float(cached.num_rows),
            estimated_cost=0.0,
        )
        return ServiceResult(
            statement=prepared, query=bound, execution=cached, plan=plan, source=source
        )

    def _serve_coalesced(
        self,
        prepared: PreparedStatement,
        bound: Query,
        binding: Tuple,
        client: str,
        trace: RequestTrace,
    ) -> ServiceResult:
        """Result cache → singleflight coalescing → admission → execution.

        The cache and coalescing layers run *before* admission: a request
        answered from the cache — or riding on an identical in-flight
        execution — consumes no execution slot at all.  Coalescing is what
        keeps a thundering herd of identical requests at one execution: the
        first becomes the leader, the rest wait on its event and read the
        published result; if the leader fails — planning/execution error,
        shed by admission, anything — its ``finally`` always deregisters the
        flight and releases the followers, each of which retries from the
        top (and one becomes the next leader).  A follower is never
        stranded on a dead leader's event and never poisoned by its error.
        """
        if not self.settings.use_result_cache:
            with self.admission.admit(
                client, timeout=self.settings.admission_timeout
            ) as queue_wait:
                trace.queue_wait_s += queue_wait
                return self._serve(prepared, bound, binding, trace)

        while True:
            epochs = self.db.epoch_snapshot(prepared.tables)
            cache_key = ResultCache.key(prepared.fingerprint, binding, epochs)
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                with self._stats_lock:
                    self.stats.result_cache_hits += 1
                return self._cached_result(prepared, bound, cached, "result_cache")

            with self._in_flight_guard:
                event = self._in_flight.get(cache_key)
                leader = event is None
                if leader:
                    event = threading.Event()
                    self._in_flight[cache_key] = event
            if leader:
                # Nothing may run between registering the flight and this
                # try: the finally below is the *only* thing standing
                # between a crashed leader and stranded followers.
                try:
                    with self.admission.admit(
                        client, timeout=self.settings.admission_timeout
                    ) as queue_wait:
                        trace.queue_wait_s += queue_wait
                        return self._serve(prepared, bound, binding, trace)
                finally:
                    with self._in_flight_guard:
                        self._in_flight.pop(cache_key, None)
                    event.set()

            # Follower: ride on the leader's in-flight execution.  The
            # admission_timeout cap applies to coalesced waiters too: a
            # leader stuck in a long queue must not hold its followers past
            # the latency bound they were configured with.
            wait_started = monotonic_s()
            released = event.wait(timeout=self.settings.admission_timeout)
            waited = monotonic_s() - wait_started
            if not released:
                # waited_s travels on the error; execute() charges it to the
                # trace's queue-wait stage exactly once.
                raise BackpressureError(
                    f"client {client!r} timed out waiting for a coalesced "
                    "in-flight execution",
                    kind="timeout",
                    waited_s=waited,
                )
            trace.queue_wait_s += waited
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                with self._stats_lock:
                    self.stats.coalesced += 1
                return self._cached_result(prepared, bound, cached, "coalesced")
            continue  # leader failed or epochs moved: retry from the top

    def _ensure_samples(self) -> None:
        """Recreate sample tables if a catalog change dropped them.

        ``create_table(replace=True)`` invalidates ``db.samples`` (they
        described the old rows); the validation path runs *before* any
        ``Reoptimizer`` (which recreates them lazily), so the service must
        restore samples itself or every cached template would fail with
        ``SamplingError`` after a data change.
        """
        if self.db.samples is None:
            with self._samples_lock:
                if self.db.samples is None:
                    self.db.create_samples(
                        ratio=self.reopt_settings.sampling_ratio,
                        seed=self.reopt_settings.sampling_seed,
                    )

    def _serve(
        self,
        prepared: PreparedStatement,
        bound: Query,
        binding: Tuple,
        trace: Optional[RequestTrace] = None,
    ) -> ServiceResult:
        """Plan (through the guarded cache) and execute one admitted request."""
        self._ensure_samples()
        # Snapshot the epochs *before* executing: the result is published
        # under the data version it started from, so a concurrent epoch bump
        # can never stamp stale rows with the new version.
        epochs = self.db.epoch_snapshot(prepared.tables)
        plan, source, drift, validation_seconds, planning_seconds = self._plan_for(
            prepared, bound
        )
        execution = self._execute_plan(plan, bound, trace=trace)
        if self.settings.use_result_cache:
            self.result_cache.put(
                ResultCache.key(prepared.fingerprint, binding, epochs), execution
            )
        return ServiceResult(
            statement=prepared,
            query=bound,
            execution=execution,
            plan=plan,
            source=source,
            drift=drift,
            validation_seconds=validation_seconds,
            planning_seconds=planning_seconds,
        )

    # ------------------------------------------------------------------ #
    # Layer 2: the sampling-validated plan cache
    # ------------------------------------------------------------------ #
    def _template_lock(self, fingerprint: Tuple) -> threading.Lock:
        with self._template_locks_guard:
            lock = self._template_locks.get(fingerprint)
            if lock is None:
                lock = threading.Lock()
                self._template_locks[fingerprint] = lock
            needs_prune = len(self._template_locks) > 2 * max(
                1, self.settings.plan_cache_entries
            )
        if needs_prune:
            # Templates whose planning *failed* never reach _plan_cache_put,
            # so eviction-based cleanup misses their locks; sweep locks with
            # no cache entry here.  The guards are taken sequentially (never
            # nested) to keep a single lock order with _plan_cache_put.
            with self._plan_cache_guard:
                cached = set(self._plan_cache)
            with self._template_locks_guard:
                stale = [
                    fp
                    for fp, stale_lock in self._template_locks.items()
                    if fp not in cached and fp != fingerprint and not stale_lock.locked()
                ]
                for fp in stale:
                    del self._template_locks[fp]
        return lock

    def _plan_cache_get(self, fingerprint: Tuple) -> Optional[PlanCacheEntry]:
        with self._plan_cache_guard:
            entry = self._plan_cache.get(fingerprint)
            if entry is not None:
                self._plan_cache.move_to_end(fingerprint)
            return entry

    def _plan_cache_put(self, fingerprint: Tuple, entry: PlanCacheEntry) -> None:
        evicted = []
        with self._plan_cache_guard:
            self._plan_cache[fingerprint] = entry
            self._plan_cache.move_to_end(fingerprint)
            while len(self._plan_cache) > max(1, self.settings.plan_cache_entries):
                evicted_fp, _ = self._plan_cache.popitem(last=False)
                evicted.append(evicted_fp)
        if evicted:
            # Drop the evicted templates' locks too, or the lock map would
            # grow unbounded with the (evicted) fingerprints.  A thread
            # currently holding such a lock simply finishes; the template is
            # re-planned under a fresh lock on its next execution.
            with self._template_locks_guard:
                for evicted_fp in evicted:
                    self._template_locks.pop(evicted_fp, None)

    def _plan_for(
        self, prepared: PreparedStatement, bound: Query
    ) -> Tuple[PlanNode, str, Optional[float], float, float]:
        """Return ``(plan, source, drift, validation_seconds, planning_seconds)``."""
        if not self.settings.use_plan_cache:
            planning_started = monotonic_s()
            result = self._run_algorithm1(bound, session=None, gamma=None)
            planning_seconds = monotonic_s() - planning_started
            with self._stats_lock:
                self.stats.fresh_plans += 1
            return result.final_plan, "fresh", None, 0.0, planning_seconds

        with self._template_lock(prepared.fingerprint):
            entry = self._plan_cache_get(prepared.fingerprint)
            if entry is None:
                planning_started = monotonic_s()
                session = self.optimizer.planning_session(bound)
                result = self._run_algorithm1(bound, session=session, gamma=None)
                planning_seconds = monotonic_s() - planning_started
                self._plan_cache_put(
                    prepared.fingerprint,
                    PlanCacheEntry(
                        plan=result.final_plan,
                        bound_query=bound,
                        expectations=dict(result.gamma.items()),
                        session=session,
                    ),
                )
                with self._stats_lock:
                    self.stats.fresh_plans += 1
                return result.final_plan, "fresh", None, 0.0, planning_seconds

            with self._stats_lock:
                self.stats.plan_cache_hits += 1

            if not self.settings.validate_cached_plans:
                entry.reuses += 1
                with self._stats_lock:
                    self.stats.unguarded_reuses += 1
                return rebind_plan(entry.plan, bound), "reuse", None, 0.0, 0.0

            # The paper's validator as a plan-cache guard: sample the cached
            # plan's join sets under the *new* bindings and compare with the
            # Γ expectations the plan was chosen under.  The plan itself is
            # *rebound* first — its scans must filter on the new constants
            # (the shape is cached, the literals are per-execution).
            rebound = rebind_plan(entry.plan, bound)
            _, validation = validate_plan_for_bindings(
                self.db,
                bound,
                None,
                rebound,
                scheduler=self.scheduler,
                validate_base_relations=self.reopt_settings.validate_base_relations,
                morsel_rows=self.settings.morsel_rows,
            )
            entry.validations += 1
            drift = max_drift(entry.expectations, validation.cardinalities)
            if drift <= self.settings.drift_threshold:
                entry.reuses += 1
                with self._stats_lock:
                    self.stats.validated_reuses += 1
                return rebound, "validated_reuse", drift, validation.elapsed_seconds, 0.0

            # Drift: the cached plan's cardinality assumptions no longer hold
            # for these bindings.  Re-plan through Algorithm 1, warm-started
            # with the Δ just sampled (those join sets are already validated),
            # through the template's rebound planning session.
            entry.rejections += 1
            planning_started = monotonic_s()
            gamma = Gamma()
            # Sibling-shard exact observations first, the fresh Δ second:
            # exact provenance survives the sampled merge (a sampled value
            # never downgrades an exact one), and join sets only the gossip
            # covers still seed the replan.
            gamma.merge(entry.gossip)
            gamma.merge(validation.cardinalities)
            session = (
                entry.session.rebind(bound) if entry.session is not None else None
            )
            result = self._run_algorithm1(bound, session=session, gamma=gamma)
            planning_seconds = monotonic_s() - planning_started
            entry.plan = result.final_plan
            entry.bound_query = bound
            entry.expectations = dict(result.gamma.items())
            with self._stats_lock:
                self.stats.drift_replans += 1
            return (
                result.final_plan,
                "replan",
                drift,
                validation.elapsed_seconds,
                planning_seconds,
            )

    def _run_algorithm1(
        self,
        bound: Query,
        session: Optional[PlanningSession],
        gamma: Optional[Gamma],
    ) -> ReoptimizationResult:
        reoptimizer = Reoptimizer(
            self.db,
            optimizer=self.optimizer,
            settings=self.reopt_settings,
            scheduler=self.scheduler,
        )
        return reoptimizer.reoptimize(bound, gamma=gamma, session=session)

    # ------------------------------------------------------------------ #
    # Plan-independent deterministic execution
    # ------------------------------------------------------------------ #
    def _make_executor(self, registry: Optional[IntermediateRegistry] = None) -> Executor:
        return Executor(
            self.db,
            cost_units=self.optimizer.settings.cost_units,
            scheduler=self.scheduler,
            morsel_rows=self.settings.morsel_rows,
            nested_loop_block_elements=self.optimizer.settings.nested_loop_block_elements,
            intermediates=registry,
        )

    def _execute_plan(
        self, plan: PlanNode, query: Query, trace: Optional[RequestTrace] = None
    ) -> ExecutionResult:
        """Execute ``plan`` with plan-independent output determinism.

        Order-insensitive outputs (``COUNT``/``MIN``/``MAX`` aggregates with
        sorted group keys) run straight through the executor.  Order-
        sensitive outputs (bare projections, float ``SUM``/``AVG``) pass the
        join pipeline's rows through a canonical full-column sort before the
        output (or aggregation) stage, so any two correct plans of the same
        bound query — cached, replanned, or from scratch — produce
        byte-identical results.

        When a ``trace`` is given, the join pipeline is charged to its
        ``execution_s`` stage and the canonical sort + final stage to
        ``merge_s``.
        """
        if not needs_canonical_order(query):
            started = monotonic_s()
            result = self._make_executor().execute_plan(plan, query)
            if trace is not None:
                trace.execution_s += monotonic_s() - started
            return result

        join_plan, aggregate_node = split_final_aggregate(plan)
        registry = IntermediateRegistry()
        executor = self._make_executor(registry)
        required = required_columns(plan, query)
        started = monotonic_s()
        fragment = executor.execute_fragment(join_plan, required)
        executed = monotonic_s()
        relation = canonicalize_relation(fragment.columns)
        final_execution = finalize_canonical_execution(
            executor,
            registry,
            query,
            relation,
            aggregate_node,
            source_signature=join_plan.signature(),
        )
        if trace is not None:
            trace.execution_s += executed - started
            trace.merge_s += monotonic_s() - executed
        return combine_execution_accounting(
            [fragment], final_execution, executor.cost_model
        )
