"""PostgreSQL-style cost model, cost units and offline calibration."""

from __future__ import annotations

from repro.cost.units import CostUnits, DEFAULT_COST_UNITS
from repro.cost.model import CostModel
from repro.cost.calibration import CalibrationResult, calibrate_cost_units

__all__ = [
    "CalibrationResult",
    "CostModel",
    "CostUnits",
    "DEFAULT_COST_UNITS",
    "calibrate_cost_units",
]
