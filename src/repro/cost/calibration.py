"""Offline calibration of the cost units (Section 5.1.2, Wu et al. [40]).

The paper's "with calibration" configurations replace PostgreSQL's default
cost units with values fitted against observed query running times.  We
reproduce the procedure:

1. run a set of calibration plans (simple scans and joins over the workload's
   own tables) through the executor;
2. record, for each plan, the executor's resource vector (pages read, tuples
   visited, ...) and its measured wall-clock time;
3. fit the five cost units by non-negative least squares so that
   ``resources · units ≈ measured seconds``.

The fitted units make the optimizer's cost numbers commensurate with wall
clock on *this* machine, which is exactly what calibration buys in the paper:
better absolute cost estimates and occasionally different plan choices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.cost.model import ResourceVector
from repro.cost.units import CostUnits
from repro.errors import CalibrationError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.executor.executor import Executor
    from repro.optimizer.optimizer import Optimizer
    from repro.relalg.scheduler import TaskScheduler
    from repro.sql.ast import Query
    from repro.storage.catalog import Database


@dataclass
class CalibrationObservation:
    """One calibration data point: what a plan did and how long it took."""

    resources: ResourceVector
    elapsed_seconds: float
    label: str = ""


@dataclass
class CalibrationResult:
    """Fitted cost units plus fit diagnostics."""

    units: CostUnits
    observations: List[CalibrationObservation] = field(default_factory=list)
    residual_norm: float = 0.0

    @property
    def num_observations(self) -> int:
        """Number of calibration plans used for the fit."""
        return len(self.observations)


def fit_cost_units(observations: Sequence[CalibrationObservation]) -> CalibrationResult:
    """Fit the five cost units from calibration observations via NNLS."""
    if len(observations) < 5:
        raise CalibrationError(
            f"calibration needs at least 5 observations, got {len(observations)}"
        )
    matrix = np.vstack([obs.resources.as_array() for obs in observations])
    target = np.array([obs.elapsed_seconds for obs in observations], dtype=np.float64)
    if not np.isfinite(matrix).all() or not np.isfinite(target).all():
        raise CalibrationError("calibration observations contain non-finite values")
    solution, residual = nnls(matrix, target)
    # Guard against degenerate fits: a unit of exactly zero would make some
    # operations free and can produce pathological plans, so floor each unit
    # at a small fraction of the largest fitted unit.
    floor = max(solution.max(), 1e-12) * 1e-6
    solution = np.maximum(solution, floor)
    units = CostUnits.from_vector(solution)
    return CalibrationResult(units=units, observations=list(observations), residual_norm=float(residual))


def calibrate_cost_units(
    db: Database,
    queries: Optional[Sequence[Query]] = None,
    executor: Optional[Executor] = None,
    optimizer: Optional[Optimizer] = None,
    repetitions: int = 1,
    scheduler: Optional[TaskScheduler] = None,
) -> CalibrationResult:
    """Calibrate the cost units against the executor on ``db``.

    Parameters
    ----------
    db:
        Database whose tables drive the calibration workload.
    queries:
        Calibration queries; defaults to a generated micro-workload of single
        table scans and two-way joins over the largest tables.
    executor, optimizer:
        Injected to avoid import cycles; default instances are created when
        omitted.
    repetitions:
        How many times each calibration plan is executed (timings averaged).
    scheduler:
        Optional shared morsel :class:`~repro.relalg.TaskScheduler` for the
        default executor.  Calibration fits units against *observed* wall
        clock, so calibrating on the same scheduler the deployment executes
        with keeps the fitted units commensurate with the parallel runtime.
    """
    from repro.executor.executor import Executor
    from repro.optimizer.optimizer import Optimizer
    from repro.sql.builder import QueryBuilder

    executor = executor if executor is not None else Executor(db, scheduler=scheduler)
    optimizer = optimizer if optimizer is not None else Optimizer(db)

    if queries is None:
        queries = []
        table_names = sorted(db.table_names(), key=lambda name: -db.table(name).num_rows)
        for name in table_names:
            # A full sequential scan of every table.
            queries.append(QueryBuilder(f"calib_scan_{name}").table(name).build())
            table = db.table(name)
            # One filtered scan per indexed column: exercises index scans and
            # predicate evaluation so that the index/CPU cost units are
            # identifiable even on databases with few tables.
            for column in db.indexed_columns(name)[:2]:
                if table.num_rows == 0:
                    continue
                probe_value = table.column(column)[0]
                if hasattr(probe_value, "item"):
                    probe_value = probe_value.item()
                queries.append(
                    QueryBuilder(f"calib_index_{name}_{column}")
                    .table(name)
                    .filter(name, column, "=", probe_value)
                    .build()
                )

    observations: List[CalibrationObservation] = []
    for query in queries:
        plan = optimizer.optimize(query)
        total_resources = ResourceVector()
        elapsed = 0.0
        for _ in range(max(1, repetitions)):
            started = time.perf_counter()
            result = executor.execute_plan(plan, query)
            elapsed += time.perf_counter() - started
            total_resources = result.actual_resources
        observations.append(
            CalibrationObservation(
                resources=total_resources,
                elapsed_seconds=elapsed / max(1, repetitions),
                label=query.name,
            )
        )
    return fit_cost_units(observations)
