"""The cost model.

Every physical operator's work is expressed as a :class:`ResourceVector` — how
many sequential page reads, random page reads, tuple visits, index-tuple
visits and primitive operator evaluations it performs, as a function of its
input/output cardinalities.  The scalar cost is the dot product of that vector
with the five :class:`repro.cost.units.CostUnits`, exactly PostgreSQL's
linear-cost-model structure.  Keeping the vector explicit has two benefits:

* the optimizer and the executor share one set of formulas — the optimizer
  evaluates them at *estimated* cardinalities, the executor at *actual*
  cardinalities (the "simulated running time" of the benchmarks);
* calibration (:mod:`repro.cost.calibration`) can fit the five units by
  linear regression of observed running time on observed resource vectors,
  mirroring Wu et al. [40].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cost.units import CostUnits, DEFAULT_COST_UNITS
from repro.plans.nodes import JoinMethod, ScanMethod


@dataclass(frozen=True)
class ResourceVector:
    """Counts of the five primitive operations charged by the cost model."""

    seq_pages: float = 0.0
    random_pages: float = 0.0
    tuples: float = 0.0
    index_tuples: float = 0.0
    operator_evals: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            seq_pages=self.seq_pages + other.seq_pages,
            random_pages=self.random_pages + other.random_pages,
            tuples=self.tuples + other.tuples,
            index_tuples=self.index_tuples + other.index_tuples,
            operator_evals=self.operator_evals + other.operator_evals,
        )

    def as_array(self) -> np.ndarray:
        """Return the vector in the order of :meth:`CostUnits.as_dict`."""
        return np.array(
            [
                self.seq_pages,
                self.random_pages,
                self.tuples,
                self.index_tuples,
                self.operator_evals,
            ],
            dtype=np.float64,
        )


class CostModel:
    """Per-operator resource formulas plus the dot product with the cost units."""

    def __init__(self, units: CostUnits = DEFAULT_COST_UNITS, tuples_per_page: int = 100) -> None:
        self.units = units
        self.tuples_per_page = tuples_per_page

    # ------------------------------------------------------------------ #
    # Scalar cost
    # ------------------------------------------------------------------ #
    def cost(self, resources: ResourceVector) -> float:
        """Dot product of a resource vector with the cost units."""
        return (
            resources.seq_pages * self.units.seq_page_cost
            + resources.random_pages * self.units.random_page_cost
            + resources.tuples * self.units.cpu_tuple_cost
            + resources.index_tuples * self.units.cpu_index_tuple_cost
            + resources.operator_evals * self.units.cpu_operator_cost
        )

    def with_units(self, units: CostUnits) -> "CostModel":
        """Return a copy of the model using different cost units."""
        return CostModel(units=units, tuples_per_page=self.tuples_per_page)

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def _pages(self, rows: float) -> float:
        return max(1.0, math.ceil(rows / self.tuples_per_page))

    def seq_scan_resources(
        self, table_rows: float, num_predicates: int, output_rows: float
    ) -> ResourceVector:
        """Sequential scan: read every page, visit every tuple, evaluate filters."""
        return ResourceVector(
            seq_pages=self._pages(table_rows),
            tuples=table_rows,
            operator_evals=num_predicates * table_rows + output_rows,
        )

    def index_scan_resources(
        self,
        table_rows: float,
        index_matched_rows: float,
        num_residual_predicates: int,
        output_rows: float,
    ) -> ResourceVector:
        """Index scan: descend the index, fetch matched tuples with random I/O."""
        matched = max(0.0, index_matched_rows)
        fetched_pages = min(self._pages(table_rows), max(1.0, matched))
        return ResourceVector(
            random_pages=fetched_pages,
            tuples=matched,
            index_tuples=matched,
            operator_evals=math.log2(max(table_rows, 2.0))
            + num_residual_predicates * matched
            + output_rows,
        )

    def scan_resources(
        self,
        method: ScanMethod,
        table_rows: float,
        output_rows: float,
        num_predicates: int,
        index_matched_rows: float = 0.0,
    ) -> ResourceVector:
        """Dispatch on the scan method."""
        if method is ScanMethod.SEQ_SCAN:
            return self.seq_scan_resources(table_rows, num_predicates, output_rows)
        residual = max(0, num_predicates - 1)
        return self.index_scan_resources(table_rows, index_matched_rows, residual, output_rows)

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def hash_join_resources(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> ResourceVector:
        """Hash join: build a table on the inner input, probe with the outer."""
        return ResourceVector(
            tuples=output_rows,
            operator_evals=2.0 * inner_rows + outer_rows,
        )

    def merge_join_resources(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> ResourceVector:
        """Sort-merge join: sort both inputs, then a linear merge."""
        sort_cost = 0.0
        for rows in (outer_rows, inner_rows):
            if rows > 1:
                sort_cost += rows * math.log2(rows)
        return ResourceVector(
            tuples=output_rows,
            operator_evals=sort_cost + outer_rows + inner_rows,
        )

    def nested_loop_resources(
        self, outer_rows: float, inner_rows: float, output_rows: float
    ) -> ResourceVector:
        """Plain nested loop: compare every pair."""
        return ResourceVector(
            tuples=output_rows,
            operator_evals=max(outer_rows, 1.0) * max(inner_rows, 1.0),
        )

    def index_nested_loop_resources(
        self, outer_rows: float, inner_table_rows: float, output_rows: float
    ) -> ResourceVector:
        """Index nested loop: one index probe into the inner table per outer row."""
        descents = max(outer_rows, 1.0) * math.log2(max(inner_table_rows, 2.0))
        return ResourceVector(
            random_pages=output_rows,
            tuples=output_rows,
            index_tuples=output_rows,
            operator_evals=descents,
        )

    def join_resources(
        self,
        method: JoinMethod,
        outer_rows: float,
        inner_rows: float,
        output_rows: float,
        inner_table_rows: float = 0.0,
    ) -> ResourceVector:
        """Dispatch on the join method."""
        if method is JoinMethod.HASH_JOIN:
            return self.hash_join_resources(outer_rows, inner_rows, output_rows)
        if method is JoinMethod.MERGE_JOIN:
            return self.merge_join_resources(outer_rows, inner_rows, output_rows)
        if method is JoinMethod.NESTED_LOOP:
            return self.nested_loop_resources(outer_rows, inner_rows, output_rows)
        return self.index_nested_loop_resources(
            outer_rows, inner_table_rows or inner_rows, output_rows
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_resources(self, input_rows: float, output_groups: float) -> ResourceVector:
        """Hash aggregation: one pass over the input, one output tuple per group."""
        return ResourceVector(
            tuples=output_groups,
            operator_evals=input_rows,
        )
