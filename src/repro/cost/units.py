"""The five PostgreSQL cost units (Section 5.1.2 of the paper).

PostgreSQL expresses plan costs as a linear combination of five primitive
operations, weighted by the units below.  The paper's calibration experiments
replace the default values with calibrated ones obtained from offline
micro-benchmarks (Wu et al., ICDE 2013 [40]); :mod:`repro.cost.calibration`
reproduces that procedure against our executor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable


@dataclass(frozen=True)
class CostUnits:
    """Weights of the five primitive operations in the cost model."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025

    def as_dict(self) -> Dict[str, float]:
        """Return the units as an ordered mapping (calibration uses this order)."""
        return {
            "seq_page_cost": self.seq_page_cost,
            "random_page_cost": self.random_page_cost,
            "cpu_tuple_cost": self.cpu_tuple_cost,
            "cpu_index_tuple_cost": self.cpu_index_tuple_cost,
            "cpu_operator_cost": self.cpu_operator_cost,
        }

    def scaled(self, factor: float) -> "CostUnits":
        """Return units uniformly scaled by ``factor`` (cost ratios unchanged)."""
        return CostUnits(
            seq_page_cost=self.seq_page_cost * factor,
            random_page_cost=self.random_page_cost * factor,
            cpu_tuple_cost=self.cpu_tuple_cost * factor,
            cpu_index_tuple_cost=self.cpu_index_tuple_cost * factor,
            cpu_operator_cost=self.cpu_operator_cost * factor,
        )

    def with_values(self, **kwargs: float) -> "CostUnits":
        """Return a copy with some units replaced."""
        return replace(self, **kwargs)

    @classmethod
    def from_vector(cls, vector: Iterable[float]) -> "CostUnits":
        """Build units from a 5-vector in ``as_dict`` order."""
        names = list(cls().as_dict())
        values = {name: float(value) for name, value in zip(names, vector)}
        return cls(**values)


#: PostgreSQL's default cost units.
DEFAULT_COST_UNITS = CostUnits()
