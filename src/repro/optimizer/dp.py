"""System-R style dynamic-programming join enumeration.

The planner enumerates connected subsets of the query's relations bottom-up
(smallest subsets first) and keeps, per subset, the cheapest plan found.  For
every subset it tries every (outer, inner) split into two disjoint
sub-plans connected by at least one join predicate, and every enabled
physical join method.  Bushy trees are explored by default; restricting the
inner side to single relations yields the classic left-deep search.

The number of *distinct logical join trees* (unordered splits connected by a
join predicate) examined is tracked in
:attr:`DynamicProgrammingPlanner.num_join_trees_considered` — that is the
``N`` of the theoretical analysis in Section 3.3.  Commuted splits
``(outer, inner)`` / ``(inner, outer)`` describe the same logical join, and
disconnected splits are cartesian-product fallbacks the search discards, so
neither inflates the count.

Incremental re-planning (re-optimization support)
-------------------------------------------------
The ``best[mask]`` memo table survives between rounds: :meth:`replan` takes
the set of join sets whose validated cardinality in Γ changed since the last
round and re-expands only the subsets that contain a dirty join set.  A mask
whose every subset kept its cardinality estimate would re-derive exactly the
same cheapest plan, so skipping it is lossless — the re-planned result is
bit-identical to a from-scratch search with the same Γ, while touching only a
small fraction of the ``2^K`` masks (the paper's Section 3.3 argument that
re-optimization rounds are cheap, made literal).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.errors import PlanningError
from repro.optimizer.access_paths import best_scan
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import JoinMethod, JoinNode, PlanNode, ScanNode
from repro.sql.ast import Query
from repro.storage.catalog import Database


class DynamicProgrammingPlanner:
    """Exhaustive DP search over join orders for one query.

    The planner is reusable across re-optimization rounds: ``plan_joins``
    performs the full bottom-up enumeration, ``replan`` re-expands only the
    masks dirtied by new validated cardinalities.
    """

    def __init__(
        self,
        db: Database,
        query: Query,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        settings: OptimizerSettings,
    ) -> None:
        self.db = db
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings
        self.aliases: List[str] = list(query.aliases)
        self._alias_bit: Dict[str, int] = {alias: 1 << i for i, alias in enumerate(self.aliases)}
        #: Number of (subset, split, method) join alternatives examined.
        self.num_alternatives_considered = 0
        #: Number of distinct logical join trees (connected unordered splits)
        #: examined — the paper's ``N``.
        self.num_join_trees_considered = 0
        #: Masks (scans included) expanded by the most recent
        #: ``plan_joins``/``replan`` call; the incremental-planning metric.
        self.last_masks_expanded = 0
        self._best: Dict[int, PlanNode] = {}
        self._edges: List[Tuple[int, int]] = []
        self._masks_by_size: Dict[int, List[int]] = {}
        #: Masks pinned to an already-materialized intermediate (adaptive
        #: re-planning): (re-)expansion keeps the pinned leaf instead of
        #: re-deriving a join for the subset.
        self._materialized_masks: Dict[int, PlanNode] = {}

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _mask_aliases(self, mask: int) -> Tuple[str, ...]:
        return tuple(alias for alias in self.aliases if self._alias_bit[alias] & mask)

    def _edge_masks(self) -> List[Tuple[int, int]]:
        """Bitmask pairs (one per join predicate) used for connectivity tests."""
        edges = []
        for predicate in self.query.join_predicates:
            edges.append(
                (self._alias_bit[predicate.left_alias], self._alias_bit[predicate.right_alias])
            )
        return edges

    def _has_cross_edge(self, left_mask: int, right_mask: int) -> bool:
        for left_bit, right_bit in self._edges:
            if (left_bit & left_mask and right_bit & right_mask) or (
                left_bit & right_mask and right_bit & left_mask
            ):
                return True
        return False

    def _build_join(
        self,
        left: PlanNode,
        right: PlanNode,
        method: JoinMethod,
        output_rows: float,
    ) -> Optional[JoinNode]:
        """Build one join candidate, or None when the method is not applicable."""
        predicates = tuple(
            self.query.join_predicates_between(left.relations, right.relations)
        )
        inner_table_rows = 0.0
        if method is JoinMethod.INDEX_NESTED_LOOP:
            # Requires the inner side to be a single base relation with an
            # index on (one of) the join columns.
            if not isinstance(right, ScanNode) or not predicates:
                return None
            inner_alias = right.alias
            inner_table = self.query.table_for_alias(inner_alias)
            indexed_predicate = None
            for predicate in predicates:
                column = predicate.column_for(inner_alias)
                if self.db.has_index(inner_table, column):
                    indexed_predicate = predicate
                    break
            if indexed_predicate is None:
                return None
            inner_table_rows = float(self.db.table(inner_table).num_rows)
        if method in (JoinMethod.HASH_JOIN, JoinMethod.MERGE_JOIN) and not predicates:
            # Hash and merge joins need at least one equi-join predicate.
            return None

        resources = self.cost_model.join_resources(
            method,
            outer_rows=left.estimated_rows,
            inner_rows=right.estimated_rows,
            output_rows=output_rows,
            inner_table_rows=inner_table_rows,
        )
        cost = left.estimated_cost + right.estimated_cost + self.cost_model.cost(resources)
        return JoinNode(
            relations=frozenset(left.relations | right.relations),
            estimated_rows=output_rows,
            estimated_cost=cost,
            left=left,
            right=right,
            method=method,
            predicates=predicates,
        )

    def _expand_scan(self, alias: str) -> None:
        """(Re)compute the best access path for one base relation."""
        bit = self._alias_bit[alias]
        if bit in self._materialized_masks:
            self._best[bit] = self._materialized_masks[bit]
            self.last_masks_expanded += 1
            return
        self._best[bit] = best_scan(
            self.db, self.query, alias, self.estimator, self.cost_model, self.settings
        )
        self.last_masks_expanded += 1

    def _expand_mask(self, mask: int) -> None:
        """(Re)compute ``best[mask]`` from the current best sub-plans."""
        if mask in self._materialized_masks:
            # The subset is already materialized: its best "plan" is the
            # zero-cost reuse leaf, whatever Γ now says about its parts.
            self._best[mask] = self._materialized_masks[mask]
            self.last_masks_expanded += 1
            return
        candidates: List[PlanNode] = []
        connected_candidates: List[PlanNode] = []
        output_rows = self.estimator.joinset_cardinality(self._mask_aliases(mask))
        counted_splits: set = set()
        # Enumerate every ordered split (outer, inner) of the subset.
        submask = (mask - 1) & mask
        while submask:
            left_mask = submask
            right_mask = mask ^ submask
            left_plan = self._best.get(left_mask)
            right_plan = self._best.get(right_mask)
            submask = (submask - 1) & mask
            if left_plan is None or right_plan is None:
                continue
            if not self.settings.allow_bushy and bin(right_mask).count("1") != 1:
                continue
            connected = self._has_cross_edge(left_mask, right_mask)
            if connected:
                # (outer, inner) and (inner, outer) are the same logical join
                # tree; disconnected splits are cartesian fallbacks the search
                # discards — neither counts towards the paper's N.
                split_key = (min(left_mask, right_mask), max(left_mask, right_mask))
                if split_key not in counted_splits:
                    counted_splits.add(split_key)
                    self.num_join_trees_considered += 1
            for method in sorted(self.settings.enabled_join_methods, key=lambda m: m.value):
                self.num_alternatives_considered += 1
                join = self._build_join(left_plan, right_plan, method, output_rows)
                if join is None:
                    continue
                candidates.append(join)
                if connected:
                    connected_candidates.append(join)
        # Prefer splits connected by join predicates; fall back to
        # cartesian products only when the subset is not connected.
        pool = connected_candidates or candidates
        if pool:
            self._best[mask] = min(pool, key=lambda node: node.estimated_cost)
        self.last_masks_expanded += 1

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def plan_joins(self) -> PlanNode:
        """Return the cheapest join plan over all relations of the query."""
        if not self.aliases:
            raise PlanningError(f"query {self.query.name!r} references no tables")
        self._edges = self._edge_masks()
        self._best = {}
        self.last_masks_expanded = 0

        for alias in self.aliases:
            self._expand_scan(alias)
        if len(self.aliases) == 1:
            return self._best[self._alias_bit[self.aliases[0]]]

        full_mask = (1 << len(self.aliases)) - 1
        self._masks_by_size = {}
        for mask in range(1, full_mask + 1):
            self._masks_by_size.setdefault(bin(mask).count("1"), []).append(mask)

        for size in range(2, len(self.aliases) + 1):
            for mask in self._masks_by_size.get(size, []):
                self._expand_mask(mask)

        if full_mask not in self._best:
            raise PlanningError(
                f"could not build a plan for query {self.query.name!r}; "
                "the join graph may be disconnected and cartesian products disabled"
            )
        return self._best[full_mask]

    def _mask_for(self, join_set: FrozenSet[str]) -> Optional[int]:
        """Bitmask of a join set, or None if it references foreign aliases."""
        if not join_set or not all(alias in self._alias_bit for alias in join_set):
            return None
        mask = 0
        for alias in join_set:
            mask |= self._alias_bit[alias]
        return mask

    def replan(
        self,
        estimator: CardinalityEstimator,
        changed_join_sets: Iterable[FrozenSet[str]],
        materialized: Optional[Mapping[FrozenSet[str], PlanNode]] = None,
    ) -> PlanNode:
        """Incrementally re-plan after Γ changed on ``changed_join_sets``.

        Only masks containing a dirty join set can see a different
        cardinality estimate anywhere in their sub-plans, so only those are
        re-expanded (bottom-up, smallest first, so re-expanded masks combine
        already-updated sub-plans).  Everything else keeps its memoized best
        plan, making the result identical to a from-scratch search under the
        new Γ.

        ``materialized`` pins subsets to already-materialized intermediates
        (adaptive re-optimization): each entry's plan node — typically a
        zero-cost :class:`~repro.plans.nodes.MaterializedNode` — becomes the
        subset's best plan, and every containing mask is re-expanded so the
        search may (or may not) route the rest of the query through the
        reuse leaf, whichever is cheaper.
        """
        if not self._best:
            self.estimator = estimator
            plan = self.plan_joins()
            if not materialized:
                return plan
            # Fall through: pin the materialized subsets and re-expand.
            changed_join_sets = frozenset()
        self.estimator = estimator
        self.last_masks_expanded = 0

        seeds: List[int] = []
        for join_set in changed_join_sets:
            mask = self._mask_for(frozenset(join_set))
            if mask is not None:
                seeds.append(mask)
        for join_set, node in (materialized or {}).items():
            mask = self._mask_for(frozenset(join_set))
            if mask is None:
                continue
            self._materialized_masks[mask] = node
            seeds.append(mask)

        full_mask = (1 << len(self.aliases)) - 1
        if seeds:
            for alias in self.aliases:
                bit = self._alias_bit[alias]
                if any(seed == bit for seed in seeds):
                    self._expand_scan(alias)
            for size in range(2, len(self.aliases) + 1):
                for mask in self._masks_by_size.get(size, []):
                    if any(seed & ~mask == 0 for seed in seeds):
                        self._expand_mask(mask)

        if full_mask not in self._best:
            raise PlanningError(
                f"could not build a plan for query {self.query.name!r}; "
                "the join graph may be disconnected and cartesian products disabled"
            )
        return self._best[full_mask]
