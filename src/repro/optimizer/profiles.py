"""Optimizer profiles standing in for the paper's anonymous commercial systems.

Figures 12 and 13 of the paper run the OTT queries on "commercial database
system A" and "commercial database system B" and observe the same failure
mode as PostgreSQL: the optimizers cannot see the correlation between the
selection and join columns, so some plans evaluate the empty join last and
run for hundreds of seconds.

We cannot ship those systems, so the reproduction substitutes two optimizer
*profiles* that differ from the PostgreSQL profile the same way real systems
differ — in their statistics/estimation details and search-space choices —
while all still relying on the attribute-value-independence assumption:

* ``system_a`` — no MCV join refinement (plain System R reduction factor),
  left-deep plans only;
* ``system_b`` — MCV refinement on, bushy plans, but no index-nested-loop
  joins and a higher random-page cost (a common commercial default).

The point reproduced is qualitative and matches the paper: *every*
independence-assuming profile mis-estimates the OTT joins identically, so the
long-running original plans appear under every profile.
"""

from __future__ import annotations

from typing import Dict

from repro.cost.units import CostUnits
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import JoinMethod

#: Named optimizer profiles available to benches and examples.
OPTIMIZER_PROFILES: Dict[str, OptimizerSettings] = {
    "postgresql": OptimizerSettings(profile="postgresql"),
    "system_a": OptimizerSettings(
        profile="system_a",
        allow_bushy=False,
        use_mcv_join_refinement=False,
    ),
    "system_b": OptimizerSettings(
        profile="system_b",
        allow_bushy=True,
        use_mcv_join_refinement=True,
        enabled_join_methods=frozenset(
            {JoinMethod.HASH_JOIN, JoinMethod.MERGE_JOIN, JoinMethod.NESTED_LOOP}
        ),
        cost_units=CostUnits(random_page_cost=8.0),
    ),
}


def profile_settings(name: str) -> OptimizerSettings:
    """Return the settings of a named profile.

    Raises
    ------
    KeyError
        If the profile does not exist.
    """
    return OPTIMIZER_PROFILES[name]
