"""Access-path selection for base relations (sequential vs index scan).

For each relation alias of a query the planner builds the cheapest scan:

* a sequential scan applying all local predicates, and
* an index scan for every equality predicate on an indexed column, with the
  remaining predicates applied as residual filters.

Both candidates share the estimator's output cardinality; they differ only in
cost, which is how PostgreSQL chooses between them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.selectivity import equality_selectivity
from repro.cost.model import CostModel
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import ScanMethod, ScanNode
from repro.sql.ast import Query
from repro.storage.catalog import Database


def best_scan(
    db: Database,
    query: Query,
    alias: str,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    settings: OptimizerSettings,
) -> ScanNode:
    """Build the cheapest scan over ``alias`` given the query's local predicates."""
    table_name = query.table_for_alias(alias)
    table = db.table(table_name)
    predicates = tuple(query.local_predicates_for(alias))
    output_rows = estimator.base_cardinality(alias)
    table_rows = float(table.num_rows)

    candidates: List[ScanNode] = []

    seq_resources = cost_model.seq_scan_resources(table_rows, len(predicates), output_rows)
    candidates.append(
        ScanNode(
            relations=frozenset({alias}),
            estimated_rows=output_rows,
            estimated_cost=cost_model.cost(seq_resources),
            table=table_name,
            alias=alias,
            method=ScanMethod.SEQ_SCAN,
            predicates=predicates,
        )
    )

    if settings.enable_index_scan:
        table_stats = db.statistics.get(table_name)
        for predicate in predicates:
            if predicate.op != "=":
                continue
            if not db.has_index(table_name, predicate.column):
                continue
            column_stats = (
                table_stats.column(predicate.column)
                if table_stats is not None and table_stats.has_column(predicate.column)
                else None
            )
            matched_rows = table_rows * equality_selectivity(column_stats, predicate.value)
            residual = len(predicates) - 1
            resources = cost_model.index_scan_resources(
                table_rows, matched_rows, residual, output_rows
            )
            candidates.append(
                ScanNode(
                    relations=frozenset({alias}),
                    estimated_rows=output_rows,
                    estimated_cost=cost_model.cost(resources),
                    table=table_name,
                    alias=alias,
                    method=ScanMethod.INDEX_SCAN,
                    predicates=predicates,
                    index_column=predicate.column,
                )
            )

    return min(candidates, key=lambda node: node.estimated_cost)
