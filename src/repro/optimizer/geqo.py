"""GEQO-style randomized join-order search.

PostgreSQL abandons exhaustive dynamic programming when a query joins more
than ``geqo_threshold`` relations (12 by default) and falls back to a genetic
search over left-deep join orders (the paper's footnote 2).  This module
implements a compact version of that idea:

* a pool of random permutations of the relations is generated;
* each permutation is greedily turned into a left-deep plan (choosing the
  cheapest join method at every step);
* the best permutations are iteratively improved by adjacent swaps
  (a light-weight stand-in for GEQO's crossover/mutation).

The search is deterministic for a fixed ``geqo_seed``.

During re-optimization the randomized search is **seeded**: the caller (a
:class:`~repro.optimizer.optimizer.PlanningSession`) passes the previous
round's best join order via ``seed_orders``, which joins the candidate pool
ahead of the random permutations.  Later rounds therefore refine the
incumbent order under the updated Γ instead of restarting the search from
scratch — above-threshold queries converge the way DP queries do, instead of
bouncing between unrelated random optima each round.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.errors import PlanningError
from repro.optimizer.access_paths import best_scan
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import JoinMethod, JoinNode, PlanNode, ScanNode
from repro.sql.ast import Query
from repro.storage.catalog import Database


class GeqoPlanner:
    """Randomized left-deep planner for many-relation queries."""

    def __init__(
        self,
        db: Database,
        query: Query,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        settings: OptimizerSettings,
        seed_orders: Sequence[Sequence[str]] = (),
    ) -> None:
        self.db = db
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings
        #: Join orders to evaluate ahead of the random pool (e.g. the
        #: previous re-optimization round's winner).
        self.seed_orders = [list(order) for order in seed_orders]
        self.num_orders_considered = 0
        #: The join order of the best plan the last ``plan_joins`` call found
        #: (None for single-relation queries); callers feed it back as a seed.
        self.best_order: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # Plan construction for one permutation
    # ------------------------------------------------------------------ #
    def _scan_for(self, alias: str) -> ScanNode:
        return best_scan(self.db, self.query, alias, self.estimator, self.cost_model, self.settings)

    def _cheapest_join(self, left: PlanNode, right: ScanNode) -> Optional[JoinNode]:
        output_rows = self.estimator.joinset_cardinality(left.relations | right.relations)
        best: Optional[JoinNode] = None
        predicates = self.query.join_predicates_between(left.relations, right.relations)
        for method in sorted(self.settings.enabled_join_methods, key=lambda m: m.value):
            inner_table_rows = 0.0
            if method is JoinMethod.INDEX_NESTED_LOOP:
                if not predicates:
                    continue
                inner_table = self.query.table_for_alias(right.alias)
                has_usable_index = any(
                    self.db.has_index(inner_table, p.column_for(right.alias)) for p in predicates
                )
                if not has_usable_index:
                    continue
                inner_table_rows = float(self.db.table(inner_table).num_rows)
            if method in (JoinMethod.HASH_JOIN, JoinMethod.MERGE_JOIN) and not predicates:
                continue
            resources = self.cost_model.join_resources(
                method,
                outer_rows=left.estimated_rows,
                inner_rows=right.estimated_rows,
                output_rows=output_rows,
                inner_table_rows=inner_table_rows,
            )
            cost = left.estimated_cost + right.estimated_cost + self.cost_model.cost(resources)
            candidate = JoinNode(
                relations=frozenset(left.relations | right.relations),
                estimated_rows=output_rows,
                estimated_cost=cost,
                left=left,
                right=right,
                method=method,
                predicates=tuple(predicates),
            )
            if best is None or candidate.estimated_cost < best.estimated_cost:
                best = candidate
        if best is None:
            # No applicable specialised method: fall back to a nested loop
            # (cartesian product with residual predicates).
            resources = self.cost_model.nested_loop_resources(
                left.estimated_rows, right.estimated_rows, output_rows
            )
            best = JoinNode(
                relations=frozenset(left.relations | right.relations),
                estimated_rows=output_rows,
                estimated_cost=left.estimated_cost + right.estimated_cost + self.cost_model.cost(resources),
                left=left,
                right=right,
                method=JoinMethod.NESTED_LOOP,
                predicates=tuple(predicates),
            )
        return best

    def _plan_for_order(self, order: Sequence[str]) -> PlanNode:
        self.num_orders_considered += 1
        plan: PlanNode = self._scan_for(order[0])
        for alias in order[1:]:
            join = self._cheapest_join(plan, self._scan_for(alias))
            if join is None:
                raise PlanningError(f"could not join relation {alias!r}")
            plan = join
        return plan

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def plan_joins(self) -> PlanNode:
        """Return the best left-deep plan found by the randomized search."""
        aliases = list(self.query.aliases)
        if not aliases:
            raise PlanningError(f"query {self.query.name!r} references no tables")
        if len(aliases) == 1:
            return self._scan_for(aliases[0])

        rng = random.Random(self.settings.geqo_seed)
        alias_set = set(aliases)
        # Always include the textual order as one candidate for determinism,
        # then any caller-provided seed orders (previous rounds' winners;
        # orders that do not cover the query's aliases are ignored), then the
        # random pool.
        orders = [list(aliases)]
        for seed_order in self.seed_orders:
            if set(seed_order) == alias_set and seed_order not in orders:
                orders.append(list(seed_order))
        for _ in range(max(1, self.settings.geqo_pool_size - 1)):
            order = list(aliases)
            rng.shuffle(order)
            orders.append(order)

        best_plan: Optional[PlanNode] = None
        best_order: Optional[List[str]] = None
        for order in orders:
            plan = self._plan_for_order(order)
            if best_plan is None or plan.estimated_cost < best_plan.estimated_cost:
                best_plan = plan
                best_order = order

        # Local improvement: adjacent swaps on the best order.
        improved = True
        while improved and best_order is not None:
            improved = False
            for position in range(len(best_order) - 1):
                candidate_order = list(best_order)
                candidate_order[position], candidate_order[position + 1] = (
                    candidate_order[position + 1],
                    candidate_order[position],
                )
                candidate = self._plan_for_order(candidate_order)
                if candidate.estimated_cost < best_plan.estimated_cost:
                    best_plan = candidate
                    best_order = candidate_order
                    improved = True
        assert best_plan is not None
        self.best_order = list(best_order) if best_order is not None else None
        return best_plan
