"""Query optimizer: DP join-order search, GEQO fallback and optimizer profiles."""

from __future__ import annotations

from repro.optimizer.optimizer import Optimizer, OptimizerSettings
from repro.optimizer.profiles import OPTIMIZER_PROFILES, profile_settings

__all__ = [
    "OPTIMIZER_PROFILES",
    "Optimizer",
    "OptimizerSettings",
    "profile_settings",
]
