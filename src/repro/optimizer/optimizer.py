"""The optimizer facade.

``Optimizer.optimize(query, gamma)`` is the ``GetPlanFromOptimizer(Γ)`` call
of Algorithm 1: it runs the cost-based search (DP below the GEQO threshold,
randomized search above it) using a cardinality estimator that prefers the
validated cardinalities in Γ over its histogram estimates, and wraps the join
plan in an aggregation node when the query has one.

The optimizer itself is completely unaware of re-optimization — exactly the
"almost no changes to the original query optimizer" property the paper
emphasises.  All the re-optimization logic lives in :mod:`repro.reopt`.

For callers that re-plan the *same* query repeatedly with a growing Γ (the
re-optimization loop, the concurrent workload driver), ``planning_session``
returns a :class:`PlanningSession` that keeps the DP memo table alive between
calls and re-expands only the Γ-dirtied portion of the search space.  A
session produces plans bit-identical to ``optimize`` while doing a fraction
of the work from round 2 on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.gamma import Gamma
from repro.cost.model import CostModel
from repro.optimizer.dp import DynamicProgrammingPlanner
from repro.optimizer.geqo import GeqoPlanner
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import AggregateNode, PlanNode
from repro.sql.ast import Query
from repro.storage.catalog import Database

__all__ = ["Optimizer", "OptimizerSettings", "OptimizationReport", "PlanningSession"]


@dataclass
class OptimizationReport:
    """Bookkeeping of one optimizer invocation (used by analyses and benches)."""

    plan: PlanNode
    num_join_trees_considered: int
    used_geqo: bool


class PlanningSession:
    """Incremental planning context for one query across many Γ versions.

    The first :meth:`optimize` call runs the full DP enumeration; subsequent
    calls ask Γ which join sets changed since the previous call
    (``Gamma.changed_since``) and re-expand only the affected masks.  GEQO
    queries (above the threshold) re-run the randomized search each round,
    but **seeded** with the previous round's winning join order, so the
    search refines the incumbent under the updated Γ instead of restarting
    from unrelated random permutations.

    ``last_masks_expanded`` exposes how many DP masks the most recent call
    (re-)expanded (``None`` on the GEQO path): the incremental-planning
    metric asserted by the benchmarks.
    """

    def __init__(self, optimizer: "Optimizer", query: Query) -> None:
        query.validate()
        query.ensure_bound()
        self.optimizer = optimizer
        self.query = query
        self.use_geqo = len(query.aliases) > optimizer.settings.geqo_threshold
        self._dp_planner: Optional[DynamicProgrammingPlanner] = None
        self._gamma_epoch = 0
        #: The best join order of the previous GEQO round (seeds the next).
        self._geqo_seed_orders: list = []
        #: DP masks expanded by the most recent call (None on the GEQO path).
        self.last_masks_expanded: Optional[int] = None
        #: Join trees examined by the most recent call.
        self.last_join_trees_considered = 0

    def rebind(self, query: Query) -> "PlanningSession":
        """Re-target the session at a new *binding* of the same template.

        The query service keeps one session per prepared template; when a
        drift-triggered replan arrives with fresh parameter bindings, the
        constants — and therefore every selectivity — may have changed, so
        the DP memo is dropped (its cached costs are stale for the new
        bindings) and the Γ epoch resets.  What survives is the GEQO seed:
        the join *structure* is identical across bindings of one template,
        so the previous binding's winning join order remains an informed
        starting permutation for the randomized search.
        """
        query.validate()
        query.ensure_bound()
        if [ref.alias for ref in query.tables] != [ref.alias for ref in self.query.tables]:
            raise ValueError(
                "rebind expects a binding of the same template "
                f"(aliases {self.query.aliases} != {query.aliases})"
            )
        self.query = query
        self._dp_planner = None
        self._gamma_epoch = 0
        self.last_masks_expanded = None
        self.last_join_trees_considered = 0
        return self

    def optimize(
        self,
        gamma: Optional[Gamma] = None,
        materialized: Optional[Mapping[FrozenSet[str], PlanNode]] = None,
    ) -> PlanNode:
        """Plan the session's query under the current Γ.

        ``materialized`` (join set → plan node, typically a zero-cost
        :class:`~repro.plans.nodes.MaterializedNode`) pins subsets of the DP
        search space to intermediates a partial execution already produced —
        the adaptive executor's residual planning.  The GEQO path ignores it
        (the randomized search re-plans from base relations; the adaptive
        executor still reuses intermediates at execution time by splicing
        them into whatever plan comes back).
        """
        estimator = self.optimizer.make_estimator(self.query, gamma)
        if self.use_geqo:
            planner = GeqoPlanner(
                self.optimizer.db, self.query, estimator,
                self.optimizer.cost_model, self.optimizer.settings,
                seed_orders=self._geqo_seed_orders,
            )
            join_plan = planner.plan_joins()
            if planner.best_order is not None:
                self._geqo_seed_orders = [list(planner.best_order)]
            trees_considered = planner.num_orders_considered
            self.last_masks_expanded = None
        else:
            if self._dp_planner is None:
                self._dp_planner = DynamicProgrammingPlanner(
                    self.optimizer.db, self.query, estimator,
                    self.optimizer.cost_model, self.optimizer.settings,
                )
                trees_before = 0
                if materialized:
                    join_plan = self._dp_planner.replan(
                        estimator, frozenset(), materialized=materialized
                    )
                else:
                    join_plan = self._dp_planner.plan_joins()
            else:
                changed = (
                    gamma.changed_since(self._gamma_epoch)
                    if gamma is not None
                    else frozenset()
                )
                trees_before = self._dp_planner.num_join_trees_considered
                join_plan = self._dp_planner.replan(
                    estimator, changed, materialized=materialized
                )
            trees_considered = self._dp_planner.num_join_trees_considered - trees_before
            self.last_masks_expanded = self._dp_planner.last_masks_expanded
        self._gamma_epoch = gamma.epoch if gamma is not None else self._gamma_epoch
        self.last_join_trees_considered = trees_considered

        plan = self.optimizer.finalize_plan(self.query, join_plan)
        self.optimizer.last_report = OptimizationReport(
            plan=plan,
            num_join_trees_considered=trees_considered,
            used_geqo=self.use_geqo,
        )
        return plan


class Optimizer:
    """Cost-based query optimizer with injectable validated cardinalities."""

    def __init__(self, db: Database, settings: Optional[OptimizerSettings] = None) -> None:
        self.db = db
        self.settings = settings if settings is not None else OptimizerSettings()
        self.cost_model = CostModel(units=self.settings.cost_units)
        #: Report of the most recent ``optimize`` call.
        self.last_report: Optional[OptimizationReport] = None

    def make_estimator(self, query: Query, gamma: Optional[Gamma] = None) -> CardinalityEstimator:
        """Build the cardinality estimator the search will consult."""
        return CardinalityEstimator(
            self.db,
            query,
            gamma=gamma,
            use_mcv_join_refinement=self.settings.use_mcv_join_refinement,
        )

    def planning_session(self, query: Query) -> PlanningSession:
        """Open an incremental planning session for ``query``."""
        return PlanningSession(self, query)

    def finalize_plan(self, query: Query, plan: PlanNode) -> PlanNode:
        """Wrap a join plan in the query's aggregation node (when it has one)."""
        if query.aggregates or query.group_by:
            input_rows = plan.estimated_rows
            group_columns = len(query.group_by)
            # Rough group-count estimate: the product of per-column distinct
            # counts capped by the input cardinality (no grouping statistics on
            # join outputs are kept, as in PostgreSQL before extended stats).
            if group_columns == 0:
                output_groups = 1.0
            else:
                output_groups = max(1.0, min(input_rows, input_rows ** 0.5))
            resources = self.cost_model.aggregate_resources(input_rows, output_groups)
            plan = AggregateNode(
                relations=frozenset(plan.relations),
                estimated_rows=output_groups,
                estimated_cost=plan.estimated_cost + self.cost_model.cost(resources),
                child=plan,
                group_by=tuple(query.group_by),
                aggregates=tuple(query.aggregates),
            )
        return plan

    def optimize(self, query: Query, gamma: Optional[Gamma] = None) -> PlanNode:
        """Return the cheapest plan for ``query`` given the validated cardinalities Γ."""
        return self.planning_session(query).optimize(gamma)
