"""The optimizer facade.

``Optimizer.optimize(query, gamma)`` is the ``GetPlanFromOptimizer(Γ)`` call
of Algorithm 1: it runs the cost-based search (DP below the GEQO threshold,
randomized search above it) using a cardinality estimator that prefers the
validated cardinalities in Γ over its histogram estimates, and wraps the join
plan in an aggregation node when the query has one.

The optimizer itself is completely unaware of re-optimization — exactly the
"almost no changes to the original query optimizer" property the paper
emphasises.  All the re-optimization logic lives in :mod:`repro.reopt`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cardinality.estimator import CardinalityEstimator
from repro.cardinality.gamma import Gamma
from repro.cost.model import CostModel
from repro.optimizer.dp import DynamicProgrammingPlanner
from repro.optimizer.geqo import GeqoPlanner
from repro.optimizer.settings import OptimizerSettings
from repro.plans.nodes import AggregateNode, PlanNode
from repro.sql.ast import Query
from repro.storage.catalog import Database

__all__ = ["Optimizer", "OptimizerSettings", "OptimizationReport"]


@dataclass
class OptimizationReport:
    """Bookkeeping of one optimizer invocation (used by analyses and benches)."""

    plan: PlanNode
    num_join_trees_considered: int
    used_geqo: bool


class Optimizer:
    """Cost-based query optimizer with injectable validated cardinalities."""

    def __init__(self, db: Database, settings: Optional[OptimizerSettings] = None) -> None:
        self.db = db
        self.settings = settings if settings is not None else OptimizerSettings()
        self.cost_model = CostModel(units=self.settings.cost_units)
        #: Report of the most recent ``optimize`` call.
        self.last_report: Optional[OptimizationReport] = None

    def make_estimator(self, query: Query, gamma: Optional[Gamma] = None) -> CardinalityEstimator:
        """Build the cardinality estimator the search will consult."""
        return CardinalityEstimator(
            self.db,
            query,
            gamma=gamma,
            use_mcv_join_refinement=self.settings.use_mcv_join_refinement,
        )

    def optimize(self, query: Query, gamma: Optional[Gamma] = None) -> PlanNode:
        """Return the cheapest plan for ``query`` given the validated cardinalities Γ."""
        query.validate()
        estimator = self.make_estimator(query, gamma)
        use_geqo = len(query.aliases) > self.settings.geqo_threshold
        if use_geqo:
            planner = GeqoPlanner(self.db, query, estimator, self.cost_model, self.settings)
            plan = planner.plan_joins()
            trees_considered = planner.num_orders_considered
        else:
            planner = DynamicProgrammingPlanner(
                self.db, query, estimator, self.cost_model, self.settings
            )
            plan = planner.plan_joins()
            trees_considered = planner.num_join_trees_considered

        if query.aggregates or query.group_by:
            input_rows = plan.estimated_rows
            group_columns = len(query.group_by)
            # Rough group-count estimate: the product of per-column distinct
            # counts capped by the input cardinality (no grouping statistics on
            # join outputs are kept, as in PostgreSQL before extended stats).
            if group_columns == 0:
                output_groups = 1.0
            else:
                output_groups = max(1.0, min(input_rows, input_rows ** 0.5))
            resources = self.cost_model.aggregate_resources(input_rows, output_groups)
            plan = AggregateNode(
                relations=frozenset(plan.relations),
                estimated_rows=output_groups,
                estimated_cost=plan.estimated_cost + self.cost_model.cost(resources),
                child=plan,
                group_by=tuple(query.group_by),
                aggregates=tuple(query.aggregates),
            )

        self.last_report = OptimizationReport(
            plan=plan,
            num_join_trees_considered=trees_considered,
            used_geqo=use_geqo,
        )
        return plan
