"""Optimizer configuration knobs.

The settings mirror the PostgreSQL knobs the paper interacts with: the five
cost units (default or calibrated, Section 5.1.2), the GEQO threshold (the
paper's footnote 2 notes PostgreSQL switches to a genetic search above 12
joins), which physical operators are enabled, and whether bushy join trees
are explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.cost.units import CostUnits, DEFAULT_COST_UNITS
from repro.plans.nodes import JoinMethod


@dataclass(frozen=True)
class OptimizerSettings:
    """Everything the planner needs besides the database and the query."""

    #: Cost units used to score plans (replace with calibrated units to get
    #: the paper's "with calibration" configuration).
    cost_units: CostUnits = DEFAULT_COST_UNITS
    #: Explore bushy join trees (True) or only left-deep trees (False).
    allow_bushy: bool = True
    #: Above this number of relations the DP search is replaced by the
    #: randomized GEQO-style search (PostgreSQL's geqo_threshold).
    geqo_threshold: int = 12
    #: Random seed for the GEQO search (determinism in tests and benches).
    geqo_seed: int = 0
    #: Number of random join orders GEQO evaluates.
    geqo_pool_size: int = 64
    #: Physical join operators the planner may use.
    enabled_join_methods: FrozenSet[JoinMethod] = frozenset(
        {
            JoinMethod.HASH_JOIN,
            JoinMethod.MERGE_JOIN,
            JoinMethod.NESTED_LOOP,
            JoinMethod.INDEX_NESTED_LOOP,
        }
    )
    #: Allow index scans on base tables (when an index and an equality
    #: predicate are available).
    enable_index_scan: bool = True
    #: Use PostgreSQL-style MCV matching when estimating join selectivities;
    #: False falls back to the plain System R reduction factor.
    use_mcv_join_refinement: bool = True
    #: Element budget for one block of the nested-loop join's comparison
    #: matrix (work_mem-style knob): peak memory per block vs. per-block
    #: NumPy dispatch overhead.  Threaded through to the executor's
    #: ``nested_loop_join`` calls.
    nested_loop_block_elements: int = 4_000_000
    #: Human-readable profile name ("postgresql", "system_a", "system_b").
    profile: str = "postgresql"

    def with_units(self, units: CostUnits) -> "OptimizerSettings":
        """Return a copy of the settings with different cost units."""
        return OptimizerSettings(
            cost_units=units,
            allow_bushy=self.allow_bushy,
            geqo_threshold=self.geqo_threshold,
            geqo_seed=self.geqo_seed,
            geqo_pool_size=self.geqo_pool_size,
            enabled_join_methods=self.enabled_join_methods,
            enable_index_scan=self.enable_index_scan,
            use_mcv_join_refinement=self.use_mcv_join_refinement,
            nested_loop_block_elements=self.nested_loop_block_elements,
            profile=self.profile,
        )
