"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers embedding the engine can catch a single base class.  The subclasses
mirror the major subsystems (catalog, SQL front end, planning, execution,
statistics) and carry human-readable messages rather than error codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CatalogError(ReproError):
    """A table, column, or index was not found or already exists."""


class SchemaError(ReproError):
    """Data does not conform to the declared table schema."""


class ParseError(ReproError):
    """The SQL text could not be parsed into a query AST."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for the query."""


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class StatisticsError(ReproError):
    """Statistics were requested but have not been collected (run ANALYZE)."""


class CalibrationError(ReproError):
    """Cost-unit calibration failed (e.g. degenerate observation matrix)."""


class SamplingError(ReproError):
    """Sampling-based estimation was requested without sample tables."""
