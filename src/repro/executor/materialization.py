"""Pipeline-breaker checkpoints: the intermediate materialization registry.

Adaptive (mid-execution) re-optimization executes a plan pipeline by
pipeline.  Every pipeline breaker — a completed scan or join — materializes
its output relation here, keyed by its *join-set fingerprint*: the frozenset
of relation aliases the result covers.  Within one query execution that key
uniquely identifies the content (local and join predicates of the query
applied to exactly those relations), whatever join order produced it, which
is what makes the registry reusable across re-planned join orders: a freshly
planned tree that contains a sub-tree over an already-materialized join set
resumes from the stored relation instead of restarting from scans.

The registry also provides :func:`canonical_row_order` — a deterministic
full-column row ordering.  A join's output row *multiset* is independent of
the join order that produced it, but its row *order* is not; sorting the
final pipeline's output canonically makes order-sensitive results (float
``SUM``/``AVG`` accumulation, bare projections) a pure function of the row
multiset, which is the adaptive executor's bit-identity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.relalg import Relation
from repro.relalg.encoding import sort_key


def canonical_row_order(relation: Relation) -> Optional[np.ndarray]:
    """A permutation sorting the relation's rows lexicographically by all
    columns (column names in sorted order, ``np.lexsort`` stable ties).

    Returns ``None`` when the relation carries no columns (nothing to order
    by — and nothing whose order could matter) or fewer than two rows.
    """
    if not relation or relation.num_rows < 2:
        return None
    names = sorted(relation)
    keys = tuple(reversed([sort_key(relation[name]) for name in names]))
    return np.lexsort(keys)


def canonicalize_relation(relation: Relation) -> Relation:
    """The relation with its rows in canonical order (see above)."""
    order = canonical_row_order(relation)
    if order is None:
        return relation
    return relation.take(order)


@dataclass
class MaterializedIntermediate:
    """One checkpointed pipeline output."""

    #: The join set the relation covers (the registry key).
    join_set: FrozenSet[str]
    #: The materialized rows (all columns the plan carries past this point).
    relation: Relation
    #: True output cardinality — the exact Γ entry the checkpoint feeds back.
    actual_rows: int
    #: ``signature()`` of the plan fragment that produced the relation.
    source_signature: Tuple = ()
    #: How often a later pipeline consumed this intermediate.
    reuse_count: int = 0


@dataclass
class IntermediateRegistry:
    """Materialized intermediates of one adaptive query execution."""

    _entries: Dict[FrozenSet[str], MaterializedIntermediate] = field(default_factory=dict)

    def store(
        self,
        join_set: Iterable[str],
        relation: Relation,
        source_signature: Tuple = (),
    ) -> MaterializedIntermediate:
        """Checkpoint one pipeline output (overwrites a same-key entry)."""
        key = frozenset(join_set)
        if not key:
            raise ValueError("cannot materialize an empty join set")
        entry = MaterializedIntermediate(
            join_set=key,
            relation=relation,
            actual_rows=relation.num_rows,
            source_signature=source_signature,
        )
        self._entries[key] = entry
        return entry

    def get(self, join_set: Iterable[str]) -> Optional[MaterializedIntermediate]:
        """The entry covering exactly ``join_set``, or None."""
        return self._entries.get(frozenset(join_set))

    def relation(self, join_set: Iterable[str]) -> Relation:
        """The materialized relation of ``join_set`` (KeyError if absent);
        bumps the entry's reuse counter."""
        entry = self._entries.get(frozenset(join_set))
        if entry is None:
            raise KeyError(f"no materialized intermediate for {sorted(join_set)!r}")
        entry.reuse_count += 1
        return entry.relation

    def __contains__(self, join_set: Iterable[str]) -> bool:
        return frozenset(join_set) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def join_sets(self) -> List[FrozenSet[str]]:
        """All materialized join sets, largest first (reuse prefers them)."""
        return sorted(self._entries, key=lambda key: (-len(key), sorted(key)))

    def items(self) -> List[Tuple[FrozenSet[str], MaterializedIntermediate]]:
        """(join set, entry) pairs in :meth:`join_sets` order."""
        return [(key, self._entries[key]) for key in self.join_sets()]

    def cardinalities(self) -> Dict[FrozenSet[str], int]:
        """Join set → exact observed cardinality, for every checkpoint."""
        return {key: entry.actual_rows for key, entry in self._entries.items()}

    def total_rows(self) -> int:
        """Rows currently pinned across all materialized intermediates."""
        return sum(entry.actual_rows for entry in self._entries.values())

    def total_reuses(self) -> int:
        """How many times later pipelines consumed stored intermediates."""
        return sum(entry.reuse_count for entry in self._entries.values())
