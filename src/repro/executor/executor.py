"""Plan execution with full instrumentation.

``Executor.execute_plan`` evaluates a physical plan bottom-up over the
in-memory tables and records, for every node:

* the *actual* output cardinality (what the sampling validator and the
  per-experiment reports compare against the optimizer's estimates);
* the *actual* resource vector — the cost-model formulas evaluated at the
  actual cardinalities.

The scalar obtained by pricing that resource vector with the cost units is
the **simulated running time** used throughout the benchmark harness: it is a
deterministic, machine-independent proxy for the wall-clock numbers the paper
reports from its 10 GB PostgreSQL installation, and it preserves the ordering
and rough ratios between plans because it charges exactly the work the plan
actually performs.  Wall-clock time is measured as well and reported next to
the simulated time.

All relational kernels come from :mod:`repro.relalg`.  The executor adds
three physical-execution concerns on top:

* **join dispatch** — ``HASH_JOIN`` (and ``INDEX_NESTED_LOOP``, a lookup-based
  method) runs the hash kernel, ``MERGE_JOIN`` the sort-merge kernel and
  ``NESTED_LOOP`` the block nested-loop kernel, so the cost profiles the
  optimizer distinguishes correspond to genuinely different algorithms;
* **projection pushdown** — scans only materialise the columns later
  predicates, join keys, aggregates or the output need, so joins never carry
  dead columns (a :class:`~repro.relalg.Relation` tracks its row count
  explicitly, which keeps ``COUNT(*)`` correct even with no columns left);
* **morsel-driven parallelism** — when constructed with a parallel
  :class:`~repro.relalg.TaskScheduler`, plan pipelines execute
  morsel-at-a-time: scan filters evaluate one morsel task per chunk, hash
  joins run partition-parallel build/probe tasks, and grouped aggregation
  reduces group-aligned chunks, all on the *shared* worker pool (the same
  pool the sampling validator and the workload driver use).  On the default
  process backend the kernels run on worker *processes* with columns shipped
  once through ``multiprocessing.shared_memory`` descriptors (zero-copy
  attach, no GIL contention), and the executor labels each kernel with its
  pipeline stage (``"filter"``, ``"join"``, ``"aggregate"``) so the
  scheduler's adaptive morsel sizer can grow chunk sizes per stage until
  per-task overhead is negligible.  Every parallel path is bit-identical to
  its serial counterpart, so the per-node instrumentation (actual
  cardinalities, resource vectors, simulated cost) is unchanged by the
  worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.cost.model import CostModel, ResourceVector
from repro.cost.units import CostUnits, DEFAULT_COST_UNITS
from repro.errors import ExecutionError
from repro.executor.materialization import IntermediateRegistry
from repro.relalg import (
    DEFAULT_MORSEL_ROWS,
    Relation,
    TaskScheduler,
    filter_relation,
    group_aggregate,
    merge_join,
    nested_loop_join,
    parallel_hash_join,
)
from repro.plans.nodes import (
    AggregateNode,
    JoinMethod,
    JoinNode,
    MaterializedNode,
    PlanNode,
    ScanMethod,
    ScanNode,
)
from repro.sql.ast import Query
from repro.storage.catalog import Database


@dataclass
class NodeExecution:
    """Instrumentation for one plan node."""

    relations: FrozenSet[str]
    kind: str
    actual_rows: int
    estimated_rows: float
    resources: ResourceVector


@dataclass
class ExecutionResult:
    """The output of executing one plan."""

    columns: Relation
    num_rows: int
    #: Per-node instrumentation, in post-order (children before parents).
    node_executions: List[NodeExecution] = field(default_factory=list)
    #: Sum of all nodes' resource vectors.
    actual_resources: ResourceVector = field(default_factory=ResourceVector)
    #: The resource vectors priced with the executor's cost units — the
    #: deterministic "simulated running time" used by the benchmarks.
    simulated_cost: float = 0.0
    #: Measured wall-clock execution time in seconds.
    wall_seconds: float = 0.0

    def actual_cardinalities(self) -> Dict[FrozenSet[str], int]:
        """Map each join set touched by the plan to its actual cardinality.

        Singleton sets are included: every scan contributes its *post-filter*
        output count, so single-table (join-free) results report their true
        cardinality too — which is what adaptive gating and the golden suite
        assert.  Aggregation nodes are skipped: they share the relation set
        of the join below them but their output count is the number of
        groups, not the join-set cardinality the paper's Γ talks about.
        """
        return {
            execution.relations: execution.actual_rows
            for execution in self.node_executions
            if execution.kind != "aggregate"
        }


def required_columns(plan: PlanNode, query: Optional[Query]) -> Optional[Dict[str, Set[str]]]:
    """Columns each alias must carry past its scan, or ``None`` to keep all.

    The set is the union of the plan's join-key columns and everything the
    query's output (projections, aggregates, group-by) reads.  ``SELECT *``
    queries (and plans executed without a query) disable pushdown.

    For a *complete* plan (one covering every alias, so every join predicate
    of the query is applied at some join node) the result is independent of
    the join order: each alias carries its output columns plus all of its
    join-predicate columns.  The adaptive executor relies on this — an
    intermediate materialized under one plan carries exactly the columns any
    re-planned join order needs above it.
    """
    if query is None:
        return None
    if query.aggregates or query.group_by:
        output = {
            (a.alias, a.column)
            for a in query.aggregates
            if a.alias is not None and a.column is not None
        }
        output |= {(ref.alias, ref.column) for ref in query.group_by}
    elif query.projections:
        output = {(ref.alias, ref.column) for ref in query.projections}
    else:
        return None
    required: Dict[str, Set[str]] = {}
    for alias, column in output:
        required.setdefault(alias, set()).add(column)
    for node in plan.walk():
        if isinstance(node, JoinNode):
            for predicate in node.predicates:
                required.setdefault(predicate.left_alias, set()).add(predicate.left_column)
                required.setdefault(predicate.right_alias, set()).add(predicate.right_column)
        elif isinstance(node, ScanNode):
            required.setdefault(node.alias, set())
    return required


class Executor:
    """Evaluate physical plans over the database."""

    def __init__(
        self,
        db: Database,
        cost_units: CostUnits = DEFAULT_COST_UNITS,
        tuples_per_page: int = 100,
        scheduler: Optional[TaskScheduler] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        nested_loop_block_elements: Optional[int] = None,
        intermediates: Optional[IntermediateRegistry] = None,
    ) -> None:
        self.db = db
        self.cost_model = CostModel(units=cost_units, tuples_per_page=tuples_per_page)
        #: Shared morsel scheduler; ``None`` executes every kernel serially.
        self.scheduler = scheduler
        self.morsel_rows = morsel_rows
        #: Block budget of the nested-loop kernel (``None`` = kernel default);
        #: threaded through from ``OptimizerSettings.nested_loop_block_elements``.
        self.nested_loop_block_elements = nested_loop_block_elements
        #: Registry resolving ``MaterializedNode`` leaves (adaptive execution);
        #: plans without such leaves never consult it.
        self.intermediates = intermediates

    # ------------------------------------------------------------------ #
    # Node evaluation
    # ------------------------------------------------------------------ #
    def _execute_scan(
        self,
        node: ScanNode,
        result: ExecutionResult,
        required: Optional[Dict[str, Set[str]]],
    ) -> Relation:
        table = self.db.table(node.table)
        alias = node.alias
        predicates = list(node.predicates)

        if required is None:
            load = list(table.column_names)
            keep = None
        else:
            carry = required.get(alias, set())
            load = [
                name
                for name in table.column_names
                if name in carry or any(p.column == name for p in predicates)
            ]
            keep = {f"{alias}.{name}" for name in carry}

        if node.method is ScanMethod.INDEX_SCAN and node.index_column is not None:
            index_predicate = next(
                (p for p in predicates if p.column == node.index_column and p.op == "="), None
            )
        else:
            index_predicate = None

        if index_predicate is not None:
            index = self.db.hash_index(node.table, node.index_column)
            row_ids = index.lookup(index_predicate.value)
            matched = len(row_ids)
            relation = Relation.from_table(table, alias, load).take(row_ids)
            residual = [p for p in predicates if p is not index_predicate]
            relation = filter_relation(
                relation, alias, residual, self.scheduler, self.morsel_rows,
                stage="filter",
            )
            output_rows = relation.num_rows
            resources = self.cost_model.index_scan_resources(
                table.num_rows, matched, len(residual), output_rows
            )
        else:
            relation = Relation.from_table(table, alias, load)
            relation = filter_relation(
                relation, alias, predicates, self.scheduler, self.morsel_rows,
                stage="filter",
            )
            output_rows = relation.num_rows
            resources = self.cost_model.seq_scan_resources(
                table.num_rows, len(predicates), output_rows
            )
        if keep is not None:
            relation = relation.project(keep)

        result.node_executions.append(
            NodeExecution(
                relations=frozenset(node.relations),
                kind=f"scan:{node.method.value}",
                actual_rows=output_rows,
                estimated_rows=node.estimated_rows,
                resources=resources,
            )
        )
        return relation

    def _execute_join(
        self,
        node: JoinNode,
        result: ExecutionResult,
        required: Optional[Dict[str, Set[str]]],
    ) -> Relation:
        if node.left is None or node.right is None:
            raise ExecutionError("join node is missing an input")
        left_relation = self._execute_node(node.left, result, required)
        right_relation = self._execute_node(node.right, result, required)
        left_rows = left_relation.num_rows
        right_rows = right_relation.num_rows

        if node.method is JoinMethod.MERGE_JOIN:
            joined = merge_join(
                left_relation, right_relation, node.predicates,
                frozenset(node.left.relations),
            )
        elif node.method is JoinMethod.NESTED_LOOP:
            joined = nested_loop_join(
                left_relation, right_relation, node.predicates,
                frozenset(node.left.relations),
                block_elements=self.nested_loop_block_elements,
            )
        elif node.method in (JoinMethod.HASH_JOIN, JoinMethod.INDEX_NESTED_LOOP):
            # INDEX_NESTED_LOOP is lookup-based and shares the build/probe
            # kernel (its cost profile differs, its output not).  With a
            # parallel scheduler the kernel runs partition-parallel; the
            # output is bit-identical either way.
            joined = parallel_hash_join(
                left_relation, right_relation, node.predicates,
                frozenset(node.left.relations),
                scheduler=self.scheduler,
            )
        else:
            raise ExecutionError(f"unsupported join method {node.method!r}")
        output_rows = joined.num_rows

        inner_table_rows = 0.0
        if node.method is JoinMethod.INDEX_NESTED_LOOP and isinstance(node.right, ScanNode):
            inner_table_rows = float(self.db.table(node.right.table).num_rows)
        resources = self.cost_model.join_resources(
            node.method,
            outer_rows=left_rows,
            inner_rows=right_rows,
            output_rows=output_rows,
            inner_table_rows=inner_table_rows,
        )
        result.node_executions.append(
            NodeExecution(
                relations=frozenset(node.relations),
                kind=f"join:{node.method.value}",
                actual_rows=output_rows,
                estimated_rows=node.estimated_rows,
                resources=resources,
            )
        )
        return joined

    def _execute_aggregate(
        self,
        node: AggregateNode,
        result: ExecutionResult,
        required: Optional[Dict[str, Set[str]]],
    ) -> Relation:
        if node.child is None:
            raise ExecutionError("aggregate node is missing its input")
        child_relation = self._execute_node(node.child, result, required)
        input_rows = child_relation.num_rows
        output = group_aggregate(
            child_relation,
            node.group_by,
            node.aggregates,
            scheduler=self.scheduler,
            morsel_rows=self.morsel_rows,
            stage="aggregate",
        )
        output_rows = output.num_rows
        resources = self.cost_model.aggregate_resources(input_rows, output_rows)
        result.node_executions.append(
            NodeExecution(
                relations=frozenset(node.relations),
                kind="aggregate",
                actual_rows=output_rows,
                estimated_rows=node.estimated_rows,
                resources=resources,
            )
        )
        return output

    def _execute_materialized(
        self, node: MaterializedNode, result: ExecutionResult
    ) -> Relation:
        """Resolve a materialized leaf from the intermediate registry.

        Reuse is free by construction: the resources that produced the
        relation were charged when its pipeline originally ran, so the node
        contributes an empty resource vector (only its cardinality, for the
        instrumentation consumers).
        """
        if self.intermediates is None:
            raise ExecutionError(
                "plan contains a MaterializedNode but the executor has no "
                "intermediate registry attached"
            )
        relation = self.intermediates.relation(node.relations)
        result.node_executions.append(
            NodeExecution(
                relations=frozenset(node.relations),
                kind="materialized",
                actual_rows=relation.num_rows,
                estimated_rows=node.estimated_rows,
                resources=ResourceVector(),
            )
        )
        return relation

    def _execute_node(
        self,
        node: PlanNode,
        result: ExecutionResult,
        required: Optional[Dict[str, Set[str]]],
    ) -> Relation:
        if isinstance(node, ScanNode):
            return self._execute_scan(node, result, required)
        if isinstance(node, JoinNode):
            return self._execute_join(node, result, required)
        if isinstance(node, MaterializedNode):
            return self._execute_materialized(node, result)
        if isinstance(node, AggregateNode):
            return self._execute_aggregate(node, result, required)
        raise ExecutionError(f"unknown plan node type {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute_fragment(
        self,
        fragment: PlanNode,
        required: Optional[Dict[str, Set[str]]] = None,
    ) -> ExecutionResult:
        """Execute one plan fragment (a pipeline) without output shaping.

        This is the adaptive executor's building block: the fragment runs
        with the usual per-node instrumentation, but its output relation is
        returned *raw* (``result.columns``, encoded columns untouched, no
        projection to the query's output), so it can feed later pipelines.
        ``required`` is the column-requirement map of the **complete** plan
        the fragment belongs to (see :func:`required_columns`) — passing the
        fragment's own map would under-project its scans.
        """
        result = ExecutionResult(columns=Relation(), num_rows=0)
        started = time.perf_counter()
        relation = self._execute_node(fragment, result, required)
        result.wall_seconds = time.perf_counter() - started
        result.columns = relation
        result.num_rows = relation.num_rows
        total = ResourceVector()
        for execution in result.node_executions:
            total = total + execution.resources
        result.actual_resources = total
        result.simulated_cost = self.cost_model.cost(total)
        return result

    def execute_plan(self, plan: PlanNode, query: Optional[Query] = None) -> ExecutionResult:
        """Execute a physical plan and return the instrumented result."""
        result = ExecutionResult(columns=Relation(), num_rows=0)
        required = required_columns(plan, query)
        started = time.perf_counter()
        relation = self._execute_node(plan, result, required)
        result.wall_seconds = time.perf_counter() - started

        # Project to the query's requested output columns if it asked for
        # specific columns and no aggregation already shaped the output.
        if query is not None and query.projections and not query.aggregates and not query.group_by:
            relation = relation.project(f"{ref.alias}.{ref.column}" for ref in query.projections)

        result.columns = relation.decoded()
        result.num_rows = relation.num_rows
        total = ResourceVector()
        for execution in result.node_executions:
            total = total + execution.resources
        result.actual_resources = total
        result.simulated_cost = self.cost_model.cost(total)
        return result

    def execute(self, query: Query, plan: Optional[PlanNode] = None) -> ExecutionResult:
        """Optimize (if needed) and execute ``query``."""
        if plan is None:
            from repro.optimizer.optimizer import Optimizer

            plan = Optimizer(self.db).optimize(query)
        return self.execute_plan(plan, query)
