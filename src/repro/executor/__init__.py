"""Vectorised query executor with cardinality and cost instrumentation."""

from __future__ import annotations

from repro.executor.executor import ExecutionResult, Executor, required_columns
from repro.executor.materialization import (
    IntermediateRegistry,
    MaterializedIntermediate,
    canonical_row_order,
    canonicalize_relation,
)

__all__ = [
    "ExecutionResult",
    "Executor",
    "IntermediateRegistry",
    "MaterializedIntermediate",
    "canonical_row_order",
    "canonicalize_relation",
    "required_columns",
]
