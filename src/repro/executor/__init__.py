"""Vectorised query executor with cardinality and cost instrumentation."""

from __future__ import annotations

from repro.executor.executor import ExecutionResult, Executor

__all__ = ["ExecutionResult", "Executor"]
