"""Vectorised kernels shared by the physical operators.

A *relation* during execution is a mapping from qualified column names
(``"alias.column"``) to NumPy arrays of equal length.  The kernels below
implement predicate filtering, equi-joins (sort + binary-search based, which
behaves like a hash join for our purposes) and grouped aggregation over that
representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.sql.ast import Aggregate, ColumnRef, JoinPredicate, LocalPredicate

#: The runtime relation representation.
Relation = Dict[str, np.ndarray]


def relation_num_rows(relation: Relation) -> int:
    """Number of rows of a runtime relation (0 for an empty mapping)."""
    if not relation:
        return 0
    return len(next(iter(relation.values())))


def empty_like(relation: Relation) -> Relation:
    """A zero-row relation with the same columns as ``relation``."""
    return {name: array[:0] for name, array in relation.items()}


def apply_predicate_mask(
    relation: Relation, alias: str, predicates: Sequence[LocalPredicate]
) -> Relation:
    """Filter a relation by a conjunction of local predicates on ``alias``."""
    if not predicates:
        return relation
    rows = relation_num_rows(relation)
    mask = np.ones(rows, dtype=bool)
    for predicate in predicates:
        key = f"{alias}.{predicate.column}"
        if key not in relation:
            raise ExecutionError(f"column {key!r} missing during predicate evaluation")
        values = relation[key]
        if predicate.op == "=":
            mask &= values == predicate.value
        elif predicate.op == "<>":
            mask &= values != predicate.value
        elif predicate.op == "<":
            mask &= values < predicate.value
        elif predicate.op == "<=":
            mask &= values <= predicate.value
        elif predicate.op == ">":
            mask &= values > predicate.value
        elif predicate.op == ">=":
            mask &= values >= predicate.value
        else:  # pragma: no cover - validated at parse time
            raise ExecutionError(f"unsupported operator {predicate.op!r}")
    return {name: array[mask] for name, array in relation.items()}


def equi_join(
    left: Relation,
    right: Relation,
    predicates: Sequence[JoinPredicate],
    left_aliases: frozenset,
) -> Relation:
    """Join two relations on equi-join predicates (cross product if none).

    The first predicate drives a sort/binary-search match; the remaining
    predicates are applied as residual filters on the matched row pairs.
    ``left_aliases`` tells the kernel which side of each predicate lives in
    the left relation.
    """
    left_rows = relation_num_rows(left)
    right_rows = relation_num_rows(right)
    merged_columns = {**left, **right}
    if left_rows == 0 or right_rows == 0:
        return empty_like(merged_columns)

    if not predicates:
        left_index = np.repeat(np.arange(left_rows), right_rows)
        right_index = np.tile(np.arange(right_rows), left_rows)
    else:
        def key_arrays(predicate: JoinPredicate) -> Tuple[np.ndarray, np.ndarray]:
            if predicate.left_alias in left_aliases:
                return (
                    left[f"{predicate.left_alias}.{predicate.left_column}"],
                    right[f"{predicate.right_alias}.{predicate.right_column}"],
                )
            return (
                left[f"{predicate.right_alias}.{predicate.right_column}"],
                right[f"{predicate.left_alias}.{predicate.left_column}"],
            )

        first, *rest = predicates
        left_key, right_key = key_arrays(first)
        order = np.argsort(right_key, kind="stable")
        sorted_right = right_key[order]
        starts = np.searchsorted(sorted_right, left_key, side="left")
        ends = np.searchsorted(sorted_right, left_key, side="right")
        counts = ends - starts
        total = int(counts.sum())
        left_index = np.repeat(np.arange(left_rows), counts)
        if total == 0:
            right_index = np.empty(0, dtype=np.int64)
        else:
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            positions = np.arange(total) - np.repeat(offsets, counts)
            right_index = order[np.repeat(starts, counts) + positions]
        for predicate in rest:
            left_values, right_values = key_arrays(predicate)
            keep = left_values[left_index] == right_values[right_index]
            left_index = left_index[keep]
            right_index = right_index[keep]

    result: Relation = {}
    for name, array in left.items():
        result[name] = array[left_index]
    for name, array in right.items():
        result[name] = array[right_index]
    return result


def nested_loop_join(
    left: Relation,
    right: Relation,
    predicates: Sequence[JoinPredicate],
    left_aliases: frozenset,
) -> Relation:
    """Reference nested-loop join (same semantics as :func:`equi_join`).

    Kept separate so the executor can attribute a different cost profile to
    nested-loop plans; the produced rows are identical to :func:`equi_join`.
    """
    return equi_join(left, right, predicates, left_aliases)


def group_aggregate(
    relation: Relation,
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[Aggregate],
) -> Relation:
    """Grouped aggregation over a runtime relation.

    With an empty ``group_by`` the result has exactly one row (global
    aggregates over an empty input produce count=0 and NaN for the others,
    which is close enough to SQL semantics for the workloads used here).
    """
    rows = relation_num_rows(relation)
    result: Relation = {}

    def aggregate_values(values: Optional[np.ndarray], func: str, count: int) -> object:
        if func == "count":
            return count
        if values is None or len(values) == 0:
            return float("nan")
        numeric = values.astype(np.float64)
        if func == "sum":
            return float(numeric.sum())
        if func == "avg":
            return float(numeric.mean())
        if func == "min":
            return float(numeric.min())
        return float(numeric.max())

    if not group_by:
        for aggregate in aggregates:
            if aggregate.column is not None:
                values = relation.get(f"{aggregate.alias}.{aggregate.column}")
            else:
                values = None
            result[aggregate.output_name] = np.array(
                [aggregate_values(values, aggregate.func, rows)], dtype=object
            )
        return result

    key_names = [f"{ref.alias}.{ref.column}" for ref in group_by]
    key_arrays = [relation[name] for name in key_names]
    if rows == 0:
        for name in key_names:
            result[name] = relation[name][:0]
        for aggregate in aggregates:
            result[aggregate.output_name] = np.empty(0, dtype=object)
        return result

    # Build a group id per row by lexicographically sorting the key tuple.
    order = np.lexsort(tuple(reversed(key_arrays)))
    sorted_keys = [array[order] for array in key_arrays]
    changes = np.zeros(rows, dtype=bool)
    changes[0] = True
    for array in sorted_keys:
        changes[1:] |= array[1:] != array[:-1]
    group_ids = np.cumsum(changes) - 1
    num_groups = int(group_ids[-1]) + 1
    group_starts = np.nonzero(changes)[0]

    for name, array in zip(key_names, sorted_keys):
        result[name] = array[group_starts]
    group_ends = np.concatenate((group_starts[1:], [rows]))
    for aggregate in aggregates:
        values_sorted = None
        if aggregate.column is not None:
            values_sorted = relation[f"{aggregate.alias}.{aggregate.column}"][order]
        outputs = []
        for start, end in zip(group_starts, group_ends):
            group_values = values_sorted[start:end] if values_sorted is not None else None
            outputs.append(aggregate_values(group_values, aggregate.func, end - start))
        result[aggregate.output_name] = np.array(outputs, dtype=object)
    return result
