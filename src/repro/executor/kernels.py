"""Compatibility pointer — the executor's kernels live in :mod:`repro.relalg`.

This module used to hold the executor's private predicate/join/aggregation
kernels.  Those implementations moved to the shared relational-algebra core,
which both the executor and the sampling-based cardinality estimator run on:

* predicate filtering → :mod:`repro.relalg.predicates`
* equi-joins (hash / sort-merge / nested-loop) → :mod:`repro.relalg.joins`
* grouped aggregation → :mod:`repro.relalg.aggregate`
* the runtime relation representation → :mod:`repro.relalg.relation`

Nothing inside the repository imports this module anymore; it remains only
as a stable import path for external code written against the seed API,
re-exporting the historical names.  New code should import from
:mod:`repro.relalg` directly.
"""

from __future__ import annotations

from repro.relalg import (
    Relation,
    RelationLike,
    as_relation,
    filter_relation,
    group_aggregate,
    hash_join,
    nested_loop_join,
    relation_num_rows,
)

#: Historical names from the seed kernel module.
apply_predicate_mask = filter_relation
equi_join = hash_join


def empty_like(relation: RelationLike) -> Relation:
    """A zero-row relation with the same columns as ``relation``."""
    return as_relation(relation).empty_like()


__all__ = [
    "Relation",
    "apply_predicate_mask",
    "empty_like",
    "equi_join",
    "group_aggregate",
    "nested_loop_join",
    "relation_num_rows",
]
