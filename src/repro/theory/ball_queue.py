"""The ball-queue probabilistic model (Procedure 1, Lemma 1, Theorem 3).

Section 3.3.1 models re-optimization as a queue of ``N`` balls (join trees
ordered by estimated cost).  Each step takes the head ball; if it is already
marked (validated) the procedure stops, otherwise it is marked and re-inserted
at a uniformly random position.  The expected number of steps is

    S_N = sum_{k=1..N} k * (1 - 1/N) * ... * (1 - (k-1)/N) * k/N        (Eq. 1)

and Theorem 3 shows ``S_N = O(sqrt(N))``.  Figure 3 plots ``S_N`` against
``sqrt(N)`` and ``2*sqrt(N)`` for ``N`` up to 1000; :func:`expected_steps_curve`
regenerates exactly that data, and :func:`simulate_procedure1` provides an
independent Monte-Carlo check of the closed form.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def expected_steps(n: int) -> float:
    """Exact ``S_N`` of Equation 1 for ``N = n``.

    The product ``(1 - 1/N)...(1 - (k-1)/N)`` is accumulated incrementally so
    the computation is linear in ``N`` and numerically stable (every factor is
    in ``[0, 1]``).
    """
    if n < 1:
        raise ValueError("N must be at least 1")
    total = 0.0
    survival = 1.0  # prod_{j=1}^{k-1} (1 - j/N), starts at the empty product
    for k in range(1, n + 1):
        total += k * survival * (k / n)
        survival *= 1.0 - k / n
        if survival <= 0.0:
            break
    return total


def expected_steps_curve(max_n: int = 1000, step: int = 1) -> Dict[int, float]:
    """``S_N`` for ``N = 1, 1 + step, ...`` up to ``max_n`` (the data behind Figure 3)."""
    return {n: expected_steps(n) for n in range(1, max_n + 1, step)}


def simulate_procedure1(
    n: int,
    trials: int = 1000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the expected number of steps of Procedure 1.

    Each trial simulates the queue of ``n`` balls directly: take the head
    ball, stop if it is marked, otherwise mark it and re-insert it at a
    uniformly random position (1-based position ``i`` chosen uniformly from
    ``1..n``).  Following Lemma 1's convention, the count is the number of
    *marking* steps performed before the terminating probe (so the result is
    directly comparable to :func:`expected_steps`).
    """
    if n < 1:
        raise ValueError("N must be at least 1")
    rng = np.random.default_rng(seed)
    total_steps = 0
    for _ in range(trials):
        queue: List[int] = list(range(n))
        marked = [False] * n
        steps = 0
        while True:
            head = queue.pop(0)
            if marked[head]:
                break
            steps += 1
            marked[head] = True
            position = int(rng.integers(0, n))
            queue.insert(min(position, len(queue)), head)
        total_steps += steps
    return total_steps / trials


def sqrt_bound_holds(max_n: int = 1000, factor: float = 2.0) -> bool:
    """Check ``S_N <= factor * sqrt(N)`` over a range of N (Theorem 3's shape).

    The paper's Figure 3 shows ``S_N`` sandwiched between ``sqrt(N)`` and
    ``2 sqrt(N)`` for N up to 1000; this helper verifies the upper envelope.
    """
    for n in range(1, max_n + 1):
        if expected_steps(n) > factor * np.sqrt(n) + 1e-9:
            return False
    return True
