"""Theoretical model of the re-optimization loop (Section 3 and Appendix B)."""

from __future__ import annotations

from repro.theory.ball_queue import expected_steps, expected_steps_curve, simulate_procedure1
from repro.theory.special_cases import (
    overestimation_only_bound,
    underestimation_only_expected_steps,
)

__all__ = [
    "expected_steps",
    "expected_steps_curve",
    "overestimation_only_bound",
    "simulate_procedure1",
    "underestimation_only_expected_steps",
]
