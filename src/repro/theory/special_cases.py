"""Special-case convergence bounds of Appendix B.

For left-deep join trees the paper derives tighter bounds than the general
``O(sqrt(N))`` result when all local estimation errors go one way:

* **overestimation only** (Theorem 7) — the loop terminates within ``m + 1``
  steps, where ``m`` is the number of joins in the query, because each round
  validates at least one more join of the final plan;
* **underestimation only** — partitioning the left-deep trees by their first
  join (an edge of the join graph with ``M`` edges) gives an expected
  ``S_{N/M}`` steps, which is much smaller than ``S_N``.

These functions compute the bounds so that the experiments (and the property
tests) can compare observed round counts against them.
"""

from __future__ import annotations

from repro.theory.ball_queue import expected_steps


def overestimation_only_bound(num_joins: int) -> int:
    """Worst-case number of rounds when all errors are overestimates (Theorem 7)."""
    if num_joins < 0:
        raise ValueError("number of joins cannot be negative")
    return num_joins + 1


def underestimation_only_expected_steps(num_join_trees: int, num_join_graph_edges: int) -> float:
    """Expected rounds when all errors are underestimates: ``S_{N/M}`` (Appendix B.2)."""
    if num_join_trees < 1:
        raise ValueError("the search space must contain at least one join tree")
    if num_join_graph_edges < 1:
        raise ValueError("the join graph must contain at least one edge")
    per_partition = max(1, num_join_trees // num_join_graph_edges)
    return expected_steps(per_partition)
