"""Algorithm 1 — sampling-based query re-optimization.

The loop is the paper's:

1. ``Γ ← ∅`` (or a caller-provided warm Γ, see the workload driver);
2. ask the (unmodified) optimizer for a plan given Γ;
3. if the plan is identical to the plan of *any* earlier round, stop — a
   re-surfaced plan is already fully validated, so Γ cannot grow and the
   loop would only oscillate between covered plans;
4. otherwise run the plan's joins over the sample tables, producing the
   validated cardinalities Δ, and merge ``Γ ← Γ ∪ Δ``;
5. if the merge added **zero new entries**, stop — the plan is covered by
   the earlier plans (the coverage argument behind Theorem 1: an unchanged
   Γ makes the deterministic optimizer re-produce this very plan, so it is
   the fixed point);
6. go to 2.

Each round plans through one :class:`~repro.optimizer.optimizer.PlanningSession`,
so the System-R DP memo survives between rounds and round ``i+1`` re-expands
only the masks dirtied by Δ_i — the incremental planning that keeps the
paper's re-optimization overhead argument (Section 3.3) true in practice.

The only policy knobs beyond the paper's algorithm are practical safeguards
the paper itself discusses in Section 5.4: an optional bound on the number of
rounds and an optional sampling-time budget, after which the best plan seen
so far (by sampled-cost estimate) is returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cardinality.gamma import Gamma
from repro.cardinality.sampling_estimator import SamplingEstimator
from repro.errors import SamplingError
from repro.optimizer.optimizer import Optimizer, PlanningSession
from repro.optimizer.settings import OptimizerSettings
from repro.plans.join_tree import classify_transformation, plans_identical
from repro.plans.nodes import PlanNode
from repro.relalg import TaskScheduler
from repro.reopt.report import ReoptimizationReport, RoundRecord
from repro.sql.ast import Query
from repro.storage.catalog import Database
from repro.storage.sampling import DEFAULT_SAMPLING_RATIO


@dataclass(frozen=True)
class ReoptimizationSettings:
    """Policy knobs around Algorithm 1."""

    #: Hard bound on the number of optimizer invocations (rounds).  The paper
    #: observes fewer than 10 rounds for every tested query; the default is a
    #: generous safety net, not a tuning knob.
    max_rounds: int = 20
    #: Optional budget (seconds) for time spent validating plans over samples;
    #: ``None`` disables the budget (Section 5.4 discusses such timeouts).
    sampling_time_budget: Optional[float] = None
    #: Sampling ratio used when the database has no samples yet.
    sampling_ratio: float = DEFAULT_SAMPLING_RATIO
    #: Seed used when samples have to be created on the fly.
    sampling_seed: int = 42
    #: Also validate base-relation (selection) cardinalities over the samples.
    #: The paper validates join predicates only (Section 2); enabling this is
    #: an ablation knob.
    validate_base_relations: bool = False


@dataclass
class ReoptimizationResult:
    """Outcome of re-optimizing one query."""

    query: Query
    final_plan: PlanNode
    original_plan: PlanNode
    report: ReoptimizationReport
    gamma: Gamma
    #: Total wall-clock seconds spent inside the re-optimization loop
    #: (optimizer invocations + sampling validation).
    reoptimization_seconds: float = 0.0
    #: True when the loop stopped because the plan stopped changing (as
    #: opposed to hitting the round/time budget).
    converged: bool = True

    @property
    def rounds(self) -> int:
        """Number of optimizer invocations performed."""
        return self.report.num_plans_generated

    @property
    def plan_changed(self) -> bool:
        """True if the final plan differs from the optimizer's original plan."""
        return not plans_identical(self.final_plan, self.original_plan)


class Reoptimizer:
    """Drives Algorithm 1 for queries against one database."""

    def __init__(
        self,
        db: Database,
        optimizer: Optional[Optimizer] = None,
        settings: Optional[ReoptimizationSettings] = None,
        optimizer_settings: Optional[OptimizerSettings] = None,
        scheduler: Optional[TaskScheduler] = None,
    ) -> None:
        self.db = db
        if optimizer is not None:
            self.optimizer = optimizer
        else:
            self.optimizer = Optimizer(db, settings=optimizer_settings)
        self.settings = settings if settings is not None else ReoptimizationSettings()
        #: Shared morsel scheduler handed to the sampling validator, so plan
        #: validation parallelises intra-query on the same pool the executor
        #: and the workload driver use (``None`` = serial validation).
        self.scheduler = scheduler

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def reoptimize(
        self,
        query: Query,
        gamma: Optional[Gamma] = None,
        session: Optional["PlanningSession"] = None,
    ) -> ReoptimizationResult:
        """Run Algorithm 1 on ``query`` and return the full result.

        Termination (besides the round/time budgets) happens when either

        * the new plan is identical to the plan of **any** earlier round —
          not just the immediately preceding one, which would loop forever
          on an A→B→A oscillation re-validating already-covered plans — or
        * validating the new plan added **zero new entries** to Γ: the plan
          is covered (Theorem 1), Γ stops growing, and the deterministic
          optimizer would re-produce the same plan next round.

        ``gamma`` may carry pre-validated cardinalities (the workload driver
        shares Γ between identically-fingerprinted queries); it is mutated in
        place, exactly as Algorithm 1 writes ``Γ ← Γ ∪ Δ``.

        ``session`` may be a caller-held :class:`PlanningSession` already
        targeting ``query`` (the query service re-plans a template through
        the session it keeps per template, carrying GEQO seed orders across
        parameter bindings); by default a fresh session is opened.
        """
        if self.db.samples is None:
            self.db.create_samples(
                ratio=self.settings.sampling_ratio, seed=self.settings.sampling_seed
            )
        sampler = SamplingEstimator(self.db, query, scheduler=self.scheduler)
        if session is None:
            session = self.optimizer.planning_session(query)
        elif session.query is not query:
            raise ValueError("caller-provided planning session targets a different query")

        gamma = gamma if gamma is not None else Gamma()
        report = ReoptimizationReport(query_name=query.name)
        started = time.perf_counter()
        converged = False
        sampling_spent = 0.0

        for round_number in range(1, self.settings.max_rounds + 1):
            planning_started = time.perf_counter()
            plan = session.optimize(gamma)
            planning_seconds = time.perf_counter() - planning_started
            previous_plan = report.rounds[-1].plan if report.rounds else None
            transformation = (
                classify_transformation(previous_plan, plan) if previous_plan is not None else None
            )
            record = RoundRecord(
                round_number=round_number,
                plan=plan,
                estimated_cost=plan.estimated_cost,
                estimated_rows=plan.estimated_rows,
                transformation=transformation,
                planning_seconds=planning_seconds,
                dp_masks_expanded=session.last_masks_expanded,
            )
            report.rounds.append(record)

            if any(plans_identical(plan, earlier.plan) for earlier in report.rounds[:-1]):
                converged = True
                break

            validation = sampler.validate_plan(
                plan, validate_base_relations=self.settings.validate_base_relations
            )
            record.sampling_seconds = validation.elapsed_seconds
            if self.scheduler is not None:
                # Lifetime high-water mark as of this round's end (the
                # scheduler is shared; see RoundRecord.scheduler_queue_depth).
                record.scheduler_queue_depth = self.scheduler.max_queue_depth
            sampling_spent += validation.elapsed_seconds
            record.new_gamma_entries = gamma.merge(validation.cardinalities)

            if record.new_gamma_entries == 0:
                # Coverage (Theorem 1): Γ did not grow, so the optimizer's
                # next answer would be this very plan — it is the fixed point.
                converged = True
                break

            if (
                self.settings.sampling_time_budget is not None
                and sampling_spent >= self.settings.sampling_time_budget
            ):
                break

        elapsed = time.perf_counter() - started
        final_plan = self._select_final_plan(report, gamma, converged)
        return ReoptimizationResult(
            query=query,
            final_plan=final_plan,
            original_plan=report.original_plan(),
            report=report,
            gamma=gamma,
            reoptimization_seconds=elapsed,
            converged=converged,
        )

    # ------------------------------------------------------------------ #
    # Fixed-point / fallback plan selection
    # ------------------------------------------------------------------ #
    def _select_final_plan(
        self, report: ReoptimizationReport, gamma: Gamma, converged: bool
    ) -> PlanNode:
        """Pick the plan Algorithm 1 returns.

        On convergence that is simply the last plan (the fixed point).  If the
        loop was cut short by the round/time budget, Section 5.4's fallback is
        used: re-cost every generated plan under the validated cardinalities
        in Γ and return the cheapest.
        """
        if converged or len(report.rounds) == 1:
            return report.final_plan()
        best_plan = None
        best_cost = float("inf")
        for record in report.rounds:
            cost = self._sampled_cost(record.plan, gamma)
            if cost < best_cost:
                best_cost = cost
                best_plan = record.plan
        return best_plan if best_plan is not None else report.final_plan()

    def _sampled_cost(self, plan: PlanNode, gamma: Gamma) -> float:
        """Re-cost ``plan`` using Γ where available (the paper's cost_s)."""
        from repro.plans.nodes import AggregateNode, JoinNode, ScanNode

        cost_model = self.optimizer.cost_model
        total = 0.0

        def rows_for(node: PlanNode) -> float:
            validated = gamma.get(node.relations)
            if validated is not None:
                return validated
            return node.estimated_rows

        for node in plan.walk():
            if isinstance(node, ScanNode):
                table = self.db.table(node.table)
                resources = cost_model.scan_resources(
                    node.method,
                    table_rows=float(table.num_rows),
                    output_rows=rows_for(node),
                    num_predicates=len(node.predicates),
                    index_matched_rows=rows_for(node),
                )
            elif isinstance(node, JoinNode):
                inner_table_rows = 0.0
                if isinstance(node.right, ScanNode):
                    inner_table_rows = float(self.db.table(node.right.table).num_rows)
                resources = cost_model.join_resources(
                    node.method,
                    outer_rows=rows_for(node.left) if node.left is not None else 0.0,
                    inner_rows=rows_for(node.right) if node.right is not None else 0.0,
                    output_rows=rows_for(node),
                    inner_table_rows=inner_table_rows,
                )
            elif isinstance(node, AggregateNode):
                resources = cost_model.aggregate_resources(
                    rows_for(node.child) if node.child is not None else 0.0,
                    node.estimated_rows,
                )
            else:
                # MaterializedNode leaves (adaptive re-planning) are sunk
                # cost: reuse is free, so they contribute nothing.
                continue
            total += cost_model.cost(resources)
        return total


def reoptimize(
    db: Database,
    query: Query,
    settings: Optional[ReoptimizationSettings] = None,
    optimizer_settings: Optional[OptimizerSettings] = None,
) -> ReoptimizationResult:
    """Convenience wrapper: run Algorithm 1 with default components."""
    reoptimizer = Reoptimizer(db, settings=settings, optimizer_settings=optimizer_settings)
    return reoptimizer.reoptimize(query)
