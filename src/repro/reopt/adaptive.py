"""Mid-execution adaptive re-optimization with intermediate reuse.

The paper validates cardinalities on *samples* before execution;
:class:`AdaptiveExecutor` closes the remaining loop by feeding *true*
cardinalities observed **during** execution back into Γ and re-planning the
rest of the query mid-flight — incremental re-evaluation in the spirit of
Berkholz et al.'s FO+MOD maintenance, built from pieces the engine already
has:

* the executor measures every pipeline's actual output cardinality;
* :meth:`PlanningSession.optimize` re-expands only the Γ-dirtied DP masks,
  so a mid-flight re-plan costs a fraction of the original search;
* Γ ranks *exact* (executed) entries above sampled ones, so observations
  made at run time permanently outrank the estimates that misled the
  optimizer.

Execution proceeds pipeline by pipeline (a pipeline breaker = a completed
scan or join).  Each breaker checkpoints its output into an
:class:`~repro.executor.materialization.IntermediateRegistry` keyed by
join-set fingerprint and records the true cardinality as an exact Γ entry.
When the observed cardinality deviates from the optimizer's estimate by more
than ``AdaptiveSettings.replan_threshold`` (a ratio), the residual query is
re-planned: the DP search is re-entered with every materialized intermediate
pinned as a zero-cost :class:`~repro.plans.nodes.MaterializedNode` leaf, so
the new plan may resume from already-computed intermediates instead of
restarting from scans — and execution continues under whichever residual
plan is now cheapest.

Bit-identity guarantee
----------------------
Adaptive execution returns byte-identical results whatever the threshold,
the number of re-plans, or the intermediates reused — including the
degenerate "static" mode (``replan_threshold=None``), which executes the
optimizer's original plan to completion.  A join's output row *multiset* is
independent of join order, but its row *order* is not; for order-sensitive
outputs (float ``SUM``/``AVG`` accumulation, bare projections) the final
pipeline's rows are therefore put into a canonical full-column order before
the output is shaped, making the result a pure function of the joined row
multiset.  Order-insensitive outputs (``COUNT``/``MIN``/``MAX``, sorted
group keys) skip the sort and are additionally byte-identical to the plain
:class:`~repro.executor.executor.Executor` running the static plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.cardinality.gamma import Gamma
from repro.cost.model import ResourceVector
from repro.executor.executor import ExecutionResult, Executor, required_columns
from repro.executor.materialization import IntermediateRegistry, canonicalize_relation
from repro.optimizer.optimizer import Optimizer, OptimizerSettings, PlanningSession
from repro.plans.join_tree import classify_transformation, plans_identical, replace_subtrees
from repro.plans.nodes import (
    AggregateNode,
    JoinNode,
    MaterializedNode,
    PlanNode,
    ScanNode,
)
from repro.relalg import DEFAULT_MORSEL_ROWS, Relation, TaskScheduler
from repro.reopt.report import ReoptimizationReport, RoundRecord
from repro.sql.ast import Query
from repro.storage.catalog import Database

#: Aggregate functions whose result does not depend on input row order.
_ORDER_INSENSITIVE_AGGREGATES = frozenset({"count", "min", "max"})


@dataclass(frozen=True)
class AdaptiveSettings:
    """Policy knobs of mid-execution re-optimization."""

    #: Re-plan when ``max(est, act) / min(est, act)`` of a completed
    #: pipeline's cardinality reaches this factor; ``None`` disables
    #: re-planning entirely (static mode — the bit-identity baseline).
    replan_threshold: Optional[float] = 2.0
    #: Hard bound on optimizer re-invocations within one execution.
    max_replans: int = 10
    #: Also gate on base-relation (scan) deviations, not only joins.
    gate_scans: bool = True


@dataclass
class CheckpointRecord:
    """One completed pipeline breaker."""

    join_set: FrozenSet[str]
    #: ``"scan"`` or ``"join"`` — what kind of pipeline completed.
    kind: str
    estimated_rows: float
    actual_rows: int
    #: Deviation factor ``max(est, act) / min(est, act)`` (both floored at 1).
    deviation: float
    #: Whether this checkpoint triggered a re-planning round.
    triggered_replan: bool = False
    #: Wall-clock seconds the pipeline took.
    wall_seconds: float = 0.0


@dataclass
class AdaptiveExecutionResult:
    """Outcome of one adaptive execution."""

    query: Query
    #: Merged instrumentation: final output plus every pipeline's node
    #: executions (including the work on intermediates a re-plan abandoned —
    #: the honest total cost of adapting).
    execution: ExecutionResult
    #: The plan execution started from.
    original_plan: PlanNode
    #: The plan execution finished under: the last re-planning round that
    #: actually *switched* the residual plan (== original when every re-plan
    #: merely confirmed the incumbent, or none triggered).
    final_plan: PlanNode
    #: One round per optimizer invocation (round 1 = the original plan),
    #: with ``trigger_join_set``/``plan_switched``/``exact_gamma_entries``
    #: set on the adaptive rounds.
    report: ReoptimizationReport
    #: Γ after execution: an exact entry for every completed pipeline.
    gamma: Gamma
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    #: Optimizer re-invocations triggered by deviations.
    replans: int = 0
    #: Re-plans that actually switched to a different residual plan.
    plan_switches: int = 0
    #: Materialized intermediates (scans and joins) the re-planned trees
    #: resumed from instead of recomputing.
    intermediates_reused: int = 0
    #: Wall-clock seconds spent inside the optimizer mid-flight.
    planning_seconds: float = 0.0

    @property
    def plan_changed(self) -> bool:
        """True when execution finished under a different plan."""
        return not plans_identical(self.final_plan, self.original_plan)

    @property
    def total_seconds(self) -> float:
        """Execution wall clock plus mid-flight planning overhead."""
        return self.execution.wall_seconds + self.planning_seconds

    def actual_cardinalities(self) -> Dict[FrozenSet[str], int]:
        """True cardinality of every join set any executed pipeline touched."""
        return self.execution.actual_cardinalities()


def deviation_factor(estimated: float, actual: float) -> float:
    """How far an estimate is off, as a symmetric ratio (1.0 = spot on).

    Both sides are floored at one row so empty/sub-row estimates do not
    produce infinite factors.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est, act) / min(est, act)


def needs_canonical_order(query: Query) -> bool:
    """Whether the query's output depends on the input row order.

    Bare projections expose row order directly; float ``SUM``/``AVG``
    accumulate in row order.  ``COUNT``/``MIN``/``MAX`` (and group keys,
    which are sorted) do not.
    """
    if not query.aggregates and not query.group_by:
        return True
    return any(a.func not in _ORDER_INSENSITIVE_AGGREGATES for a in query.aggregates)


def _split_aggregate(plan: PlanNode) -> Tuple[PlanNode, Optional[AggregateNode]]:
    """Separate the join pipeline from the optional aggregation on top."""
    if isinstance(plan, AggregateNode):
        if plan.child is None:
            raise ValueError("aggregate node without input")
        return plan.child, plan
    return plan, None


def _next_pipeline(plan: PlanNode) -> Optional[PlanNode]:
    """The next executable pipeline: post-order first scan, or first join
    whose inputs are both already materialized."""
    for node in _post_order(plan):
        if isinstance(node, ScanNode):
            return node
        if isinstance(node, JoinNode):
            if isinstance(node.left, MaterializedNode) and isinstance(
                node.right, MaterializedNode
            ):
                return node
    return None


def _post_order(node: PlanNode) -> Iterator[PlanNode]:
    for child in node.children():
        yield from _post_order(child)
    yield node


class AdaptiveExecutor:
    """Execute queries pipeline-by-pipeline, re-planning on mis-estimates."""

    def __init__(
        self,
        db: Database,
        optimizer: Optional[Optimizer] = None,
        settings: Optional[AdaptiveSettings] = None,
        optimizer_settings: Optional[OptimizerSettings] = None,
        scheduler: Optional[TaskScheduler] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self.db = db
        self.optimizer = (
            optimizer if optimizer is not None else Optimizer(db, settings=optimizer_settings)
        )
        self.settings = settings if settings is not None else AdaptiveSettings()
        self.scheduler = scheduler
        self.morsel_rows = morsel_rows

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query,
        plan: Optional[PlanNode] = None,
        gamma: Optional[Gamma] = None,
    ) -> AdaptiveExecutionResult:
        """Adaptively execute ``query``.

        ``plan`` is the plan to start from (default: the optimizer's static
        choice under ``gamma``).  ``gamma`` may carry pre-validated sampled
        entries (e.g. from a prior Algorithm 1 run); it is mutated in place
        and gains an exact entry for every completed pipeline.
        """
        query.validate()
        gamma = gamma if gamma is not None else Gamma()
        session = self.optimizer.planning_session(query)
        registry = IntermediateRegistry()
        executor = Executor(
            self.db,
            cost_units=self.optimizer.settings.cost_units,
            scheduler=self.scheduler,
            morsel_rows=self.morsel_rows,
            nested_loop_block_elements=self.optimizer.settings.nested_loop_block_elements,
            intermediates=registry,
        )
        if plan is None:
            planning_started = time.perf_counter()
            plan = session.optimize(gamma)
            initial_planning = time.perf_counter() - planning_started
        else:
            initial_planning = 0.0

        report = ReoptimizationReport(query_name=query.name)
        report.rounds.append(
            RoundRecord(
                round_number=1,
                plan=plan,
                estimated_cost=plan.estimated_cost,
                estimated_rows=plan.estimated_rows,
                transformation=None,
                planning_seconds=initial_planning,
                dp_masks_expanded=session.last_masks_expanded,
                exact_gamma_entries=0,
            )
        )

        required = required_columns(plan, query)
        join_plan, aggregate_node = _split_aggregate(plan)
        full_set = frozenset(alias for alias in query.aliases)

        result = AdaptiveExecutionResult(
            query=query,
            execution=ExecutionResult(columns=Relation(), num_rows=0),
            original_plan=plan,
            final_plan=plan,
            report=report,
            gamma=gamma,
        )
        node_executions = []
        execution_seconds = 0.0
        threshold = self.settings.replan_threshold
        current = join_plan

        while True:
            current = replace_subtrees(current, self._reuse_nodes(registry))
            if isinstance(current, MaterializedNode):
                break
            target = _next_pipeline(current)
            if target is None:  # pragma: no cover - defensive: malformed plan
                raise RuntimeError(f"no executable pipeline in plan of {query.name!r}")

            fragment = executor.execute_fragment(target, required)
            execution_seconds += fragment.wall_seconds
            node_executions.extend(fragment.node_executions)
            out_set = frozenset(target.relations)
            relation = fragment.columns
            registry.store(out_set, relation, source_signature=target.signature())
            gamma.record_exact(out_set, relation.num_rows)

            checkpoint = CheckpointRecord(
                join_set=out_set,
                kind="scan" if isinstance(target, ScanNode) else "join",
                estimated_rows=target.estimated_rows,
                actual_rows=relation.num_rows,
                deviation=deviation_factor(target.estimated_rows, relation.num_rows),
                wall_seconds=fragment.wall_seconds,
            )
            result.checkpoints.append(checkpoint)

            if (
                threshold is not None
                and checkpoint.deviation >= threshold
                and result.replans < self.settings.max_replans
                and relation.num_rows > 0  # empty pipelines make the rest free
                and out_set != full_set  # nothing left to re-order
                and (self.settings.gate_scans or checkpoint.kind == "join")
            ):
                checkpoint.triggered_replan = True
                current, aggregate_node = self._replan(
                    session, gamma, registry, report, result,
                    current, aggregate_node, out_set,
                )

        # ------------------------------------------------------------------
        # Final pipeline: canonical ordering (when the output is
        # order-sensitive) and output shaping through the plain executor.
        # ------------------------------------------------------------------
        entry = registry.get(full_set)
        assert entry is not None
        if needs_canonical_order(query):
            entry.relation = canonicalize_relation(entry.relation)
        final_fragment: PlanNode = MaterializedNode(
            relations=full_set,
            estimated_rows=float(entry.actual_rows),
            estimated_cost=0.0,
        )
        if aggregate_node is not None:
            final_fragment = replace(aggregate_node, child=final_fragment)
        final_execution = executor.execute_plan(final_fragment, query)
        execution_seconds += final_execution.wall_seconds
        node_executions.extend(final_execution.node_executions)

        merged = ExecutionResult(
            columns=final_execution.columns,
            num_rows=final_execution.num_rows,
            node_executions=node_executions,
        )
        total = ResourceVector()
        for execution in node_executions:
            total = total + execution.resources
        merged.actual_resources = total
        merged.simulated_cost = executor.cost_model.cost(total)
        merged.wall_seconds = execution_seconds
        result.execution = merged
        return result

    # ------------------------------------------------------------------ #
    # Mid-flight re-planning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reuse_nodes(registry: IntermediateRegistry) -> Dict[FrozenSet[str], PlanNode]:
        """Zero-cost reuse leaves for every materialized intermediate."""
        return {
            key: MaterializedNode(
                relations=key,
                estimated_rows=float(entry.actual_rows),
                estimated_cost=0.0,
            )
            for key, entry in registry.items()
        }

    def _replan(
        self,
        session: PlanningSession,
        gamma: Gamma,
        registry: IntermediateRegistry,
        report: ReoptimizationReport,
        result: AdaptiveExecutionResult,
        current: PlanNode,
        aggregate_node: Optional[AggregateNode],
        trigger: FrozenSet[str],
    ) -> Tuple[PlanNode, Optional[AggregateNode]]:
        """Re-plan the residual query; return the (possibly new) join plan."""
        reuse_nodes = self._reuse_nodes(registry)
        planning_started = time.perf_counter()
        new_plan = session.optimize(gamma, materialized=reuse_nodes)
        planning_seconds = time.perf_counter() - planning_started
        result.planning_seconds += planning_seconds
        result.replans += 1

        new_join_plan, new_aggregate = _split_aggregate(new_plan)
        new_current = replace_subtrees(new_join_plan, reuse_nodes)
        # Collapse the incumbent with the same reuse map before comparing:
        # the pipeline that triggered this re-plan is already materialized,
        # and an optimizer answer that merely confirms the incumbent must
        # not count as a switch.
        current = replace_subtrees(current, reuse_nodes)
        switched = not plans_identical(new_current, current)
        previous_plan = report.rounds[-1].plan
        report.rounds.append(
            RoundRecord(
                round_number=len(report.rounds) + 1,
                plan=new_plan,
                estimated_cost=new_plan.estimated_cost,
                estimated_rows=new_plan.estimated_rows,
                transformation=classify_transformation(previous_plan, new_plan),
                planning_seconds=planning_seconds,
                dp_masks_expanded=session.last_masks_expanded,
                trigger_join_set=trigger,
                plan_switched=switched,
                exact_gamma_entries=len(gamma.exact_join_sets()),
            )
        )
        if not switched:
            return current, aggregate_node
        result.plan_switches += 1
        result.final_plan = new_plan
        result.intermediates_reused += sum(
            1 for node in new_current.walk() if isinstance(node, MaterializedNode)
        )
        return new_current, new_aggregate


def execute_adaptively(
    db: Database,
    query: Query,
    plan: Optional[PlanNode] = None,
    settings: Optional[AdaptiveSettings] = None,
    optimizer_settings: Optional[OptimizerSettings] = None,
    gamma: Optional[Gamma] = None,
) -> AdaptiveExecutionResult:
    """Convenience wrapper: adaptively execute one query with defaults."""
    executor = AdaptiveExecutor(db, settings=settings, optimizer_settings=optimizer_settings)
    return executor.execute(query, plan=plan, gamma=gamma)
