"""The sampling-based query re-optimization loop (Algorithm 1) and its reports."""

from __future__ import annotations

from repro.reopt.algorithm import (
    ReoptimizationResult,
    ReoptimizationSettings,
    Reoptimizer,
    reoptimize,
)
from repro.reopt.report import ReoptimizationReport, RoundRecord

__all__ = [
    "ReoptimizationReport",
    "ReoptimizationResult",
    "ReoptimizationSettings",
    "Reoptimizer",
    "RoundRecord",
    "reoptimize",
]
