"""The sampling-based query re-optimization loop (Algorithm 1), its reports,
the concurrent workload driver, and mid-execution adaptive re-optimization."""

from __future__ import annotations

from repro.reopt.adaptive import (
    AdaptiveExecutionResult,
    AdaptiveExecutor,
    AdaptiveSettings,
    CheckpointRecord,
    deviation_factor,
    execute_adaptively,
    needs_canonical_order,
)
from repro.reopt.algorithm import (
    ReoptimizationResult,
    ReoptimizationSettings,
    Reoptimizer,
    reoptimize,
)
from repro.reopt.driver import (
    DriverSettings,
    DriverStats,
    WorkloadDriver,
    plan_fingerprint,
    statistics_fingerprint,
)
from repro.reopt.report import ReoptimizationReport, RoundRecord

__all__ = [
    "AdaptiveExecutionResult",
    "AdaptiveExecutor",
    "AdaptiveSettings",
    "CheckpointRecord",
    "DriverSettings",
    "DriverStats",
    "deviation_factor",
    "execute_adaptively",
    "needs_canonical_order",
    "ReoptimizationReport",
    "ReoptimizationResult",
    "ReoptimizationSettings",
    "Reoptimizer",
    "RoundRecord",
    "WorkloadDriver",
    "plan_fingerprint",
    "reoptimize",
    "statistics_fingerprint",
]
