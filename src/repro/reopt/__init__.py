"""The sampling-based query re-optimization loop (Algorithm 1), its reports,
and the concurrent workload driver."""

from __future__ import annotations

from repro.reopt.algorithm import (
    ReoptimizationResult,
    ReoptimizationSettings,
    Reoptimizer,
    reoptimize,
)
from repro.reopt.driver import (
    DriverSettings,
    DriverStats,
    WorkloadDriver,
    plan_fingerprint,
    statistics_fingerprint,
)
from repro.reopt.report import ReoptimizationReport, RoundRecord

__all__ = [
    "DriverSettings",
    "DriverStats",
    "ReoptimizationReport",
    "ReoptimizationResult",
    "ReoptimizationSettings",
    "Reoptimizer",
    "RoundRecord",
    "WorkloadDriver",
    "plan_fingerprint",
    "reoptimize",
    "statistics_fingerprint",
]
