"""Concurrent workload driver for Algorithm 1.

The paper re-optimizes one query at a time; a production deployment faces a
*stream* of queries.  :class:`WorkloadDriver` re-optimizes a batch of queries
concurrently — the heavy lifting (sample joins, filters) happens inside numpy
kernels that release the GIL, so threads give real parallelism without
duplicating the database in worker processes.

Parallelism is **morsel-driven**, not thread-per-query: every query's heavy
kernels are split into morsel/partition tasks and submitted into one shared
:class:`~repro.relalg.TaskScheduler` whose ``max_workers`` pool is the single
parallelism budget.  A batch of queries keeps the pool busy with tasks from
many queries at once, and a *single* heavy query fans its own tasks across
the whole pool — the configuration that a one-thread-per-query design left
on one core.  Lightweight per-query coordination (the Algorithm 1 loop, DP
planning — pure Python, GIL-bound either way) runs on cheap coordination
threads that mostly wait on morsel tasks; the scheduler tracks per-query
task/seconds tallies via its accounting labels.

Two batch-level optimizations ride on top:

* **fingerprint-keyed plan cache** — queries with an identical *plan
  fingerprint* (tables, local predicates, join predicates, aggregation block)
  are re-optimized once; later duplicates reuse the finished result at zero
  planning cost.
* **cross-query Γ sharing** — queries with an identical *statistics
  fingerprint* (tables + predicates; the aggregation block may differ) share
  one Γ.  Validated cardinalities are exactly the same for such queries, so a
  later query starts with every earlier validation pre-merged and typically
  converges in a single round.  Sharing is deliberately restricted to exact
  fingerprint matches: Γ entries are cardinalities *after local predicates*,
  so queries that merely touch the same tables with different filters must
  not exchange them.

Both optimizations preserve the *final* plan bit-identically: the whole
pipeline (sampling, estimation, DP search) is deterministic, so a duplicate
query's serial trajectory replays the first query's one, and a Γ-warm-started
run terminates at the same fixed point the cold run reaches.  What a warm
start may legitimately change is the *path*: the uninformed first rounds are
skipped, so the round-1 ("original") plan of a warm-started duplicate is
already the informed one.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cardinality.gamma import Gamma
from repro.optimizer.settings import OptimizerSettings
from repro.relalg import TaskScheduler
from repro.relalg.scheduler import AccountStats, SchedulerStats
from repro.reopt.report import ReoptimizationReport
from repro.reopt.algorithm import (
    ReoptimizationResult,
    ReoptimizationSettings,
    Reoptimizer,
)
from repro.sql.ast import Query

# The plan-cache keys are the *shared* normalized fingerprints (also used by
# the query service's template cache): constants are normalized by value, so
# two queries differing only in a literal never share a plan, while spelling
# differences (``5`` vs ``5.0``, IN-list order) never split the cache.
from repro.sql.fingerprint import plan_fingerprint, statistics_fingerprint
from repro.storage.catalog import Database

__all__ = [
    "DriverSettings",
    "DriverStats",
    "WorkloadDriver",
    "plan_fingerprint",
    "statistics_fingerprint",
]


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DriverSettings:
    """Concurrency and caching knobs of the workload driver."""

    #: Workers of the shared morsel scheduler — the single parallelism
    #: budget: morsel tasks from all in-flight queries compete for this pool,
    #: and one heavy query may occupy all of it.  1 falls back to fully
    #: serial execution; ``"auto"`` sizes by the host (``min(cores - 2,
    #: RAM / 4GB)``, floor 1 — see ``relalg.scheduler.default_worker_count``).
    max_workers: Union[int, str] = 4
    #: Reuse finished results across identically-fingerprinted queries.
    use_plan_cache: bool = True
    #: Share Γ between queries with the same statistics fingerprint.
    share_gamma: bool = True


@dataclass
class DriverStats:
    """What the batch-level optimizations saved."""

    queries_submitted: int = 0
    queries_reoptimized: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Queries that started with a non-empty shared Γ (warm start).
    gamma_warm_starts: int = 0


class WorkloadDriver:
    """Re-optimize batches of queries concurrently against one database.

    The driver is thread-safe and reusable: caches persist across ``run``
    calls, so a second batch over the same workload is answered mostly from
    the plan cache.  The database is only read (samples are created up front,
    before any worker starts).
    """

    def __init__(
        self,
        db: Database,
        optimizer_settings: Optional[OptimizerSettings] = None,
        reopt_settings: Optional[ReoptimizationSettings] = None,
        settings: Optional[DriverSettings] = None,
        scheduler: Optional[TaskScheduler] = None,
    ) -> None:
        self.db = db
        self.optimizer_settings = optimizer_settings
        self.reopt_settings = (
            reopt_settings if reopt_settings is not None else ReoptimizationSettings()
        )
        self.settings = settings if settings is not None else DriverSettings()
        #: The shared morsel scheduler every query's kernels dispatch onto.
        #: Callers may pass one (e.g. the bench harness shares it with the
        #: executor); otherwise it is sized by ``settings.max_workers`` and
        #: owned by the driver, which parks its worker threads after every
        #: ``run`` (the pool respawns lazily on the next batch).
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            scheduler
            if scheduler is not None
            else TaskScheduler(workers=self.settings.max_workers, name="driver")
        )
        if db.samples is None:
            db.create_samples(
                ratio=self.reopt_settings.sampling_ratio,
                seed=self.reopt_settings.sampling_seed,
            )
        self.stats = DriverStats()
        self._lock = threading.Lock()
        self._plan_cache: Dict[Tuple, ReoptimizationResult] = {}
        #: statistics fingerprint → (per-fingerprint lock, shared Γ).  The
        #: per-fingerprint lock serializes the (rare) same-fingerprint
        #: queries so the shared Γ is never mutated concurrently; queries
        #: with different fingerprints run fully in parallel.
        self._shared_gamma: Dict[Tuple, Tuple[threading.Lock, Gamma]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, queries: Sequence[Query]) -> List[ReoptimizationResult]:
        """Re-optimize every query; results are in input order.

        Heavy kernels run as morsel tasks on the shared scheduler whatever
        the batch size: one query fans out across the whole pool, many
        queries interleave their tasks on it.  The coordination threads
        below only drive the (Python-bound) Algorithm 1 loops concurrently
        so independent queries can overlap their morsel work.
        """
        queries = list(queries)
        if not queries:
            return []
        with self._lock:
            self.stats.queries_submitted += len(queries)
        # ``settings.max_workers`` may be "auto"; the scheduler resolved it.
        coordinators = max(1, min(self.scheduler.workers, len(queries)))
        try:
            if coordinators == 1 or not self.scheduler.parallel:
                return [self._run_one(query) for query in queries]
            with ThreadPoolExecutor(
                max_workers=coordinators, thread_name_prefix="reopt-coord"
            ) as pool:
                return list(pool.map(self._run_one, queries))
        finally:
            if self._owns_scheduler:
                # Release the worker threads between batches: counters and
                # caches survive, the pool respawns on the next parallel map.
                self.scheduler.shutdown()

    def scheduler_stats(self) -> SchedulerStats:
        """Snapshot of the shared morsel scheduler's counters."""
        return self.scheduler.stats()

    def query_task_stats(self, query_name: str) -> AccountStats:
        """Morsel-task tally of one query (per-query accounting)."""
        return self.scheduler.account_stats(query_name)

    def shutdown(self) -> None:
        """Stop the shared scheduler's workers.

        A scheduler the driver *owns* is closed terminally — that also
        unlinks any shared-memory segment a crashed kernel may have left
        behind.  A caller-provided scheduler is merely parked (the caller
        owns its lifecycle and may still have kernels in flight elsewhere).
        """
        if self._owns_scheduler:
            self.scheduler.close()
        else:
            self.scheduler.shutdown()

    # ------------------------------------------------------------------ #
    # Per-query pipeline
    # ------------------------------------------------------------------ #
    def _stamp_cache_counters(self, report: ReoptimizationReport) -> None:
        """Record the driver's plan-cache totals on every round record."""
        with self._lock:
            hits, misses = self.stats.plan_cache_hits, self.stats.plan_cache_misses
        for record in report.rounds:
            record.plan_cache_hits = hits
            record.plan_cache_misses = misses

    def _cache_hit(self, cached: ReoptimizationResult, query: Query) -> ReoptimizationResult:
        """Adapt a cached result to the duplicate query that hit the cache.

        The report's rounds still describe the original run's trajectory
        (that work was paid exactly once); the query, the report's name and
        the top-line overhead are this query's own, and Γ is snapshotted so
        the returned result does not alias the still-mutating shared Γ.
        Round records are copied before stamping the cache counters — the
        cached result's own records must keep the counters of *its* run.
        """
        with self._lock:
            self.stats.plan_cache_hits += 1
        report = replace(
            cached.report,
            query_name=query.name,
            rounds=[replace(record) for record in cached.report.rounds],
        )
        result = replace(
            cached,
            query=query,
            report=report,
            gamma=cached.gamma.copy(),
            reoptimization_seconds=0.0,
        )
        self._stamp_cache_counters(report)
        return result

    def _run_one(self, query: Query) -> ReoptimizationResult:
        plan_key = plan_fingerprint(query) if self.settings.use_plan_cache else None
        if plan_key is not None:
            with self._lock:
                cached = self._plan_cache.get(plan_key)
            if cached is not None:
                return self._cache_hit(cached, query)
            with self._lock:
                self.stats.plan_cache_misses += 1

        reoptimizer = Reoptimizer(
            self.db,
            settings=self.reopt_settings,
            optimizer_settings=self.optimizer_settings,
            scheduler=self.scheduler,
        )
        if self.settings.share_gamma:
            gamma_key = statistics_fingerprint(query)
            with self._lock:
                entry = self._shared_gamma.get(gamma_key)
                if entry is None:
                    entry = (threading.Lock(), Gamma())
                    self._shared_gamma[gamma_key] = entry
            gamma_lock, gamma = entry
            with gamma_lock:
                # Re-check the plan cache: a concurrent duplicate may have
                # finished while this thread waited for the Γ lock.
                if plan_key is not None:
                    with self._lock:
                        cached = self._plan_cache.get(plan_key)
                    if cached is not None:
                        return self._cache_hit(cached, query)
                if len(gamma):
                    with self._lock:
                        self.stats.gamma_warm_starts += 1
                with self.scheduler.accounting(query.name):
                    result = reoptimizer.reoptimize(query, gamma=gamma)
                # Snapshot Γ: the shared instance keeps growing as later
                # same-fingerprint queries validate; the result should carry
                # the state as of *this* run's end.
                result = replace(result, gamma=result.gamma.copy())
        else:
            with self.scheduler.accounting(query.name):
                result = reoptimizer.reoptimize(query)

        with self._lock:
            self.stats.queries_reoptimized += 1
            if plan_key is not None and plan_key not in self._plan_cache:
                self._plan_cache[plan_key] = result
        self._stamp_cache_counters(result.report)
        return result
