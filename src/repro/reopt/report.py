"""Structured reports of one re-optimization run.

Besides the final plan, the experiments in the paper look at *how* the loop
got there: how many plans were generated (Figures 5, 8, 16, 20), how much
time the sampling validation took (Figures 6, 9, 17, 18), and how good the
intermediate plans were (Figures 14, 15).  :class:`ReoptimizationReport`
captures all of that, including the classification of every step as a local
or global transformation (Theorem 2's characterisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.plans.join_tree import JoinTree, TransformationKind, classify_transformation
from repro.plans.nodes import PlanNode


@dataclass
class RoundRecord:
    """What happened in one round of Algorithm 1."""

    round_number: int
    plan: PlanNode
    #: Cost estimated by the optimizer when it produced this plan (using the Γ
    #: available at that time).
    estimated_cost: float
    estimated_rows: float
    #: Transformation kind relative to the previous round's plan (None for the
    #: first round).
    transformation: Optional[TransformationKind]
    #: Seconds spent validating this plan over the samples (0 for the final
    #: round, which is never validated because the loop already terminated).
    sampling_seconds: float = 0.0
    #: Number of join sets whose validation added new entries to Γ.
    new_gamma_entries: int = 0
    #: Seconds the optimizer spent producing this round's plan.
    planning_seconds: float = 0.0
    #: DP masks the planner (re-)expanded this round (None on the GEQO path).
    #: Round 1 expands every mask; incremental rounds only the Γ-dirtied ones.
    dp_masks_expanded: Optional[int] = None
    #: High-water queue depth of the shared morsel scheduler *up to the end
    #: of this round's validation* (None when no scheduler was attached).
    #: The mark is monotone over the scheduler's lifetime and the scheduler
    #: is shared, so under the workload driver it reflects pool pressure
    #: from all concurrent queries, not this round alone.
    scheduler_queue_depth: Optional[int] = None
    #: Workload-driver plan-cache counters at the time this run finished
    #: (None outside the driver).  Identical on every round of one run: they
    #: are driver-level totals, recorded here so per-round exports carry the
    #: batch context they ran under.
    plan_cache_hits: Optional[int] = None
    plan_cache_misses: Optional[int] = None
    #: Adaptive (mid-execution) rounds only: the pipeline whose observed
    #: cardinality deviation triggered this re-planning round.
    trigger_join_set: Optional[FrozenSet[str]] = None
    #: Adaptive rounds only: whether the optimizer actually produced a
    #: different residual plan (False = it confirmed the incumbent).
    plan_switched: Optional[bool] = None
    #: Adaptive rounds only: number of exact (executed) Γ entries available
    #: when this round planned.
    exact_gamma_entries: Optional[int] = None


@dataclass
class ReoptimizationReport:
    """Aggregated view over all rounds of one re-optimization run."""

    query_name: str
    rounds: List[RoundRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Derived quantities used by the figures
    # ------------------------------------------------------------------ #
    @property
    def num_plans_generated(self) -> int:
        """Number of optimizer invocations — the metric of Figures 5/8/16/20.

        A final invocation that re-produces an earlier plan is counted,
        matching the paper's "number of plans generated during
        re-optimization".  A loop cut short by the coverage test (a
        validation that added no new Γ entries) never makes that redundant
        final invocation, so a single round is possible (e.g. join-free
        queries).
        """
        return len(self.rounds)

    @property
    def num_distinct_plans(self) -> int:
        """Number of structurally distinct plans among the rounds."""
        signatures = {record.plan.signature() for record in self.rounds}
        return len(signatures)

    @property
    def total_sampling_seconds(self) -> float:
        """Total wall-clock seconds spent running plans over samples."""
        return sum(record.sampling_seconds for record in self.rounds)

    @property
    def total_planning_seconds(self) -> float:
        """Total wall-clock seconds spent inside the optimizer."""
        return sum(record.planning_seconds for record in self.rounds)

    def dp_masks_per_round(self) -> List[Optional[int]]:
        """DP masks expanded per round (None entries for GEQO rounds)."""
        return [record.dp_masks_expanded for record in self.rounds]

    @property
    def transformation_chain(self) -> List[TransformationKind]:
        """Transformation kinds for rounds 2..n (Theorem 2's chain)."""
        return [
            record.transformation
            for record in self.rounds
            if record.transformation is not None
        ]

    def plan_changed(self) -> bool:
        """True if re-optimization produced a plan different from the original."""
        return self.num_distinct_plans > 1

    def final_plan(self) -> PlanNode:
        """The plan of the last round (the fixed point)."""
        if not self.rounds:
            raise ValueError("report contains no rounds")
        return self.rounds[-1].plan

    def original_plan(self) -> PlanNode:
        """The plan of the first round (the optimizer's original choice)."""
        if not self.rounds:
            raise ValueError("report contains no rounds")
        return self.rounds[0].plan

    def validates_theorem_2(self) -> bool:
        """Check Theorem 2: at most one local transformation, and only as the last step.

        The trailing IDENTICAL step (the re-produced plan that triggers
        termination) is ignored for the purpose of the check.
        """
        chain = [
            kind for kind in self.transformation_chain if kind is not TransformationKind.IDENTICAL
        ]
        local_positions = [
            index for index, kind in enumerate(chain) if kind is TransformationKind.LOCAL
        ]
        if len(local_positions) > 1:
            return False
        if local_positions and local_positions[0] != len(chain) - 1:
            return False
        return True

    def covered_join_sets(self) -> FrozenSet[FrozenSet[str]]:
        """Union of the join sets of all plans generated (the set V of Section 3.5)."""
        union: set = set()
        for record in self.rounds:
            union.update(JoinTree.of(record.plan).join_set)
        return frozenset(union)

    def max_scheduler_queue_depth(self) -> Optional[int]:
        """The scheduler's high-water queue depth as of this run's last
        validated round (None if untracked); see ``RoundRecord``."""
        depths = [
            record.scheduler_queue_depth
            for record in self.rounds
            if record.scheduler_queue_depth is not None
        ]
        return max(depths) if depths else None

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the benchmark harness."""
        return {
            "query": self.query_name,
            "rounds": self.num_plans_generated,
            "distinct_plans": self.num_distinct_plans,
            "plan_changed": self.plan_changed(),
            "sampling_seconds": self.total_sampling_seconds,
            "transformations": [kind.value for kind in self.transformation_chain],
            "scheduler_queue_depth": self.max_scheduler_queue_depth(),
            "plan_cache_hits": self.rounds[-1].plan_cache_hits if self.rounds else None,
            "plan_cache_misses": self.rounds[-1].plan_cache_misses if self.rounds else None,
        }
