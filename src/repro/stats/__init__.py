"""Optimizer statistics: ANALYZE, MCV lists, equi-depth and 2-D histograms."""

from __future__ import annotations

from repro.stats.analyze import analyze
from repro.stats.histogram import EquiDepthHistogram
from repro.stats.statistics import ColumnStatistics, TableStatistics
from repro.stats.multidim import MultiDimHistogram

__all__ = [
    "ColumnStatistics",
    "EquiDepthHistogram",
    "MultiDimHistogram",
    "TableStatistics",
    "analyze",
]
