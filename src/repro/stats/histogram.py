"""Equi-depth histograms over numeric columns.

PostgreSQL keeps, per column, an equal-depth histogram of the values that are
*not* in the most-common-value list (Section 4.2.1 of the paper).  The
histogram stores ``num_buckets + 1`` bound values such that each bucket holds
(approximately) the same number of rows; range selectivities are estimated by
linear interpolation inside the boundary buckets, which is the classic
System-R/PostgreSQL approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equal-depth histogram described by its bucket bounds.

    ``bounds`` has length ``num_buckets + 1``; bucket ``i`` covers
    ``[bounds[i], bounds[i + 1])`` (the last bucket is closed on both sides).
    Each bucket is assumed to hold ``1 / num_buckets`` of the rows the
    histogram describes.
    """

    bounds: np.ndarray

    @classmethod
    def from_values(cls, values: np.ndarray, num_buckets: int = 100) -> Optional["EquiDepthHistogram"]:
        """Build a histogram from raw values, or return None if degenerate.

        Degenerate cases (fewer than two distinct values, or not enough values
        to fill two buckets) return ``None`` — matching PostgreSQL, which does
        not store a histogram when the MCV list already covers the column.
        """
        values = np.asarray(values, dtype=np.float64)
        values = values[~np.isnan(values)] if values.dtype.kind == "f" else values
        if len(values) < 2:
            return None
        if np.min(values) == np.max(values):
            return None
        num_buckets = max(1, min(num_buckets, len(values)))
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        bounds = np.quantile(values, quantiles)
        return cls(bounds=np.asarray(bounds, dtype=np.float64))

    @property
    def num_buckets(self) -> int:
        """Number of buckets in the histogram."""
        return len(self.bounds) - 1

    @property
    def low(self) -> float:
        """Smallest value covered by the histogram."""
        return float(self.bounds[0])

    @property
    def high(self) -> float:
        """Largest value covered by the histogram."""
        return float(self.bounds[-1])

    def fraction_below(self, value: float, inclusive: bool = False) -> float:
        """Estimate the fraction of rows with column value ``< value`` (or ``<=``).

        The estimate interpolates linearly within the bucket containing
        ``value``, mirroring PostgreSQL's ``ineq_histogram_selectivity``.
        The ``inclusive`` flag only matters at exact bucket bounds and is
        handled approximately (histograms cannot resolve point masses).
        """
        bounds = self.bounds
        if value < bounds[0]:
            return 0.0
        if value > bounds[-1]:
            return 1.0
        if value == bounds[-1]:
            return 1.0 if inclusive else 1.0 - 1e-9
        # Find the bucket containing the value.
        bucket = int(np.searchsorted(bounds, value, side="right")) - 1
        bucket = min(max(bucket, 0), self.num_buckets - 1)
        bucket_low = bounds[bucket]
        bucket_high = bounds[bucket + 1]
        if bucket_high == bucket_low:
            within = 1.0 if inclusive else 0.0
        else:
            within = (value - bucket_low) / (bucket_high - bucket_low)
        return (bucket + within) / self.num_buckets

    def fraction_between(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimate the fraction of rows within ``[low, high]`` (open-ended allowed)."""
        upper = 1.0 if high is None else self.fraction_below(high, inclusive=include_high)
        lower = 0.0 if low is None else self.fraction_below(low, inclusive=not include_low)
        return max(0.0, upper - lower)
