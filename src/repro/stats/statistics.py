"""Containers for per-column and per-table optimizer statistics.

The statistics kept per column mirror PostgreSQL's ``pg_stats`` view, which
the paper describes in Section 4.2.1:

* the number of distinct values (``n_distinct``);
* the most common values (MCVs) and their frequencies;
* an equal-depth histogram over the remaining (non-MCV) values.

These are the inputs the histogram-based cardinality estimator in
:mod:`repro.cardinality.selectivity` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StatisticsError
from repro.stats.histogram import EquiDepthHistogram


@dataclass
class ColumnStatistics:
    """ANALYZE output for one column."""

    column: str
    #: Number of non-null rows observed when the statistics were collected.
    num_rows: int
    #: Number of distinct non-null values.
    n_distinct: int
    #: Fraction of rows that are null (always 0.0 for generated workloads).
    null_fraction: float
    #: Most common values, most frequent first.
    mcv_values: List[object] = field(default_factory=list)
    #: Frequencies (fractions of all rows) aligned with ``mcv_values``.
    mcv_fractions: List[float] = field(default_factory=list)
    #: Equal-depth histogram over non-MCV values (numeric columns only).
    histogram: Optional[EquiDepthHistogram] = None
    #: Minimum / maximum value (numeric columns only).
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    #: Whether the column is numeric (int/float) — string columns only keep
    #: MCVs and n_distinct.
    is_numeric: bool = True

    @property
    def mcv_total_fraction(self) -> float:
        """Sum of the MCV frequencies — the fraction of rows covered by MCVs."""
        return float(sum(self.mcv_fractions))

    @property
    def num_mcvs(self) -> int:
        """Number of values kept in the MCV list."""
        return len(self.mcv_values)

    def mcv_fraction_for(self, value: object) -> Optional[float]:
        """Return the recorded frequency for ``value`` if it is an MCV, else None."""
        for mcv, fraction in zip(self.mcv_values, self.mcv_fractions):
            if mcv == value:
                return fraction
        return None

    def non_mcv_distinct(self) -> int:
        """Number of distinct values not covered by the MCV list (at least 1)."""
        return max(1, self.n_distinct - self.num_mcvs)


@dataclass
class TableStatistics:
    """ANALYZE output for one table: row count plus per-column statistics."""

    table: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        """Return statistics for ``name``.

        Raises
        ------
        StatisticsError
            If the column was not analyzed.
        """
        if name not in self.columns:
            raise StatisticsError(f"no statistics for column {self.table}.{name}")
        return self.columns[name]

    def has_column(self, name: str) -> bool:
        """True if statistics exist for the column."""
        return name in self.columns
