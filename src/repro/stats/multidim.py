"""Two-dimensional equi-width histograms (Section 5.3.1, Example 2).

The paper argues that even multidimensional histograms cannot distinguish the
empty from the non-empty OTT joins unless the buckets are fine enough to
retain the exact joint distribution.  This module implements the
2-D equi-width histogram of Example 2 so that the claim can be reproduced
quantitatively: the estimated selectivities of the empty query ``q1`` and the
non-empty query ``q2`` come out identical (``1 / (8 l^2)`` with the paper's
parameters), while the true selectivities differ by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class MultiDimHistogram:
    """An equi-width 2-D histogram over a pair of integer columns.

    Each dimension is divided into ``buckets_per_dim`` equal-width intervals
    over ``[low, high]``; each cell stores the fraction of rows falling in it.
    Within a cell, values are assumed uniformly and independently distributed
    — the very assumption Example 2 exploits.
    """

    low: float
    high: float
    buckets_per_dim: int
    cell_fractions: np.ndarray  # shape (buckets_per_dim, buckets_per_dim)

    @classmethod
    def build(cls, first: np.ndarray, second: np.ndarray, buckets_per_dim: int) -> "MultiDimHistogram":
        """Build the histogram from two aligned columns of one table."""
        first = np.asarray(first, dtype=np.float64)
        second = np.asarray(second, dtype=np.float64)
        if len(first) != len(second):
            raise ValueError("both columns must have the same number of rows")
        low = float(min(first.min(), second.min()))
        high = float(max(first.max(), second.max())) + 1e-9
        edges = np.linspace(low, high, buckets_per_dim + 1)
        counts, _, _ = np.histogram2d(first, second, bins=(edges, edges))
        fractions = counts / max(1, len(first))
        return cls(low=low, high=high, buckets_per_dim=buckets_per_dim, cell_fractions=fractions)

    def _bucket_of(self, value: float) -> int:
        width = (self.high - self.low) / self.buckets_per_dim
        bucket = int((value - self.low) / width)
        return min(max(bucket, 0), self.buckets_per_dim - 1)

    def point_fraction(self, a_value: float, b_value: float) -> float:
        """Estimated fraction of rows with ``A = a_value`` and ``B = b_value``.

        The cell fraction is spread uniformly over the distinct integer pairs
        the cell covers (per-bucket uniformity + independence inside the cell).
        """
        cell = self.cell_fractions[self._bucket_of(a_value), self._bucket_of(b_value)]
        width = (self.high - self.low) / self.buckets_per_dim
        distinct_per_dim = max(1.0, np.floor(width))
        return float(cell) / (distinct_per_dim * distinct_per_dim)

    def selection_fraction(self, a_value: float) -> float:
        """Estimated fraction of rows with ``A = a_value`` (marginalised over B)."""
        row = self.cell_fractions[self._bucket_of(a_value), :]
        width = (self.high - self.low) / self.buckets_per_dim
        distinct_per_dim = max(1.0, np.floor(width))
        return float(row.sum()) / distinct_per_dim

    def estimate_ott_pair_selectivity(
        self, a1_value: float, a2_value: float, other: "MultiDimHistogram"
    ) -> float:
        """Estimate the selectivity of ``sigma_{A1=a1, A2=a2, B1=B2}(R1 x R2)``.

        This is Example 2's computation: for each value ``v`` of the join
        attribute, multiply the estimated fractions of ``(A1=a1, B1=v)`` in R1
        and ``(A2=a2, B2=v)`` in R2, then sum over ``v``.  Because the
        histogram spreads each cell uniformly, the result is identical for the
        empty (``a1 != a2``) and non-empty (``a1 == a2``) OTT queries.
        """
        width = (self.high - self.low) / self.buckets_per_dim
        distinct_per_dim = max(1.0, np.floor(width))
        total = 0.0
        for b_bucket in range(self.buckets_per_dim):
            own = self.cell_fractions[self._bucket_of(a1_value), b_bucket] / (
                distinct_per_dim * distinct_per_dim
            )
            theirs = other.cell_fractions[other._bucket_of(a2_value), b_bucket] / (
                distinct_per_dim * distinct_per_dim
            )
            # Sum over the distinct join values inside the bucket.
            total += distinct_per_dim * own * theirs
        return total


def true_ott_pair_selectivity(
    r1_a: np.ndarray, r1_b: np.ndarray, r2_a: np.ndarray, r2_b: np.ndarray,
    a1_value: float, a2_value: float,
) -> float:
    """Exact selectivity of ``sigma_{A1=a1, A2=a2, B1=B2}(R1 x R2)`` for comparison."""
    r1_rows = r1_b[np.asarray(r1_a) == a1_value]
    r2_rows = r2_b[np.asarray(r2_a) == a2_value]
    if len(r1_rows) == 0 or len(r2_rows) == 0:
        return 0.0
    values, counts1 = np.unique(r1_rows, return_counts=True)
    values2, counts2 = np.unique(r2_rows, return_counts=True)
    matches = 0
    lookup = dict(zip(values2.tolist(), counts2.tolist()))
    for value, count in zip(values.tolist(), counts1.tolist()):
        matches += count * lookup.get(value, 0)
    return matches / (len(r1_a) * len(r2_a))
